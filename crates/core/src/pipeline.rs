use fademl_data::NoiseModel;
use fademl_filters::{Filter, FilterSpec};
use fademl_nn::metrics::Prediction;
use fademl_nn::Sequential;
use fademl_tensor::{Shape, Tensor, TensorRng};

use crate::{FademlError, Result, ThreatModel};

/// Outcome of the serving-side adversarial triage stage for one image.
///
/// Attached to a [`Verdict`] by `fademl-serve` when a detector is
/// configured; `None` means the image was never triaged (direct
/// pipeline use, or a server running without detection). A triage
/// fail-open (detector panic/timeout) also reports `None` — detection
/// is advisory and absence of a verdict is the honest encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Isolation-forest anomaly score in `(0, 1)`; higher ⇒ more
    /// anomalous relative to the clean training distribution.
    pub score: f32,
    /// `true` if the score crossed the configured triage threshold.
    pub flagged: bool,
    /// `true` if the image was classified on the hardened path
    /// (stronger filter, isolated per-image execution).
    pub hardened: bool,
}

/// What the deployed pipeline reports for one image.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Winning class index.
    pub class: usize,
    /// Confidence (softmax probability of the winner).
    pub confidence: f32,
    /// Full top-5 ranking.
    pub top5: Prediction,
    /// Full class-probability vector.
    pub probabilities: Tensor,
    /// Adversarial-triage outcome, when the serving layer scored the
    /// image (see [`Detection`]).
    pub detection: Option<Detection>,
}

/// The deployed inference pipeline of the paper's Fig. 2: data
/// acquisition → pre-processing noise filter → input buffer → DNN.
///
/// The pipeline is the *defender's* object; the attacker's view of it is
/// an [`AttackSurface`](fademl_attacks::AttackSurface). Where an
/// adversarial image enters is controlled by the [`ThreatModel`]:
///
/// - **TM-I**: straight into the DNN buffer — the filter is bypassed.
/// - **TM-II**: re-acquired by the sensor (fresh acquisition noise) and
///   passed through the filter.
/// - **TM-III**: injected after acquisition but before the filter — the
///   filter runs, no fresh sensor noise.
#[derive(Debug, Clone)]
pub struct InferencePipeline {
    model: Sequential,
    filter: Box<dyn Filter>,
    filter_spec: FilterSpec,
    acquisition_noise: NoiseModel,
    noise_seed: u64,
}

impl InferencePipeline {
    /// Builds a pipeline from a trained model and a filter spec, with
    /// the default sensor-noise profile for TM-II re-acquisition.
    ///
    /// # Errors
    ///
    /// Propagates filter construction errors.
    pub fn new(model: Sequential, filter_spec: FilterSpec) -> Result<Self> {
        Ok(InferencePipeline {
            model,
            filter: filter_spec.build()?,
            filter_spec,
            acquisition_noise: NoiseModel::sensor(),
            noise_seed: 0xACC0_57ED,
        })
    }

    /// Replaces the TM-II acquisition-noise profile (builder style).
    #[must_use]
    pub fn with_acquisition_noise(mut self, noise: NoiseModel) -> Self {
        self.acquisition_noise = noise;
        self
    }

    /// The pipeline's filter configuration.
    pub fn filter_spec(&self) -> FilterSpec {
        self.filter_spec
    }

    /// The victim model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the victim model. The hot-swap path clones the
    /// deployed pipeline, decodes a new weight artifact into the clone,
    /// and publishes it atomically — the live pipeline itself is never
    /// mutated in place.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Runs the pipeline stages an image would traverse under `threat`
    /// and returns the tensor that reaches the DNN input buffer.
    ///
    /// # Errors
    ///
    /// Propagates filter errors.
    pub fn stage_input(&self, image: &Tensor, threat: ThreatModel) -> Result<Tensor> {
        let mut x = image.clone();
        if threat.reacquires() {
            x = self.reacquire(&x);
        }
        if threat.filter_applies() {
            x = self.filter.apply(&x)?;
        }
        Ok(x)
    }

    /// Runs the pipeline stages for a whole `[N, C, H, W]` batch under
    /// `threat`, producing exactly what per-image [`stage_input`] calls
    /// would: TM-II sensor noise is seeded per image from its content,
    /// and the filter (plane-wise by construction) runs once on the
    /// whole batch.
    ///
    /// [`stage_input`]: InferencePipeline::stage_input
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] for non-rank-4 input, plus
    /// any filter error.
    pub fn stage_input_batch(&self, images: &Tensor, threat: ThreatModel) -> Result<Tensor> {
        if images.rank() != 4 {
            return Err(FademlError::InvalidConfig {
                reason: format!("expected [N, C, H, W] images, got {:?}", images.dims()),
            });
        }
        let mut x = images.clone();
        if threat.reacquires() {
            let n = images.dims()[0];
            let mut noised = Vec::with_capacity(images.numel());
            for i in 0..n {
                let image = images.index_batch(i)?;
                noised.extend_from_slice(self.reacquire(&image).as_slice());
            }
            x = Tensor::from_vec(noised, Shape::new(images.dims().to_vec()))?;
        }
        if threat.filter_applies() {
            x = self.filter.apply(&x)?;
        }
        Ok(x)
    }

    /// TM-II re-acquisition: deterministic per-image sensor noise, seeded
    /// from the image content so repeated classification of the same
    /// image is reproducible (and batch staging matches per-image
    /// staging exactly).
    fn reacquire(&self, image: &Tensor) -> Tensor {
        let fingerprint = image.as_slice().iter().fold(0u64, |acc, &v| {
            acc.wrapping_mul(31).wrapping_add(v.to_bits() as u64)
        });
        let mut rng = TensorRng::seed_from_u64(self.noise_seed ^ fingerprint);
        self.acquisition_noise.apply(image, &mut rng)
    }

    /// Rejects tensors carrying non-finite values: a single NaN spreads
    /// through every conv/matmul reduction and silently corrupts the
    /// verdict of everything sharing the forward pass. Runs only on the
    /// classification entry points — staging helpers stay permissive so
    /// attack evaluation can probe the pipeline with anything.
    fn validate_input(image: &Tensor) -> Result<()> {
        if let Some((index, value)) = image
            .as_slice()
            .iter()
            .enumerate()
            .find(|(_, v)| !v.is_finite())
        {
            return Err(FademlError::InvalidInput {
                reason: format!("non-finite value {value} at flat index {index}"),
            });
        }
        Ok(())
    }

    /// Builds a [`Verdict`] from one row of class probabilities.
    fn verdict_from_probabilities(probabilities: Tensor) -> Verdict {
        let top_classes = probabilities.top_k(5);
        let probs = probabilities.as_slice();
        let top_probs: Vec<f32> = top_classes.iter().map(|&c| probs[c]).collect();
        let top5 = Prediction {
            top_classes,
            top_probs,
        };
        Verdict {
            class: top5.class(),
            confidence: top5.confidence(),
            top5,
            probabilities,
            detection: None,
        }
    }

    /// Classifies a single `[C, H, W]` image entering under `threat`.
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] for non-rank-3 input,
    /// [`FademlError::InvalidInput`] for non-finite values, plus any
    /// filter/model error.
    pub fn classify(&self, image: &Tensor, threat: ThreatModel) -> Result<Verdict> {
        if image.rank() != 3 {
            return Err(FademlError::InvalidConfig {
                reason: format!("expected a [C, H, W] image, got {:?}", image.dims()),
            });
        }
        Self::validate_input(image)?;
        let staged = self.stage_input(image, threat)?;
        let batch = staged.unsqueeze_batch();
        // One forward pass; the top-5 ranking is a cheap argsort of the
        // probability vector we already have.
        let probabilities = self.model.predict_proba(&batch)?.row(0)?;
        Ok(Self::verdict_from_probabilities(probabilities))
    }

    /// Classifies a whole `[N, C, H, W]` batch entering under `threat`
    /// with one filter pass and one model forward, returning one
    /// [`Verdict`] per image (identical to per-image [`classify`] calls).
    ///
    /// [`classify`]: InferencePipeline::classify
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] for non-rank-4 input,
    /// [`FademlError::InvalidInput`] for non-finite values, plus any
    /// filter/model error.
    pub fn classify_batch(&self, images: &Tensor, threat: ThreatModel) -> Result<Vec<Verdict>> {
        Self::validate_input(images)?;
        let staged = self.stage_input_batch(images, threat)?;
        let probabilities = self.model.predict_proba(&staged)?; // [N, classes]
        let n = images.dims()[0];
        let mut verdicts = Vec::with_capacity(n);
        for i in 0..n {
            verdicts.push(Self::verdict_from_probabilities(probabilities.row(i)?));
        }
        Ok(verdicts)
    }

    /// Top-`k` accuracy of the pipeline over a batch entering under
    /// `threat` (the paper's headline metric uses `k = 5`).
    ///
    /// # Errors
    ///
    /// Returns [`FademlError::InvalidConfig`] when labels and batch
    /// disagree, plus any filter/model error.
    pub fn top_k_accuracy(
        &self,
        images: &Tensor,
        labels: &[usize],
        threat: ThreatModel,
        k: usize,
    ) -> Result<f32> {
        if images.rank() != 4 || images.dims()[0] != labels.len() {
            return Err(FademlError::InvalidConfig {
                reason: format!(
                    "need [n, c, h, w] images matching {} labels, got {:?}",
                    labels.len(),
                    images.dims()
                ),
            });
        }
        if labels.is_empty() {
            return Ok(0.0);
        }
        // Batched evaluation in bounded chunks: each chunk pays one
        // filter pass and one forward, without materialising activations
        // for the entire dataset at once.
        const CHUNK: usize = 64;
        let n = labels.len();
        let sample_len = images.numel() / n;
        let data = images.as_slice();
        let mut sub_dims = images.dims().to_vec();
        let mut hits = 0usize;
        for start in (0..n).step_by(CHUNK) {
            let end = (start + CHUNK).min(n);
            sub_dims[0] = end - start;
            let chunk = Tensor::from_vec(
                data[start * sample_len..end * sample_len].to_vec(),
                Shape::new(sub_dims.clone()),
            )?;
            let staged = self.stage_input_batch(&chunk, threat)?;
            let probabilities = self.model.predict_proba(&staged)?;
            for (i, &label) in labels[start..end].iter().enumerate() {
                if probabilities.row(i)?.top_k(k).contains(&label) {
                    hits += 1;
                }
            }
        }
        Ok(hits as f32 / n as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use proptest::prelude::*;

    fn pipeline(spec: FilterSpec) -> InferencePipeline {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        InferencePipeline::new(model, spec).unwrap()
    }

    #[test]
    fn tm1_bypasses_filter() {
        let p = pipeline(FilterSpec::Lap { np: 32 });
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let staged = p.stage_input(&img, ThreatModel::I).unwrap();
        assert_eq!(staged, img);
    }

    #[test]
    fn tm3_filters_without_noise() {
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(3);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let staged = p.stage_input(&img, ThreatModel::III).unwrap();
        assert_ne!(staged, img);
        // Deterministic: same image, same staging.
        assert_eq!(staged, p.stage_input(&img, ThreatModel::III).unwrap());
    }

    #[test]
    fn tm2_adds_noise_then_filters() {
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(4);
        let img = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        let tm2 = p.stage_input(&img, ThreatModel::II).unwrap();
        let tm3 = p.stage_input(&img, ThreatModel::III).unwrap();
        assert_ne!(tm2, tm3); // sensor noise distinguishes II from III
                              // Still reproducible.
        assert_eq!(tm2, p.stage_input(&img, ThreatModel::II).unwrap());
    }

    #[test]
    fn classify_returns_consistent_verdict() {
        let p = pipeline(FilterSpec::None);
        let mut rng = TensorRng::seed_from_u64(5);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let v = p.classify(&img, ThreatModel::I).unwrap();
        assert!(v.class < 6);
        assert_eq!(v.class, v.top5.top_classes[0]);
        assert!((v.confidence - v.top5.top_probs[0]).abs() < 1e-6);
        let psum: f32 = v.probabilities.as_slice().iter().sum();
        assert!((psum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn classify_rejects_batches() {
        let p = pipeline(FilterSpec::None);
        assert!(p
            .classify(&Tensor::zeros(&[1, 3, 16, 16]), ThreatModel::I)
            .is_err());
    }

    #[test]
    fn accuracy_counts_topk_hits() {
        let p = pipeline(FilterSpec::None);
        let mut rng = TensorRng::seed_from_u64(6);
        let images = rng.uniform(&[4, 3, 16, 16], 0.0, 1.0);
        // With k = 6 classes and top-6 every label hits.
        let acc = p
            .top_k_accuracy(&images, &[0, 1, 2, 3], ThreatModel::I, 6)
            .unwrap();
        assert_eq!(acc, 1.0);
        assert!(p
            .top_k_accuracy(&images, &[0, 1], ThreatModel::I, 5)
            .is_err());
    }

    #[test]
    fn filter_spec_accessor() {
        let p = pipeline(FilterSpec::Lar { r: 2 });
        assert_eq!(p.filter_spec(), FilterSpec::Lar { r: 2 });
    }

    #[test]
    fn classify_rejects_non_finite_input() {
        let p = pipeline(FilterSpec::None);
        let mut rng = TensorRng::seed_from_u64(21);
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
            img.as_mut_slice()[7] = poison;
            assert!(matches!(
                p.classify(&img, ThreatModel::I),
                Err(FademlError::InvalidInput { .. })
            ));
            let mut batch = rng.uniform(&[2, 3, 16, 16], 0.0, 1.0);
            batch.as_mut_slice()[100] = poison;
            assert!(matches!(
                p.classify_batch(&batch, ThreatModel::III),
                Err(FademlError::InvalidInput { .. })
            ));
        }
    }

    #[test]
    fn staging_stays_permissive_for_attack_probing() {
        // Attack evaluation probes the filter with arbitrary tensors;
        // validation belongs to the classification entry points only.
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(22);
        let mut img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        img.as_mut_slice()[0] = f32::NAN;
        assert!(p.stage_input(&img, ThreatModel::III).is_ok());
    }

    #[test]
    fn classify_batch_rejects_single_images() {
        let p = pipeline(FilterSpec::None);
        assert!(p
            .classify_batch(&Tensor::zeros(&[3, 16, 16]), ThreatModel::I)
            .is_err());
    }

    #[test]
    fn batch_staging_matches_per_image_under_tm2() {
        // TM-II is the subtle case: sensor noise must be seeded per
        // image from its content, not once per batch.
        let p = pipeline(FilterSpec::Lap { np: 8 });
        let mut rng = TensorRng::seed_from_u64(11);
        let images = rng.uniform(&[3, 3, 16, 16], 0.1, 0.9);
        let staged = p.stage_input_batch(&images, ThreatModel::II).unwrap();
        for i in 0..3 {
            let single = p
                .stage_input(&images.index_batch(i).unwrap(), ThreatModel::II)
                .unwrap();
            assert_eq!(staged.index_batch(i).unwrap(), single);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// `classify_batch` must agree with per-image `classify` for
        /// every threat model — the serving engine depends on it.
        #[test]
        fn classify_batch_matches_classify(seed in 0u64..1000, n in 1usize..5) {
            let p = pipeline(FilterSpec::Lap { np: 8 });
            let mut rng = TensorRng::seed_from_u64(seed);
            let images = rng.uniform(&[n, 3, 16, 16], 0.0, 1.0);
            for threat in ThreatModel::ALL {
                let batched = p.classify_batch(&images, threat).unwrap();
                prop_assert_eq!(batched.len(), n);
                for (i, verdict) in batched.iter().enumerate() {
                    let single = p
                        .classify(&images.index_batch(i).unwrap(), threat)
                        .unwrap();
                    prop_assert_eq!(verdict.class, single.class);
                    prop_assert_eq!(&verdict.top5, &single.top5);
                    for (a, b) in verdict
                        .probabilities
                        .as_slice()
                        .iter()
                        .zip(single.probabilities.as_slice())
                    {
                        prop_assert!((a - b).abs() < 1e-5);
                    }
                }
            }
        }
    }
}
