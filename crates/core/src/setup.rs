//! Victim preparation: dataset generation, VGG training and weight
//! caching, shared by every experiment binary, example and test.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;

use fademl_data::{DatasetConfig, NoiseModel, SignDataset, CLASS_COUNT};
use fademl_nn::vgg::{VggConfig, VggProfile};
use fademl_nn::{serialize, OptimizerKind, Sequential, TrainConfig, Trainer};
use fademl_tensor::TensorRng;

use crate::Result;

/// Canned experiment sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SetupProfile {
    /// Tiny model, 16×16 images, few samples — seconds, for tests and
    /// doc examples. Not accurate enough for paper-shaped results.
    Smoke,
    /// Compact VGG, 24×24 images, enough data to reach high clean
    /// accuracy — the default for the figure-regeneration binaries.
    Standard,
    /// Compact VGG on 32×32 with more data per class; slower, closer to
    /// paper scale.
    Full,
}

/// Everything an experiment needs to specify its victim.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSetup {
    /// Dataset generation parameters.
    pub dataset: DatasetConfig,
    /// Victim architecture.
    pub vgg: VggConfig,
    /// Training hyper-parameters.
    pub train: TrainConfig,
    /// Held-out test fraction.
    pub test_fraction: f32,
    /// Master seed for weight init.
    pub seed: u64,
    /// If `true`, trained weights are cached on disk keyed by the whole
    /// setup, so repeated experiment runs skip training.
    pub cache_weights: bool,
}

/// A prepared victim: trained model plus its train/test data.
#[derive(Debug, Clone)]
pub struct PreparedSetup {
    /// The trained victim model.
    pub model: Sequential,
    /// Training split.
    pub train: SignDataset,
    /// Held-out test split.
    pub test: SignDataset,
    /// Top-1 training accuracy reached.
    pub train_accuracy: f32,
    /// Whether the weights came from the on-disk cache.
    pub from_cache: bool,
}

impl ExperimentSetup {
    /// A canned profile.
    pub fn profile(profile: SetupProfile) -> Self {
        match profile {
            SetupProfile::Smoke => ExperimentSetup {
                dataset: DatasetConfig {
                    samples_per_class: 60,
                    image_size: 20,
                    seed: 7,
                    noise: NoiseModel::sensor(),
                    blur_prob: 0.5,
                },
                vgg: VggConfig {
                    stage_channels: vec![8, 16],
                    in_channels: 3,
                    input_size: 20,
                    classes: CLASS_COUNT,
                    batch_norm: false,
                    dropout: None,
                },
                train: TrainConfig {
                    epochs: 12,
                    batch_size: 32,
                    optimizer: OptimizerKind::Adam { lr: 3e-3 },
                    seed: 7,
                    lr_decay: 1.0,
                    verbose: false,
                    patience: None,
                    divergence: None,
                    compute_threads: 0,
                },
                test_fraction: 0.25,
                seed: 7,
                cache_weights: true,
            },
            SetupProfile::Standard => ExperimentSetup {
                dataset: DatasetConfig {
                    samples_per_class: 40,
                    image_size: 24,
                    seed: 7,
                    noise: NoiseModel::sensor(),
                    blur_prob: 0.5,
                },
                vgg: VggConfig::new(VggProfile::Compact, 3, 24, CLASS_COUNT),
                train: TrainConfig {
                    epochs: 25,
                    batch_size: 32,
                    optimizer: OptimizerKind::Adam { lr: 3e-3 },
                    seed: 7,
                    lr_decay: 0.9,
                    verbose: true,
                    patience: None,
                    divergence: None,
                    compute_threads: 0,
                },
                test_fraction: 0.25,
                seed: 7,
                cache_weights: true,
            },
            SetupProfile::Full => ExperimentSetup {
                dataset: DatasetConfig {
                    samples_per_class: 80,
                    image_size: 32,
                    seed: 7,
                    noise: NoiseModel::sensor(),
                    blur_prob: 0.5,
                },
                vgg: VggConfig::new(VggProfile::Compact, 3, 32, CLASS_COUNT),
                train: TrainConfig {
                    epochs: 30,
                    batch_size: 32,
                    optimizer: OptimizerKind::Adam { lr: 3e-3 },
                    seed: 7,
                    lr_decay: 0.9,
                    verbose: true,
                    patience: None,
                    divergence: None,
                    compute_threads: 0,
                },
                test_fraction: 0.25,
                seed: 7,
                cache_weights: true,
            },
        }
    }

    /// Stable cache key over every training-relevant field.
    fn cache_key(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        self.dataset.samples_per_class.hash(&mut hasher);
        self.dataset.image_size.hash(&mut hasher);
        self.dataset.seed.hash(&mut hasher);
        self.dataset.noise.gaussian_std.to_bits().hash(&mut hasher);
        self.dataset
            .noise
            .salt_pepper_prob
            .to_bits()
            .hash(&mut hasher);
        self.dataset.blur_prob.to_bits().hash(&mut hasher);
        self.vgg.stage_channels.hash(&mut hasher);
        self.vgg.in_channels.hash(&mut hasher);
        self.vgg.input_size.hash(&mut hasher);
        self.vgg.classes.hash(&mut hasher);
        self.train.epochs.hash(&mut hasher);
        self.train.batch_size.hash(&mut hasher);
        self.train.seed.hash(&mut hasher);
        match self.train.optimizer {
            OptimizerKind::Adam { lr } => {
                0u8.hash(&mut hasher);
                lr.to_bits().hash(&mut hasher);
            }
            OptimizerKind::SgdMomentum { lr } => {
                1u8.hash(&mut hasher);
                lr.to_bits().hash(&mut hasher);
            }
            _ => 2u8.hash(&mut hasher),
        }
        self.train.lr_decay.to_bits().hash(&mut hasher);
        self.test_fraction.to_bits().hash(&mut hasher);
        self.seed.hash(&mut hasher);
        // Split-strategy marker: bumping this invalidates caches written
        // under a different train/test partition scheme.
        "stratified-v1".hash(&mut hasher);
        hasher.finish()
    }

    fn cache_path(&self) -> PathBuf {
        std::env::temp_dir().join(format!("fademl-victim-{:016x}.weights", self.cache_key()))
    }

    /// Generates the dataset, builds the model, and trains it (or loads
    /// cached weights when enabled and available).
    ///
    /// # Errors
    ///
    /// Propagates dataset, model and training errors; cache-read
    /// failures fall back to training rather than erroring.
    pub fn prepare(&self) -> Result<PreparedSetup> {
        let dataset = SignDataset::generate(&self.dataset)?;
        // Stratified: every class keeps samples on both sides of the
        // split, so scenario source images always exist in the test set.
        let split = dataset.split_stratified(self.test_fraction)?;
        let mut rng = TensorRng::seed_from_u64(self.seed);
        let mut model = self.vgg.build(&mut rng)?;

        if self.cache_weights {
            let path = self.cache_path();
            if path.exists() && serialize::load_weights_from_path(&mut model, &path).is_ok() {
                let train_accuracy = fademl_nn::metrics::top1_accuracy(
                    &model,
                    split.train.images(),
                    split.train.labels(),
                )?;
                return Ok(PreparedSetup {
                    model,
                    train: split.train,
                    test: split.test,
                    train_accuracy,
                    from_cache: true,
                });
            }
        }

        let mut trainer = Trainer::new(self.train.clone());
        let history = trainer.fit(&mut model, split.train.images(), split.train.labels())?;
        if self.cache_weights {
            // save_weights_to_path stages and renames internally, so
            // concurrent readers never see a half-written file.
            // best-effort: a failed cache write only costs future time.
            let _ = serialize::save_weights_to_path(&model, self.cache_path());
        }
        Ok(PreparedSetup {
            model,
            train: split.train,
            test: split.test,
            train_accuracy: history.final_accuracy(),
            from_cache: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_profile_trains_to_useful_accuracy() {
        let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
            .prepare()
            .unwrap();
        assert!(
            prepared.train_accuracy > 0.5,
            "smoke victim only reached {:.1}% train accuracy",
            prepared.train_accuracy * 100.0
        );
        assert!(!prepared.train.is_empty());
        assert!(!prepared.test.is_empty());
        // from_cache may be either value depending on whether another
        // test binary already populated the shared weight cache.
    }

    #[test]
    fn cache_round_trip() {
        let mut setup = ExperimentSetup::profile(SetupProfile::Smoke);
        setup.cache_weights = true;
        setup.train.epochs = 1;
        setup.dataset.samples_per_class = 2;
        setup.seed = 424_242; // unique cache slot for this test
        let path = setup.cache_path();
        let _ = std::fs::remove_file(&path);

        let first = setup.prepare().unwrap();
        assert!(!first.from_cache);
        assert!(path.exists());
        let second = setup.prepare().unwrap();
        assert!(second.from_cache);
        // Identical weights → identical predictions.
        let x = first
            .test
            .images()
            .index_batch(0)
            .unwrap()
            .unsqueeze_batch();
        assert_eq!(
            first.model.forward(&x).unwrap(),
            second.model.forward(&x).unwrap()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cache_key_distinguishes_configs() {
        let a = ExperimentSetup::profile(SetupProfile::Smoke);
        let mut b = a.clone();
        b.train.epochs += 1;
        assert_ne!(a.cache_key(), b.cache_key());
        let mut c = a.clone();
        c.dataset.seed += 1;
        assert_ne!(a.cache_key(), c.cache_key());
        assert_eq!(a.cache_key(), a.clone().cache_key());
    }

    #[test]
    fn profiles_are_well_formed() {
        for profile in [
            SetupProfile::Smoke,
            SetupProfile::Standard,
            SetupProfile::Full,
        ] {
            let setup = ExperimentSetup::profile(profile);
            assert_eq!(setup.vgg.classes, CLASS_COUNT);
            assert_eq!(setup.vgg.input_size, setup.dataset.image_size);
        }
    }
}
