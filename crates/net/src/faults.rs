//! Deterministic network fault injection, mirroring `serve::faults`.
//!
//! A [`NetFaultPlan`] scripts *which* response frames are wounded, by
//! 1-based response sequence number counted across the whole server.
//! Compiled only with `--features faults`; production builds carry
//! zero injection code.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What to do to the current response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFault {
    /// Send it whole.
    None,
    /// Send only the first `n` bytes, then cut the connection — a torn
    /// frame mid-stream.
    Tear(usize),
    /// Cut the connection without sending a byte.
    Drop,
}

/// Scripted network faults. Sequence numbers are 1-based and counted
/// over every response the server attempts to send.
#[derive(Debug, Clone, Default)]
pub struct NetFaultPlan {
    tear_response: Option<(u64, usize)>,
    drop_response: Option<u64>,
    response_seq: Arc<AtomicU64>,
}

impl NetFaultPlan {
    /// A plan that injects nothing.
    pub fn new() -> Self {
        NetFaultPlan::default()
    }

    /// Tear response number `seq` after `keep_bytes` bytes.
    #[must_use]
    pub fn tear_response_on(mut self, seq: u64, keep_bytes: usize) -> Self {
        self.tear_response = Some((seq, keep_bytes));
        self
    }

    /// Drop response number `seq` entirely (cut before any byte).
    #[must_use]
    pub fn drop_response_on(mut self, seq: u64) -> Self {
        self.drop_response = Some(seq);
        self
    }

    /// Called by the server once per response it is about to send;
    /// returns the scripted fault for this sequence number.
    pub fn on_response(&self) -> ResponseFault {
        let seq = self.response_seq.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some((at, keep)) = self.tear_response {
            if at == seq {
                return ResponseFault::Tear(keep);
            }
        }
        if self.drop_response == Some(seq) {
            return ResponseFault::Drop;
        }
        ResponseFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_on_scripted_sequence_only() {
        let plan = NetFaultPlan::new()
            .tear_response_on(2, 5)
            .drop_response_on(3);
        assert_eq!(plan.on_response(), ResponseFault::None);
        assert_eq!(plan.on_response(), ResponseFault::Tear(5));
        assert_eq!(plan.on_response(), ResponseFault::Drop);
        assert_eq!(plan.on_response(), ResponseFault::None);
    }

    #[test]
    fn clones_share_the_sequence_counter() {
        let plan = NetFaultPlan::new().drop_response_on(2);
        let clone = plan.clone();
        assert_eq!(plan.on_response(), ResponseFault::None);
        assert_eq!(clone.on_response(), ResponseFault::Drop);
    }
}
