//! The FAdeML wire protocol: length-prefixed, CRC-framed binary
//! records on a byte stream, built on [`fademl_tensor::io`]'s
//! bounds-checked little-endian codec.
//!
//! ```text
//!  offset  size  field
//!  ──────  ────  ─────────────────────────────────────────────
//!       0     7  magic  "FADEMLN"
//!       7     1  version (currently b'1')
//!       8     1  kind    (1=Request 2=Response 3=Error 4=Goodbye)
//!       9     4  len     payload length, u32 LE
//!      13   len  payload (kind-specific, see below)
//!  13+len     4  crc32   over bytes [8 .. 13+len]  (kind+len+payload)
//! ```
//!
//! The CRC covers the kind and length as well as the payload, so a
//! bit-flip anywhere after the version byte is detected. The magic and
//! version sit *outside* the CRC on purpose: they are validated first
//! and gate how the rest of the header is even interpreted.
//!
//! Every length field is capped and checked **before** any allocation
//! sized by it — a hostile peer can declare a 4 GiB payload but the
//! decoder refuses at [`MAX_PAYLOAD`] without reserving a byte. Decode
//! errors are always a typed [`FrameError`], never a panic.

use std::io::{self, Read, Write};

use fademl::{Detection, ThreatModel, Verdict};
use fademl_nn::metrics::Prediction;
use fademl_serve::error::{DeadlineStage, ServeError};
use fademl_tensor::io::{crc32, ByteReader, ByteWriter};
use fademl_tensor::{Shape, Tensor};

use crate::error::NetError;

/// Protocol magic, first bytes of every frame.
pub const WIRE_MAGIC: &[u8; 7] = b"FADEMLN";
/// Current protocol version byte.
pub const WIRE_VERSION: u8 = b'1';
/// Fixed frame header size: magic + version + kind + payload length.
pub const HEADER_LEN: usize = 13;
/// Hard cap on a frame's payload; declared lengths beyond this are
/// refused before allocation.
pub const MAX_PAYLOAD: usize = 1 << 24;
/// Maximum tensor rank a frame may carry (matches the weight codec).
pub const MAX_TENSOR_RANK: usize = 8;
/// Maximum tensor element count a frame may carry.
pub const MAX_TENSOR_NUMEL: usize = 1 << 21;
/// Maximum length of any string field (tenant keys, error reasons).
pub const MAX_STRING: usize = 4096;
/// Maximum top-k entries in a verdict record.
pub const MAX_TOPK: usize = 64;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;
const KIND_GOODBYE: u8 = 4;

/// Tag opening the optional detection-verdict extension of a Response
/// payload. Responses without a detection verdict end right after the
/// probability tensor — byte-identical to the pre-extension format —
/// and decoders only read the extension when bytes remain, so old
/// payloads parse as `detection: None` and old clients never see the
/// extra bytes unless the verdict actually carries them.
const DETECTION_PRESENT: u8 = 1;

/// Typed decode failure. Mirrors the checkpoint codec's discipline:
/// corrupt, truncated or hostile input becomes one of these — never a
/// panic, never an oversized allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first 7 bytes were not `FADEMLN`.
    BadMagic,
    /// Recognized magic, unknown version byte.
    UnsupportedVersion {
        /// The version byte found on the wire.
        found: u8,
    },
    /// The declared payload length exceeds [`MAX_PAYLOAD`] (or an
    /// embedded field exceeds its cap).
    TooLarge {
        /// Declared size.
        declared: u64,
        /// The cap it violated.
        cap: u64,
    },
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the complete frame needs.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
    /// The CRC trailer does not match the framed bytes.
    CrcMismatch {
        /// CRC stored on the wire.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// Recognized header, unknown frame kind.
    UnknownKind {
        /// The kind byte found on the wire.
        kind: u8,
    },
    /// The payload is malformed for its kind (bad enum tag, trailing
    /// bytes, invalid tensor shape, …).
    BadPayload {
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic (not a FAdeML wire stream)"),
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported wire version {found:#04x}")
            }
            FrameError::TooLarge { declared, cap } => {
                write!(f, "declared length {declared} exceeds cap {cap}")
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            FrameError::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            FrameError::UnknownKind { kind } => write!(f, "unknown frame kind {kind}"),
            FrameError::BadPayload { reason } => write!(f, "malformed payload: {reason}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A classification request as it travels the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Threat model the image enters under (routing key).
    pub threat: ThreatModel,
    /// Per-request deadline in microseconds; 0 means none.
    pub deadline_us: u64,
    /// Tenant key for quota accounting (may be empty).
    pub tenant: String,
    /// The `[C, H, W]` image to classify.
    pub image: Tensor,
}

/// A successful verdict as it travels the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// Correlation id of the request this answers.
    pub id: u64,
    /// The pipeline's verdict.
    pub verdict: Verdict,
}

/// A typed serving error as it travels the wire — load-shedding
/// semantics ([`ServeError::Overloaded`], deadlines, …) survive the
/// network hop intact.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFault {
    /// Correlation id of the request this answers (0 when the fault is
    /// connection-level, e.g. a malformed frame).
    pub id: u64,
    /// The serving error, exactly as the engine raised it.
    pub error: ServeError,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server: classify this image.
    Request(WireRequest),
    /// Server → client: the verdict.
    Response(WireResponse),
    /// Server → client: a typed serving error.
    Error(WireFault),
    /// Either direction: orderly end of stream (empty payload).
    Goodbye,
}

/// Encodes one frame to its on-wire bytes.
///
/// # Errors
///
/// [`FrameError::TooLarge`] / [`FrameError::BadPayload`] when a field
/// exceeds its protocol cap (tensor rank or size, string length,
/// top-k entries) — nothing is sent that the decoder would refuse.
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, FrameError> {
    let (kind, payload) = match frame {
        Frame::Request(req) => (KIND_REQUEST, encode_request(req)?),
        Frame::Response(resp) => (KIND_RESPONSE, encode_response(resp)?),
        Frame::Error(fault) => (KIND_ERROR, encode_fault(fault)?),
        Frame::Goodbye => (KIND_GOODBYE, Vec::new()),
    };
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::TooLarge {
            declared: payload.len() as u64,
            cap: MAX_PAYLOAD as u64,
        });
    }
    let mut out = ByteWriter::new();
    out.put_bytes(WIRE_MAGIC);
    out.put_u8(WIRE_VERSION);
    out.put_u8(kind);
    out.put_u32(u32::try_from(payload.len()).unwrap_or(u32::MAX));
    out.put_bytes(&payload);
    let bytes = out.into_bytes();
    // CRC covers kind + len + payload: everything after the version.
    let (_, covered) = bytes.split_at(WIRE_MAGIC.len() + 1);
    let crc = crc32(covered);
    let mut out = ByteWriter::new();
    out.put_bytes(&bytes);
    out.put_u32(crc);
    Ok(out.into_bytes())
}

/// Validates a frame header and returns the declared payload length.
/// Shared by the buffer decoder and the stream reader so the length
/// cap is enforced before either allocates.
fn parse_header(header: &[u8]) -> Result<(u8, usize), FrameError> {
    if header.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            have: header.len(),
        });
    }
    let mut r = ByteReader::new(header);
    let magic = read_or_truncated(r.get_bytes(WIRE_MAGIC.len()), header.len())?;
    if magic != WIRE_MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = read_or_truncated(r.get_u8(), header.len())?;
    if version != WIRE_VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let kind = read_or_truncated(r.get_u8(), header.len())?;
    let declared = read_or_truncated(r.get_u32(), header.len())?;
    let len = usize::try_from(declared).unwrap_or(usize::MAX);
    if len > MAX_PAYLOAD {
        return Err(FrameError::TooLarge {
            declared: u64::from(declared),
            cap: MAX_PAYLOAD as u64,
        });
    }
    Ok((kind, len))
}

/// Decodes one frame from the head of `buf`, returning the frame and
/// the number of bytes it consumed. Strict: payload bytes not consumed
/// by the kind-specific decoder are a [`FrameError::BadPayload`].
///
/// # Errors
///
/// Any [`FrameError`]; never panics, never allocates more than the
/// (capped) declared length.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), FrameError> {
    let (kind, len) = parse_header(buf)?;
    let total = HEADER_LEN + len + 4;
    if buf.len() < total {
        return Err(FrameError::Truncated {
            needed: total,
            have: buf.len(),
        });
    }
    // CRC check before any payload interpretation.
    let (_, after_version) = buf.split_at(WIRE_MAGIC.len() + 1);
    let (covered, trailer) = after_version.split_at(1 + 4 + len);
    let mut tr = ByteReader::new(trailer);
    let stored = read_or_truncated(tr.get_u32(), trailer.len())?;
    let computed = crc32(covered);
    if stored != computed {
        return Err(FrameError::CrcMismatch { stored, computed });
    }
    let (_, body) = buf.split_at(HEADER_LEN);
    let (payload, _) = body.split_at(len);
    let frame = match kind {
        KIND_REQUEST => Frame::Request(decode_request(payload)?),
        KIND_RESPONSE => Frame::Response(decode_response(payload)?),
        KIND_ERROR => Frame::Error(decode_fault(payload)?),
        KIND_GOODBYE => {
            if !payload.is_empty() {
                return Err(FrameError::BadPayload {
                    reason: format!("goodbye frame carries {} payload bytes", payload.len()),
                });
            }
            Frame::Goodbye
        }
        other => return Err(FrameError::UnknownKind { kind: other }),
    };
    Ok((frame, total))
}

/// Writes one frame to a stream.
///
/// # Errors
///
/// [`NetError::Frame`] if the frame violates a protocol cap, or the
/// mapped IO error ([`NetError::Disconnected`] / [`NetError::Timeout`]
/// / [`NetError::Io`]) if the stream fails.
pub fn write_frame<W: Write>(stream: &mut W, frame: &Frame) -> Result<(), NetError> {
    let bytes = encode_frame(frame)?;
    stream
        .write_all(&bytes)
        .and_then(|()| stream.flush())
        .map_err(|err| map_io(err, "writing frame"))
}

/// Reads one complete frame from a stream. The header is read and
/// validated first, so a hostile declared length is refused before the
/// payload buffer is allocated.
///
/// # Errors
///
/// [`NetError::Disconnected`] on EOF (including mid-frame),
/// [`NetError::Timeout`] when the stream's read timeout fires (a
/// slow-loris peer dribbling bytes trips this), [`NetError::Frame`]
/// for malformed bytes, [`NetError::Io`] otherwise.
pub fn read_frame<R: Read>(stream: &mut R) -> Result<Frame, NetError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_ctx(stream, &mut header, "frame header")?;
    let (_, len) = parse_header(&header)?;
    let mut rest = vec![0u8; len + 4];
    read_exact_ctx(stream, &mut rest, "frame body")?;
    let mut full = Vec::with_capacity(HEADER_LEN + rest.len());
    full.extend_from_slice(&header);
    full.extend_from_slice(&rest);
    let (frame, _) = decode_frame(&full)?;
    Ok(frame)
}

fn read_exact_ctx<R: Read>(stream: &mut R, buf: &mut [u8], what: &str) -> Result<(), NetError> {
    stream.read_exact(buf).map_err(|err| map_io(err, what))
}

fn map_io(err: io::Error, context: &str) -> NetError {
    match err.kind() {
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::BrokenPipe => NetError::Disconnected {
            context: format!("{context}: {err}"),
        },
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => NetError::Timeout {
            context: context.to_string(),
        },
        _ => NetError::Io(err),
    }
}

// ── payload codecs ──────────────────────────────────────────────────

fn encode_request(req: &WireRequest) -> Result<Vec<u8>, FrameError> {
    check_string(&req.tenant, "tenant")?;
    let mut w = ByteWriter::new();
    w.put_u64(req.id);
    w.put_u8(threat_tag(req.threat));
    w.put_u64(req.deadline_us);
    w.put_str(&req.tenant);
    put_tensor(&mut w, &req.image)?;
    Ok(w.into_bytes())
}

fn decode_request(payload: &[u8]) -> Result<WireRequest, FrameError> {
    let mut r = ByteReader::new(payload);
    let id = read_payload(r.get_u64())?;
    let threat = threat_from_tag(read_payload(r.get_u8())?)?;
    let deadline_us = read_payload(r.get_u64())?;
    let tenant = get_string(&mut r, "tenant")?;
    let image = get_tensor(&mut r)?;
    expect_drained(&r)?;
    Ok(WireRequest {
        id,
        threat,
        deadline_us,
        tenant,
        image,
    })
}

fn encode_response(resp: &WireResponse) -> Result<Vec<u8>, FrameError> {
    let v = &resp.verdict;
    let k = v.top5.top_classes.len();
    if k != v.top5.top_probs.len() {
        return Err(FrameError::BadPayload {
            reason: "verdict top-k classes and probs disagree in length".into(),
        });
    }
    if k > MAX_TOPK {
        return Err(FrameError::TooLarge {
            declared: k as u64,
            cap: MAX_TOPK as u64,
        });
    }
    let mut w = ByteWriter::new();
    w.put_u64(resp.id);
    w.put_u64(v.class as u64);
    w.put_f32(v.confidence);
    w.put_u8(u8::try_from(k).unwrap_or(u8::MAX));
    for (&class, &prob) in v.top5.top_classes.iter().zip(&v.top5.top_probs) {
        w.put_u64(class as u64);
        w.put_f32(prob);
    }
    put_tensor(&mut w, &v.probabilities)?;
    // Version-tolerant trailing extension: only emitted when present,
    // so detection-free responses stay byte-identical to the original
    // format (see DETECTION_PRESENT).
    if let Some(d) = v.detection {
        if !d.score.is_finite() {
            return Err(FrameError::BadPayload {
                reason: "non-finite detection score".into(),
            });
        }
        w.put_u8(DETECTION_PRESENT);
        w.put_f32(d.score);
        w.put_u8(u8::from(d.flagged));
        w.put_u8(u8::from(d.hardened));
    }
    Ok(w.into_bytes())
}

fn decode_response(payload: &[u8]) -> Result<WireResponse, FrameError> {
    let mut r = ByteReader::new(payload);
    let id = read_payload(r.get_u64())?;
    let class = usize_field(read_payload(r.get_u64())?, "class")?;
    let confidence = read_payload(r.get_f32())?;
    let k = usize::from(read_payload(r.get_u8())?);
    if k > MAX_TOPK {
        return Err(FrameError::TooLarge {
            declared: k as u64,
            cap: MAX_TOPK as u64,
        });
    }
    let mut top_classes = Vec::with_capacity(k);
    let mut top_probs = Vec::with_capacity(k);
    for _ in 0..k {
        top_classes.push(usize_field(read_payload(r.get_u64())?, "top-k class")?);
        top_probs.push(read_payload(r.get_f32())?);
    }
    let probabilities = get_tensor(&mut r)?;
    // Trailing optional detection extension: absent on old-format
    // payloads, which therefore drain right here and parse as `None`.
    let detection = if r.remaining() > 0 {
        let tag = read_payload(r.get_u8())?;
        if tag != DETECTION_PRESENT {
            return Err(FrameError::BadPayload {
                reason: format!("unknown detection tag {tag}"),
            });
        }
        let score = read_payload(r.get_f32())?;
        if !score.is_finite() {
            return Err(FrameError::BadPayload {
                reason: "non-finite detection score".into(),
            });
        }
        let flagged = bool_field(read_payload(r.get_u8())?, "detection flagged")?;
        let hardened = bool_field(read_payload(r.get_u8())?, "detection hardened")?;
        Some(Detection {
            score,
            flagged,
            hardened,
        })
    } else {
        None
    };
    expect_drained(&r)?;
    Ok(WireResponse {
        id,
        verdict: Verdict {
            class,
            confidence,
            top5: Prediction {
                top_classes,
                top_probs,
            },
            probabilities,
            detection,
        },
    })
}

/// Strict wire boolean: anything but 0/1 is corruption, not truthiness.
fn bool_field(byte: u8, what: &str) -> Result<bool, FrameError> {
    match byte {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(FrameError::BadPayload {
            reason: format!("{what} byte must be 0/1, got {other}"),
        }),
    }
}

// ServeError tags on the wire. Stable protocol constants — reordering
// the Rust enum must not change these.
const ERR_OVERLOADED: u8 = 1;
const ERR_SHUTTING_DOWN: u8 = 2;
const ERR_PIPELINE: u8 = 3;
const ERR_BATCH_FAILED: u8 = 4;
const ERR_DEADLINE: u8 = 5;
const ERR_INVALID_INPUT: u8 = 6;
const ERR_INVALID_CONFIG: u8 = 7;
const ERR_INTERNAL: u8 = 8;
const ERR_SWAP_FAILED: u8 = 9;

const STAGE_QUEUE: u8 = 1;
const STAGE_BATCH: u8 = 2;

fn encode_fault(fault: &WireFault) -> Result<Vec<u8>, FrameError> {
    let mut w = ByteWriter::new();
    w.put_u64(fault.id);
    match &fault.error {
        ServeError::Overloaded { capacity } => {
            w.put_u8(ERR_OVERLOADED);
            w.put_u64(*capacity as u64);
        }
        ServeError::ShuttingDown => w.put_u8(ERR_SHUTTING_DOWN),
        ServeError::Pipeline { message } => {
            w.put_u8(ERR_PIPELINE);
            put_reason(&mut w, message)?;
        }
        ServeError::BatchFailed { reason } => {
            w.put_u8(ERR_BATCH_FAILED);
            put_reason(&mut w, reason)?;
        }
        ServeError::DeadlineExceeded { stage } => {
            w.put_u8(ERR_DEADLINE);
            w.put_u8(match stage {
                DeadlineStage::Queue => STAGE_QUEUE,
                DeadlineStage::Batch => STAGE_BATCH,
            });
        }
        ServeError::InvalidInput { reason } => {
            w.put_u8(ERR_INVALID_INPUT);
            put_reason(&mut w, reason)?;
        }
        ServeError::InvalidConfig { reason } => {
            w.put_u8(ERR_INVALID_CONFIG);
            put_reason(&mut w, reason)?;
        }
        ServeError::Internal { reason } => {
            w.put_u8(ERR_INTERNAL);
            put_reason(&mut w, reason)?;
        }
        ServeError::SwapFailed { reason } => {
            w.put_u8(ERR_SWAP_FAILED);
            put_reason(&mut w, reason)?;
        }
    }
    Ok(w.into_bytes())
}

fn decode_fault(payload: &[u8]) -> Result<WireFault, FrameError> {
    let mut r = ByteReader::new(payload);
    let id = read_payload(r.get_u64())?;
    let tag = read_payload(r.get_u8())?;
    let error = match tag {
        ERR_OVERLOADED => ServeError::Overloaded {
            capacity: usize_field(read_payload(r.get_u64())?, "capacity")?,
        },
        ERR_SHUTTING_DOWN => ServeError::ShuttingDown,
        ERR_PIPELINE => ServeError::Pipeline {
            message: get_string(&mut r, "pipeline message")?,
        },
        ERR_BATCH_FAILED => ServeError::BatchFailed {
            reason: get_string(&mut r, "batch-failed reason")?,
        },
        ERR_DEADLINE => {
            let stage = match read_payload(r.get_u8())? {
                STAGE_QUEUE => DeadlineStage::Queue,
                STAGE_BATCH => DeadlineStage::Batch,
                other => {
                    return Err(FrameError::BadPayload {
                        reason: format!("unknown deadline stage tag {other}"),
                    })
                }
            };
            ServeError::DeadlineExceeded { stage }
        }
        ERR_INVALID_INPUT => ServeError::InvalidInput {
            reason: get_string(&mut r, "invalid-input reason")?,
        },
        ERR_INVALID_CONFIG => ServeError::InvalidConfig {
            reason: get_string(&mut r, "invalid-config reason")?,
        },
        ERR_INTERNAL => ServeError::Internal {
            reason: get_string(&mut r, "internal reason")?,
        },
        ERR_SWAP_FAILED => ServeError::SwapFailed {
            reason: get_string(&mut r, "swap-failed reason")?,
        },
        other => {
            return Err(FrameError::BadPayload {
                reason: format!("unknown error tag {other}"),
            })
        }
    };
    expect_drained(&r)?;
    Ok(WireFault { id, error })
}

fn threat_tag(threat: ThreatModel) -> u8 {
    match threat {
        ThreatModel::I => 1,
        ThreatModel::II => 2,
        ThreatModel::III => 3,
    }
}

fn threat_from_tag(tag: u8) -> Result<ThreatModel, FrameError> {
    match tag {
        1 => Ok(ThreatModel::I),
        2 => Ok(ThreatModel::II),
        3 => Ok(ThreatModel::III),
        other => Err(FrameError::BadPayload {
            reason: format!("unknown threat-model tag {other}"),
        }),
    }
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) -> Result<(), FrameError> {
    if t.rank() > MAX_TENSOR_RANK {
        return Err(FrameError::TooLarge {
            declared: t.rank() as u64,
            cap: MAX_TENSOR_RANK as u64,
        });
    }
    if t.numel() > MAX_TENSOR_NUMEL {
        return Err(FrameError::TooLarge {
            declared: t.numel() as u64,
            cap: MAX_TENSOR_NUMEL as u64,
        });
    }
    w.put_u8(u8::try_from(t.rank()).unwrap_or(u8::MAX));
    for &dim in t.dims() {
        w.put_u32(u32::try_from(dim).unwrap_or(u32::MAX));
    }
    for &value in t.as_slice() {
        w.put_f32(value);
    }
    Ok(())
}

fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor, FrameError> {
    let rank = usize::from(read_payload(r.get_u8())?);
    if rank > MAX_TENSOR_RANK {
        return Err(FrameError::TooLarge {
            declared: rank as u64,
            cap: MAX_TENSOR_RANK as u64,
        });
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let dim = usize_field(u64::from(read_payload(r.get_u32())?), "dimension")?;
        numel = numel
            .checked_mul(dim)
            .filter(|&n| n <= MAX_TENSOR_NUMEL)
            .ok_or(FrameError::TooLarge {
                declared: u64::MAX,
                cap: MAX_TENSOR_NUMEL as u64,
            })?;
        dims.push(dim);
    }
    // The element buffer is only allocated after the product of the
    // declared dims passed the cap — and each read is bounds-checked
    // against the actual payload, so a lying header cannot over-read.
    let mut data = Vec::with_capacity(numel);
    for _ in 0..numel {
        data.push(read_payload(r.get_f32())?);
    }
    Tensor::from_vec(data, Shape::new(dims)).map_err(|err| FrameError::BadPayload {
        reason: format!("invalid tensor record: {err}"),
    })
}

fn check_string(s: &str, what: &str) -> Result<(), FrameError> {
    if s.len() > MAX_STRING {
        return Err(FrameError::BadPayload {
            reason: format!(
                "{what} string of {} bytes exceeds cap {MAX_STRING}",
                s.len()
            ),
        });
    }
    Ok(())
}

/// Reasons are truncated (never rejected) on encode: an oversized
/// pipeline error message must not prevent the error from reaching the
/// client at all.
fn put_reason(w: &mut ByteWriter, reason: &str) -> Result<(), FrameError> {
    let mut end = reason.len().min(MAX_STRING);
    while end > 0 && !reason.is_char_boundary(end) {
        end -= 1;
    }
    let (head, _) = reason.split_at(end);
    w.put_str(head);
    Ok(())
}

fn get_string(r: &mut ByteReader<'_>, what: &str) -> Result<String, FrameError> {
    let s = r.get_str().map_err(|err| FrameError::BadPayload {
        reason: format!("{what}: {err}"),
    })?;
    check_string(&s, what)?;
    Ok(s)
}

fn usize_field(value: u64, what: &str) -> Result<usize, FrameError> {
    usize::try_from(value).map_err(|_| FrameError::BadPayload {
        reason: format!("{what} value {value} does not fit this platform"),
    })
}

fn read_payload<T>(result: io::Result<T>) -> Result<T, FrameError> {
    result.map_err(|err| FrameError::BadPayload {
        reason: format!("payload record: {err}"),
    })
}

fn read_or_truncated<T>(result: io::Result<T>, have: usize) -> Result<T, FrameError> {
    result.map_err(|_| FrameError::Truncated {
        needed: HEADER_LEN,
        have,
    })
}

fn expect_drained(r: &ByteReader<'_>) -> Result<(), FrameError> {
    if r.remaining() != 0 {
        return Err(FrameError::BadPayload {
            reason: format!("{} trailing payload bytes", r.remaining()),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Tensor {
        let data: Vec<f32> = (0..12).map(|i| i as f32 / 12.0).collect();
        Tensor::from_vec(data, Shape::new(vec![3, 2, 2])).unwrap()
    }

    fn request() -> Frame {
        Frame::Request(WireRequest {
            id: 7,
            threat: ThreatModel::II,
            deadline_us: 250_000,
            tenant: "acme".into(),
            image: image(),
        })
    }

    #[test]
    fn request_round_trips() {
        let frame = request();
        let bytes = encode_frame(&frame).unwrap();
        let (back, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn response_round_trips() {
        let frame = Frame::Response(WireResponse {
            id: 9,
            verdict: Verdict {
                class: 3,
                confidence: 0.75,
                top5: Prediction {
                    top_classes: vec![3, 1, 0],
                    top_probs: vec![0.75, 0.2, 0.05],
                },
                probabilities: image(),
                detection: None,
            },
        });
        let bytes = encode_frame(&frame).unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, frame);
    }

    #[test]
    fn every_error_variant_round_trips() {
        let errors = [
            ServeError::Overloaded { capacity: 256 },
            ServeError::ShuttingDown,
            ServeError::Pipeline {
                message: "bad filter".into(),
            },
            ServeError::BatchFailed {
                reason: "worker died".into(),
            },
            ServeError::DeadlineExceeded {
                stage: DeadlineStage::Queue,
            },
            ServeError::DeadlineExceeded {
                stage: DeadlineStage::Batch,
            },
            ServeError::InvalidInput {
                reason: "NaN pixel".into(),
            },
            ServeError::InvalidConfig {
                reason: "zero workers".into(),
            },
            ServeError::Internal {
                reason: "spawn failed".into(),
            },
            ServeError::SwapFailed {
                reason: "CRC".into(),
            },
        ];
        for error in errors {
            let frame = Frame::Error(WireFault {
                id: 1,
                error: error.clone(),
            });
            let bytes = encode_frame(&frame).unwrap();
            assert_eq!(decode_frame(&bytes).unwrap().0, frame, "{error}");
        }
    }

    #[test]
    fn goodbye_round_trips() {
        let bytes = encode_frame(&Frame::Goodbye).unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::Goodbye);
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = encode_frame(&Frame::Goodbye).unwrap();
        bytes[0] ^= 0xFF;
        assert_eq!(decode_frame(&bytes).unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn unknown_version_detected() {
        let mut bytes = encode_frame(&Frame::Goodbye).unwrap();
        bytes[7] = b'9';
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            FrameError::UnsupportedVersion { found: b'9' }
        ));
    }

    #[test]
    fn oversized_declared_length_refused_before_allocation() {
        let mut bytes = encode_frame(&Frame::Goodbye).unwrap();
        // Declare a 4 GiB payload.
        bytes[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes).unwrap_err(),
            FrameError::TooLarge { .. }
        ));
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = encode_frame(&request()).unwrap();
        for keep in 0..bytes.len() {
            let err = decode_frame(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn bit_flip_after_version_fails_crc() {
        let bytes = encode_frame(&request()).unwrap();
        for at in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            let err = decode_frame(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::CrcMismatch { .. }
                        | FrameError::TooLarge { .. }
                        | FrameError::Truncated { .. }
                ),
                "flip at {at}: {err}"
            );
        }
    }

    #[test]
    fn oversized_tensor_dims_refused() {
        // Hand-build a request whose tensor claims 2^30 elements.
        let mut w = ByteWriter::new();
        w.put_u64(1);
        w.put_u8(1); // threat I
        w.put_u64(0);
        w.put_str("");
        w.put_u8(2); // rank 2
        w.put_u32(1 << 15);
        w.put_u32(1 << 15);
        let payload = w.into_bytes();
        let mut f = ByteWriter::new();
        f.put_bytes(WIRE_MAGIC);
        f.put_u8(WIRE_VERSION);
        f.put_u8(1);
        f.put_u32(u32::try_from(payload.len()).unwrap());
        f.put_bytes(&payload);
        let framed = f.into_bytes();
        let (_, covered) = framed.split_at(8);
        let crc = crc32(covered);
        let mut f = ByteWriter::new();
        f.put_bytes(&framed);
        f.put_u32(crc);
        assert!(matches!(
            decode_frame(&f.into_bytes()).unwrap_err(),
            FrameError::TooLarge { .. }
        ));
    }

    #[test]
    fn trailing_payload_bytes_refused() {
        let mut w = ByteWriter::new();
        w.put_u64(3);
        w.put_u8(ERR_SHUTTING_DOWN);
        w.put_u8(0xAA); // junk
        let payload = w.into_bytes();
        let mut f = ByteWriter::new();
        f.put_bytes(WIRE_MAGIC);
        f.put_u8(WIRE_VERSION);
        f.put_u8(KIND_ERROR);
        f.put_u32(u32::try_from(payload.len()).unwrap());
        f.put_bytes(&payload);
        let framed = f.into_bytes();
        let (_, covered) = framed.split_at(8);
        let crc = crc32(covered);
        let mut f = ByteWriter::new();
        f.put_bytes(&framed);
        f.put_u32(crc);
        assert!(matches!(
            decode_frame(&f.into_bytes()).unwrap_err(),
            FrameError::BadPayload { .. }
        ));
    }

    #[test]
    fn long_reason_truncated_on_encode_not_rejected() {
        let frame = Frame::Error(WireFault {
            id: 0,
            error: ServeError::Pipeline {
                message: "x".repeat(MAX_STRING * 2),
            },
        });
        let bytes = encode_frame(&frame).unwrap();
        let (back, _) = decode_frame(&bytes).unwrap();
        let Frame::Error(fault) = back else {
            panic!("wrong kind");
        };
        let ServeError::Pipeline { message } = fault.error else {
            panic!("wrong error");
        };
        assert_eq!(message.len(), MAX_STRING);
    }

    /// Frames `payload` as a `kind` record with a freshly computed CRC,
    /// so payload-level corruption tests get past the frame check and
    /// actually exercise the payload decoder.
    fn frame_raw(kind: u8, payload: &[u8]) -> Vec<u8> {
        let mut f = ByteWriter::new();
        f.put_bytes(WIRE_MAGIC);
        f.put_u8(WIRE_VERSION);
        f.put_u8(kind);
        f.put_u32(u32::try_from(payload.len()).unwrap());
        f.put_bytes(payload);
        let framed = f.into_bytes();
        let (_, covered) = framed.split_at(8);
        let crc = crc32(covered);
        let mut f = ByteWriter::new();
        f.put_bytes(&framed);
        f.put_u32(crc);
        f.into_bytes()
    }

    fn response_with_detection() -> Frame {
        Frame::Response(WireResponse {
            id: 41,
            verdict: Verdict {
                class: 2,
                confidence: 0.6,
                top5: Prediction {
                    top_classes: vec![2, 4],
                    top_probs: vec![0.6, 0.3],
                },
                probabilities: image(),
                detection: Some(Detection {
                    score: 0.87,
                    flagged: true,
                    hardened: true,
                }),
            },
        })
    }

    /// Byte length of the trailing detection extension: tag + f32
    /// score + flagged + hardened.
    const DETECTION_EXT_LEN: usize = 7;

    #[test]
    fn detection_extension_round_trips_and_absence_is_byte_identical() {
        let with = response_with_detection();
        let bytes = encode_frame(&with).unwrap();
        assert_eq!(decode_frame(&bytes).unwrap().0, with);

        // A detection-free response must stay byte-identical to the
        // pre-extension format: exactly DETECTION_EXT_LEN shorter.
        let Frame::Response(resp) = &with else {
            panic!("wrong kind");
        };
        let mut legacy = resp.clone();
        legacy.verdict.detection = None;
        let legacy_bytes = encode_frame(&Frame::Response(legacy)).unwrap();
        assert_eq!(legacy_bytes.len() + DETECTION_EXT_LEN, bytes.len());
    }

    #[test]
    fn legacy_response_payload_parses_as_no_detection() {
        // Simulate a payload from an old server: take the extended
        // payload and drop the trailing extension bytes.
        let bytes = encode_frame(&response_with_detection()).unwrap();
        let payload = &bytes[HEADER_LEN..bytes.len() - 4];
        let legacy_payload = &payload[..payload.len() - DETECTION_EXT_LEN];
        let (frame, _) = decode_frame(&frame_raw(KIND_RESPONSE, legacy_payload)).unwrap();
        let Frame::Response(resp) = frame else {
            panic!("wrong kind");
        };
        assert_eq!(resp.verdict.detection, None);
        assert_eq!(resp.verdict.class, 2);
    }

    #[test]
    fn truncated_detection_fields_are_refused() {
        // Cutting 1..DETECTION_EXT_LEN-1 bytes leaves a partial
        // extension; even behind a valid frame CRC that is a typed
        // BadPayload, never a panic.
        let bytes = encode_frame(&response_with_detection()).unwrap();
        let payload = &bytes[HEADER_LEN..bytes.len() - 4];
        for cut in 1..DETECTION_EXT_LEN {
            let partial = &payload[..payload.len() - cut];
            let err = decode_frame(&frame_raw(KIND_RESPONSE, partial)).unwrap_err();
            assert!(
                matches!(err, FrameError::BadPayload { .. }),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn bit_flipped_detection_fields_are_refused() {
        let bytes = encode_frame(&response_with_detection()).unwrap();
        let payload = bytes[HEADER_LEN..bytes.len() - 4].to_vec();
        let ext_start = payload.len() - DETECTION_EXT_LEN;

        // Unknown extension tag.
        let mut bad = payload.clone();
        bad[ext_start] = 9;
        assert!(matches!(
            decode_frame(&frame_raw(KIND_RESPONSE, &bad)).unwrap_err(),
            FrameError::BadPayload { .. }
        ));

        // Non-finite score (all-ones exponent ⇒ NaN).
        let mut bad = payload.clone();
        bad[ext_start + 3] = 0xFF;
        bad[ext_start + 4] = 0x7F;
        assert!(matches!(
            decode_frame(&frame_raw(KIND_RESPONSE, &bad)).unwrap_err(),
            FrameError::BadPayload { .. }
        ));

        // Flagged / hardened bytes (extension offsets 5 and 6) must be
        // strict booleans.
        for off in [5usize, 6] {
            let mut bad = payload.clone();
            bad[ext_start + off] ^= 0x04;
            assert!(matches!(
                decode_frame(&frame_raw(KIND_RESPONSE, &bad)).unwrap_err(),
                FrameError::BadPayload { .. }
            ));
        }

        // Without recomputing the CRC, any flip in the extension is
        // caught at the frame layer before the payload decoder runs.
        for at in bytes.len() - 4 - DETECTION_EXT_LEN..bytes.len() {
            let mut bad = bytes.clone();
            bad[at] ^= 0x10;
            let err = decode_frame(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    FrameError::CrcMismatch { .. } | FrameError::Truncated { .. }
                ),
                "flip at {at}: {err}"
            );
        }
    }

    #[test]
    fn non_finite_detection_score_refused_on_encode() {
        let Frame::Response(mut resp) = response_with_detection() else {
            panic!("wrong kind");
        };
        resp.verdict.detection = Some(Detection {
            score: f32::NAN,
            flagged: false,
            hardened: false,
        });
        assert!(matches!(
            encode_frame(&Frame::Response(resp)).unwrap_err(),
            FrameError::BadPayload { .. }
        ));
    }

    #[test]
    fn stream_reader_handles_back_to_back_frames() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&encode_frame(&request()).unwrap());
        buf.extend_from_slice(&encode_frame(&Frame::Goodbye).unwrap());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor).unwrap(),
            Frame::Request(_)
        ));
        assert!(matches!(read_frame(&mut cursor).unwrap(), Frame::Goodbye));
        assert!(matches!(
            read_frame(&mut cursor).unwrap_err(),
            NetError::Disconnected { .. }
        ));
    }
}
