//! The front router: shards requests across N in-process replica
//! [`InferenceServer`]s via consistent hashing keyed on threat model,
//! applies per-tenant token-bucket quotas ahead of the replicas' own
//! queue-full shedding, tracks per-replica health, and performs
//! rolling zero-downtime weight swaps.
//!
//! Routing is threat-model-keyed on purpose: the serving engine never
//! mixes threat models in one batch, so pinning each threat model to a
//! stable replica (ring walk order) maximizes batch coalescing. When
//! the pinned replica is unhealthy — breaker open or too many
//! consecutive hard failures — the walk continues to the next healthy
//! replica; when it is merely full, one spill attempt is made before
//! the `Overloaded` error propagates to the caller.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use fademl::{InferencePipeline, ThreatModel, Verdict};
use fademl_detect::Detector;
use fademl_serve::error::{Result, ServeError};
use fademl_serve::metrics::MetricsReport;
use fademl_serve::{InferenceServer, ResponseHandle, ServerConfig, TriageConfig};
use serde::{Deserialize, Serialize};

#[cfg(feature = "faults")]
use fademl_serve::FaultPlan;

use crate::quota::{QuotaConfig, TenantQuotas};

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Number of in-process replica servers.
    pub replicas: usize,
    /// Configuration applied to every replica.
    pub replica: ServerConfig,
    /// Virtual nodes per replica on the hash ring; more nodes smooth
    /// the key distribution.
    pub virtual_nodes: usize,
    /// Per-tenant admission quotas (rate 0 disables them).
    pub quota: QuotaConfig,
    /// Consecutive hard failures (batch/pipeline/internal errors)
    /// after which a replica is routed around until it succeeds again.
    pub unhealthy_after: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            replicas: 2,
            replica: ServerConfig::default(),
            virtual_nodes: 16,
            quota: QuotaConfig::default(),
            unhealthy_after: 3,
        }
    }
}

impl RouterConfig {
    /// Validates the settings.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] with the offending field named.
    pub fn validate(&self) -> Result<()> {
        if self.replicas == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "replicas must be at least 1".into(),
            });
        }
        if self.virtual_nodes == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "virtual_nodes must be at least 1".into(),
            });
        }
        if self.unhealthy_after == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "unhealthy_after must be at least 1".into(),
            });
        }
        self.replica.validate()
    }
}

#[derive(Debug)]
struct ReplicaSlot {
    id: u64,
    server: InferenceServer,
    consecutive_failures: AtomicU32,
}

/// A router over N replica serving engines. See the module docs for
/// the routing policy.
#[derive(Debug)]
pub struct ReplicaRouter {
    replicas: Vec<ReplicaSlot>,
    /// Sorted `(hash, replica index)` ring with virtual nodes.
    ring: Vec<(u64, usize)>,
    quotas: TenantQuotas,
    shutting_down: AtomicBool,
    unhealthy_after: u32,
    queue_capacity: usize,
    quota_rejected: AtomicU64,
    rerouted: AtomicU64,
    spilled: AtomicU64,
}

/// Router-level snapshot: the aggregated serving report (with its
/// per-replica section) plus the router's own admission counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterReport {
    /// Requests refused by tenant quotas before reaching any replica.
    pub quota_rejected: u64,
    /// Requests steered away from an unhealthy primary replica.
    pub rerouted: u64,
    /// Requests spilled to a second replica after the first shed load.
    pub spilled: u64,
    /// Aggregated serving metrics across replicas (the `replicas`
    /// field holds the per-replica breakdown).
    pub serving: MetricsReport,
}

impl RouterReport {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = self.serving.render();
        out.push_str(&format!(
            "  router:   {} quota-rejected, {} rerouted, {} spilled\n",
            self.quota_rejected, self.rerouted, self.spilled,
        ));
        out
    }
}

impl ReplicaRouter {
    /// Starts `config.replicas` serving engines, each on a clone of
    /// `pipeline`, and the hash ring over them.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for unusable settings, or
    /// whatever a replica's [`InferenceServer::start`] fails with.
    pub fn start(pipeline: InferencePipeline, config: RouterConfig) -> Result<Self> {
        Self::launch(pipeline, config, Vec::new())
    }

    /// Starts `config.replicas` serving engines with adversarial triage:
    /// every replica scores admitted images against its own copy of
    /// `detector` and routes flagged inputs to its hardened path. Pairs
    /// with [`swap_detectors`](ReplicaRouter::swap_detectors) for
    /// rolling zero-downtime detector refresh across the fleet.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for unusable settings, or whatever
    /// a replica's [`InferenceServer::start_with_triage`] fails with.
    pub fn start_with_triage(
        pipeline: InferencePipeline,
        config: RouterConfig,
        detector: Detector,
        triage: TriageConfig,
    ) -> Result<Self> {
        config.validate()?;
        let mut replicas = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let server = InferenceServer::start_with_triage(
                pipeline.clone(),
                config.replica.clone(),
                detector.clone(),
                triage.clone(),
            )?;
            replicas.push(ReplicaSlot {
                id: id as u64,
                server,
                consecutive_failures: AtomicU32::new(0),
            });
        }
        Ok(Self::assemble(replicas, config))
    }

    /// Starts the router with per-replica fault plans (chaos testing):
    /// replica `i` is armed with `plans[i]`; replicas beyond the list
    /// run clean.
    ///
    /// # Errors
    ///
    /// Same as [`start`](ReplicaRouter::start).
    #[cfg(feature = "faults")]
    pub fn start_with_faults(
        pipeline: InferencePipeline,
        config: RouterConfig,
        plans: Vec<FaultPlan>,
    ) -> Result<Self> {
        Self::launch(pipeline, config, plans)
    }

    #[cfg(feature = "faults")]
    fn launch(
        pipeline: InferencePipeline,
        config: RouterConfig,
        plans: Vec<FaultPlan>,
    ) -> Result<Self> {
        config.validate()?;
        let mut plans = plans.into_iter();
        let mut replicas = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let server = match plans.next() {
                Some(plan) => InferenceServer::start_with_faults(
                    pipeline.clone(),
                    config.replica.clone(),
                    plan,
                )?,
                None => InferenceServer::start(pipeline.clone(), config.replica.clone())?,
            };
            replicas.push(ReplicaSlot {
                id: id as u64,
                server,
                consecutive_failures: AtomicU32::new(0),
            });
        }
        Ok(Self::assemble(replicas, config))
    }

    #[cfg(not(feature = "faults"))]
    fn launch(pipeline: InferencePipeline, config: RouterConfig, _plans: Vec<()>) -> Result<Self> {
        config.validate()?;
        let mut replicas = Vec::with_capacity(config.replicas);
        for id in 0..config.replicas {
            let server = InferenceServer::start(pipeline.clone(), config.replica.clone())?;
            replicas.push(ReplicaSlot {
                id: id as u64,
                server,
                consecutive_failures: AtomicU32::new(0),
            });
        }
        Ok(Self::assemble(replicas, config))
    }

    fn assemble(replicas: Vec<ReplicaSlot>, config: RouterConfig) -> Self {
        let mut ring = Vec::with_capacity(config.replicas * config.virtual_nodes);
        for replica in 0..config.replicas {
            for vnode in 0..config.virtual_nodes {
                let key = format!("replica-{replica}-vnode-{vnode}");
                ring.push((fnv1a(key.as_bytes()), replica));
            }
        }
        ring.sort_unstable();
        ReplicaRouter {
            replicas,
            ring,
            quotas: TenantQuotas::new(config.quota),
            shutting_down: AtomicBool::new(false),
            unhealthy_after: config.unhealthy_after,
            queue_capacity: config.replica.queue_capacity,
            quota_rejected: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
        }
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The replica queue capacity quoted in quota-shed `Overloaded`
    /// errors.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Whether replica `idx` is currently routable.
    pub fn replica_healthy(&self, idx: usize) -> bool {
        self.replicas.get(idx).is_some_and(|s| self.slot_healthy(s))
    }

    fn slot_healthy(&self, slot: &ReplicaSlot) -> bool {
        slot.consecutive_failures.load(Ordering::Relaxed) < self.unhealthy_after
            && !slot.server.is_degraded()
    }

    /// Replica indices in routing preference order for `threat`:
    /// the ring walk from the threat key's hash, distinct replicas.
    fn candidates(&self, threat: ThreatModel) -> Vec<usize> {
        let key = fnv1a(threat_key(threat).as_bytes());
        let start = self.ring.partition_point(|&(hash, _)| hash < key);
        let mut order = Vec::with_capacity(self.replicas.len());
        for &(_, idx) in self
            .ring
            .iter()
            .skip(start)
            .chain(self.ring.iter().take(start))
        {
            if !order.contains(&idx) {
                order.push(idx);
                if order.len() == self.replicas.len() {
                    break;
                }
            }
        }
        order
    }

    /// Submits one request through admission control and routing,
    /// returning the serving replica's index and the response handle.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShuttingDown`] during shutdown,
    /// [`ServeError::Overloaded`] when the tenant's quota is exhausted
    /// or the chosen replica (and its spill target) shed load, plus
    /// everything the replica's own admission can raise.
    pub fn submit(
        &self,
        image: fademl_tensor::Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
        tenant: &str,
    ) -> Result<(usize, ResponseHandle)> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if !self.quotas.admit(tenant, Instant::now()) {
            self.quota_rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                capacity: self.queue_capacity,
            });
        }
        let order = self.candidates(threat);
        let primary = order.first().copied().ok_or_else(|| ServeError::Internal {
            reason: "router has no replicas".into(),
        })?;
        let chosen = order
            .iter()
            .copied()
            .find(|&idx| self.replica_healthy(idx))
            .unwrap_or(primary);
        if chosen != primary {
            self.rerouted.fetch_add(1, Ordering::Relaxed);
        }
        let spill_target = order
            .iter()
            .copied()
            .find(|&idx| idx != chosen && self.replica_healthy(idx));
        let slot = self
            .replicas
            .get(chosen)
            .ok_or_else(|| ServeError::Internal {
                reason: "replica index out of range".into(),
            })?;
        // Keep a copy only if a spill target exists to retry on.
        let retry_image = spill_target.map(|_| image.clone());
        match slot.server.submit_with_deadline(image, threat, deadline) {
            Ok(handle) => Ok((chosen, handle)),
            Err(ServeError::Overloaded { capacity }) => {
                let (Some(next), Some(image)) = (spill_target, retry_image) else {
                    return Err(ServeError::Overloaded { capacity });
                };
                let slot = self
                    .replicas
                    .get(next)
                    .ok_or_else(|| ServeError::Internal {
                        reason: "replica index out of range".into(),
                    })?;
                self.spilled.fetch_add(1, Ordering::Relaxed);
                slot.server
                    .submit_with_deadline(image, threat, deadline)
                    .map(|handle| (next, handle))
            }
            Err(err) => Err(err),
        }
    }

    /// Submit, wait, and feed the outcome back into health tracking.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](ReplicaRouter::submit), plus any error the
    /// serving engine answers with.
    pub fn classify_for_tenant(
        &self,
        image: fademl_tensor::Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
        tenant: &str,
    ) -> Result<Verdict> {
        let (replica, handle) = self.submit(image, threat, deadline, tenant)?;
        let result = handle.wait();
        self.record_outcome(replica, &result);
        result
    }

    /// Convenience: classify with no deadline under the empty tenant.
    ///
    /// # Errors
    ///
    /// Same as [`classify_for_tenant`](ReplicaRouter::classify_for_tenant).
    pub fn classify(&self, image: fademl_tensor::Tensor, threat: ThreatModel) -> Result<Verdict> {
        self.classify_for_tenant(image, threat, None, "")
    }

    /// Feeds a request outcome into replica health: hard failures
    /// (lost batches, pipeline faults, engine errors) count toward the
    /// unhealthy threshold; any success resets it. Deadline misses and
    /// load sheds are *not* health signals — a busy replica is not a
    /// broken one.
    pub fn record_outcome(&self, replica: usize, result: &Result<Verdict>) {
        let Some(slot) = self.replicas.get(replica) else {
            return;
        };
        match result {
            Ok(_) => slot.consecutive_failures.store(0, Ordering::Relaxed),
            Err(
                ServeError::BatchFailed { .. }
                | ServeError::Pipeline { .. }
                | ServeError::Internal { .. },
            ) => {
                slot.consecutive_failures.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {}
        }
    }

    /// Rolling hot weight swap: each replica validates and swaps the
    /// `FADEMLW2` artifact in turn while the others keep serving, so
    /// the fleet never has zero capacity. Returns the generation the
    /// last replica reached. Aborts on the first refusal — already
    /// swapped replicas keep the new weights (the artifact that passed
    /// validation once is sound; a refusal means it never applied to
    /// any remaining replica's architecture).
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapFailed`] from the first replica that refuses
    /// the artifact.
    pub fn swap_weights(&self, artifact: &[u8]) -> Result<u64> {
        let mut generation = 0;
        for slot in &self.replicas {
            generation = slot.server.swap_weights(artifact)?;
        }
        Ok(generation)
    }

    /// Rolling hot *detector* swap, mirroring
    /// [`swap_weights`](ReplicaRouter::swap_weights): each replica
    /// validates and swaps the `FADEMLD1` artifact in turn while the
    /// others keep triaging on their incumbent, so the fleet is never
    /// blind. Returns the generation the last replica reached; aborts
    /// on the first refusal (already-swapped replicas keep the new
    /// detector).
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapFailed`] from the first replica that refuses
    /// the artifact (corrupt bytes, mismatched feature geometry, or a
    /// replica started without triage).
    pub fn swap_detectors(&self, artifact: &[u8]) -> Result<u64> {
        let mut generation = 0;
        for slot in &self.replicas {
            generation = slot.server.swap_detector(artifact)?;
        }
        Ok(generation)
    }

    /// The detector generation every replica has provably reached
    /// (minimum across replicas).
    pub fn detector_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|slot| slot.server.detector_generation())
            .min()
            .unwrap_or(0)
    }

    /// The weight generation every replica has provably reached
    /// (minimum across replicas).
    pub fn swap_generation(&self) -> u64 {
        self.replicas
            .iter()
            .map(|slot| slot.server.swap_generation())
            .min()
            .unwrap_or(0)
    }

    /// Live aggregated snapshot.
    pub fn report(&self) -> RouterReport {
        let parts: Vec<(u64, bool, MetricsReport)> = self
            .replicas
            .iter()
            .map(|slot| (slot.id, self.slot_healthy(slot), slot.server.metrics()))
            .collect();
        RouterReport {
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            serving: MetricsReport::aggregate(&parts),
        }
    }

    /// Graceful shutdown: stops accepting, then drains every replica
    /// (each replica answers all queued and in-flight requests before
    /// its threads exit) and returns the final aggregated report.
    pub fn shutdown(self) -> RouterReport {
        self.shutting_down.store(true, Ordering::Release);
        let unhealthy_after = self.unhealthy_after;
        let parts: Vec<(u64, bool, MetricsReport)> = self
            .replicas
            .into_iter()
            .map(|slot| {
                let healthy = slot.consecutive_failures.load(Ordering::Relaxed) < unhealthy_after
                    && !slot.server.is_degraded();
                (slot.id, healthy, slot.server.shutdown())
            })
            .collect();
        RouterReport {
            quota_rejected: self.quota_rejected.load(Ordering::Relaxed),
            rerouted: self.rerouted.load(Ordering::Relaxed),
            spilled: self.spilled.load(Ordering::Relaxed),
            serving: MetricsReport::aggregate(&parts),
        }
    }
}

fn threat_key(threat: ThreatModel) -> &'static str {
    match threat {
        ThreatModel::I => "threat-I",
        ThreatModel::II => "threat-II",
        ThreatModel::III => "threat-III",
    }
}

/// FNV-1a 64-bit: tiny, dependency-free, and plenty uniform for a
/// consistent-hash ring over a handful of replicas.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_filters::FilterSpec;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::{Tensor, TensorRng};

    fn pipeline() -> InferencePipeline {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        InferencePipeline::new(model, FilterSpec::Lap { np: 8 }).unwrap()
    }

    fn image(seed: u64) -> Tensor {
        TensorRng::seed_from_u64(seed).uniform(&[3, 16, 16], 0.0, 1.0)
    }

    fn config() -> RouterConfig {
        RouterConfig {
            replicas: 2,
            replica: ServerConfig {
                queue_capacity: 64,
                max_batch_size: 4,
                linger_us: 500,
                workers: 1,
                ..ServerConfig::default()
            },
            ..RouterConfig::default()
        }
    }

    #[test]
    fn routes_and_serves_all_threat_models() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        let reference = pipeline();
        for (i, threat) in [ThreatModel::I, ThreatModel::II, ThreatModel::III]
            .into_iter()
            .enumerate()
        {
            let img = image(i as u64 + 10);
            let served = router.classify(img.clone(), threat).unwrap();
            let direct = reference.classify(&img, threat).unwrap();
            assert_eq!(served.class, direct.class);
        }
        let report = router.shutdown();
        assert_eq!(report.serving.requests_completed, 3);
        assert_eq!(report.serving.requests_failed, 0);
        assert_eq!(report.serving.replicas.len(), 2);
    }

    #[test]
    fn threat_routing_is_deterministic() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        let a = router.candidates(ThreatModel::I);
        let b = router.candidates(ThreatModel::I);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_ne!(a[0], a[1]);
        router.shutdown();
    }

    #[test]
    fn quota_exhaustion_is_overloaded() {
        let mut cfg = config();
        cfg.quota = QuotaConfig {
            rate_per_sec: 1,
            burst: 2,
        };
        let router = ReplicaRouter::start(pipeline(), cfg).unwrap();
        let mut sheds = 0;
        for i in 0..5 {
            match router.classify_for_tenant(image(i), ThreatModel::I, None, "greedy") {
                Ok(_) => {}
                Err(ServeError::Overloaded { .. }) => sheds += 1,
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(sheds >= 2, "burst of 2 must shed some of 5 instant calls");
        let report = router.shutdown();
        assert_eq!(report.quota_rejected, sheds);
    }

    #[test]
    fn unhealthy_replica_is_routed_around() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        let primary = *router.candidates(ThreatModel::II).first().unwrap();
        // Push the primary over the failure threshold by hand.
        for _ in 0..3 {
            router.record_outcome(
                primary,
                &Err(ServeError::BatchFailed {
                    reason: "injected".into(),
                }),
            );
        }
        assert!(!router.replica_healthy(primary));
        let (served_by, handle) = router.submit(image(42), ThreatModel::II, None, "").unwrap();
        assert_ne!(served_by, primary, "must route around the sick replica");
        let result = handle.wait();
        router.record_outcome(served_by, &result);
        assert!(result.is_ok());
        let report = router.shutdown();
        assert_eq!(report.rerouted, 1);
    }

    #[test]
    fn success_resets_failure_count() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        router.record_outcome(
            0,
            &Err(ServeError::Pipeline {
                message: "x".into(),
            }),
        );
        router.record_outcome(
            0,
            &Err(ServeError::Pipeline {
                message: "x".into(),
            }),
        );
        assert!(router.replica_healthy(0));
        let verdict = Err(ServeError::DeadlineExceeded {
            stage: fademl_serve::DeadlineStage::Queue,
        });
        // Deadline misses are not health signals.
        router.record_outcome(0, &verdict);
        assert!(router.replica_healthy(0));
        router.shutdown();
    }

    #[test]
    fn rolling_swap_advances_every_replica() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        assert_eq!(router.swap_generation(), 0);
        let mut rng = TensorRng::seed_from_u64(50);
        let next = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let artifact = fademl::serialize::encode_weights(&next);
        let generation = router.swap_weights(&artifact).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(router.swap_generation(), 1);
        let report = router.shutdown();
        assert_eq!(report.serving.swap_generation, 1);
        for replica in &report.serving.replicas {
            assert_eq!(replica.swap_generation, 1);
        }
    }

    #[test]
    fn rolling_detector_swap_advances_every_replica() {
        let detector_for = |seed: u64| {
            let samples: Vec<Tensor> = (0..32).map(|i| image(seed + i)).collect();
            Detector::fit_images(
                &samples,
                &fademl_detect::DetectorConfig {
                    trees: 8,
                    subsample: 16,
                    scales: 2,
                    seed,
                },
            )
            .unwrap()
        };
        let router = ReplicaRouter::start_with_triage(
            pipeline(),
            config(),
            detector_for(100),
            TriageConfig::default(),
        )
        .unwrap();
        assert_eq!(router.detector_generation(), 0);
        router.classify(image(1), ThreatModel::II).unwrap();
        let generation = router
            .swap_detectors(&detector_for(200).to_bytes())
            .unwrap();
        assert_eq!(generation, 1);
        assert_eq!(router.detector_generation(), 1);
        // Serving continues on the swapped fleet, still annotated.
        let verdict = router.classify(image(2), ThreatModel::II).unwrap();
        assert!(verdict.detection.is_some());
        // A corrupt artifact is refused and the generation holds.
        assert!(matches!(
            router.swap_detectors(&[0_u8; 16]),
            Err(ServeError::SwapFailed { .. })
        ));
        assert_eq!(router.detector_generation(), 1);
        let report = router.shutdown();
        assert_eq!(report.serving.requests_failed, 0);
    }

    #[test]
    fn triage_swap_on_plain_router_is_refused_typed() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        assert!(matches!(
            router.swap_detectors(&[0_u8; 16]),
            Err(ServeError::SwapFailed { .. })
        ));
        assert_eq!(router.detector_generation(), 0);
        router.shutdown();
    }

    #[test]
    fn invalid_config_refused() {
        assert!(matches!(
            ReplicaRouter::start(
                pipeline(),
                RouterConfig {
                    replicas: 0,
                    ..RouterConfig::default()
                }
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn router_report_serde_round_trips() {
        let router = ReplicaRouter::start(pipeline(), config()).unwrap();
        let _ = router.classify(image(1), ThreatModel::I).unwrap();
        let report = router.shutdown();
        let json = serde::json::to_string_pretty(&report);
        let back: RouterReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
