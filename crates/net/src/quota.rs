//! Per-tenant token-bucket admission control.
//!
//! Integer arithmetic throughout (milli-tokens), with the clock passed
//! in by the caller — deterministic under test, no floating-point
//! drift, no hidden `Instant::now()`.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::Mutex;

/// Cap on distinct tracked tenants; beyond this, unseen tenants share
/// one overflow bucket so a tenant-name-spraying client cannot grow
/// the map without bound.
const MAX_TENANTS: usize = 4096;

/// Milli-tokens per token.
const MILLI: u64 = 1000;

/// Token-bucket parameters applied to every tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaConfig {
    /// Sustained requests per second per tenant; 0 disables quotas.
    pub rate_per_sec: u32,
    /// Burst allowance: the bucket's capacity in requests.
    pub burst: u32,
}

impl Default for QuotaConfig {
    fn default() -> Self {
        QuotaConfig {
            rate_per_sec: 0,
            burst: 8,
        }
    }
}

#[derive(Debug)]
struct TokenBucket {
    milli_tokens: u64,
    last_refill: Instant,
}

/// Thread-safe per-tenant token buckets. One short lock per admission
/// decision; buckets are created lazily and capped at [`MAX_TENANTS`].
#[derive(Debug)]
pub struct TenantQuotas {
    config: QuotaConfig,
    buckets: Mutex<HashMap<String, TokenBucket>>,
}

impl TenantQuotas {
    /// Quotas with `config` applied uniformly to every tenant.
    pub fn new(config: QuotaConfig) -> Self {
        TenantQuotas {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether quotas are configured at all.
    pub fn enabled(&self) -> bool {
        self.config.rate_per_sec > 0
    }

    /// Decides admission for one request from `tenant` at time `now`.
    /// Returns `true` if a token was available (and consumes it).
    pub fn admit(&self, tenant: &str, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let rate = u64::from(self.config.rate_per_sec);
        let capacity = u64::from(self.config.burst).saturating_mul(MILLI);
        let mut buckets = self.buckets.lock();
        let key = if buckets.contains_key(tenant) || buckets.len() < MAX_TENANTS {
            tenant
        } else {
            // Map full: unseen tenants compete for the overflow bucket.
            ""
        };
        let bucket = buckets
            .entry(key.to_string())
            .or_insert_with(|| TokenBucket {
                milli_tokens: capacity,
                last_refill: now,
            });
        // rate_per_sec tokens/s ≡ rate_per_sec milli-tokens per ms.
        let elapsed_ms = u64::try_from(
            now.saturating_duration_since(bucket.last_refill)
                .as_millis(),
        )
        .unwrap_or(u64::MAX);
        let refill = elapsed_ms.saturating_mul(rate);
        bucket.milli_tokens = bucket.milli_tokens.saturating_add(refill).min(capacity);
        bucket.last_refill = now;
        if bucket.milli_tokens >= MILLI {
            bucket.milli_tokens -= MILLI;
            true
        } else {
            false
        }
    }

    /// Number of tenants currently tracked (observability/testing).
    pub fn tracked_tenants(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn zero_rate_admits_everything() {
        let q = TenantQuotas::new(QuotaConfig {
            rate_per_sec: 0,
            burst: 1,
        });
        let now = Instant::now();
        for _ in 0..1000 {
            assert!(q.admit("anyone", now));
        }
        assert_eq!(q.tracked_tenants(), 0);
    }

    #[test]
    fn burst_then_starve_then_refill() {
        let q = TenantQuotas::new(QuotaConfig {
            rate_per_sec: 10,
            burst: 3,
        });
        let t0 = Instant::now();
        // Burst capacity: exactly 3 tokens.
        assert!(q.admit("a", t0));
        assert!(q.admit("a", t0));
        assert!(q.admit("a", t0));
        assert!(!q.admit("a", t0));
        // 10/s ⇒ one token per 100 ms.
        let t1 = t0 + Duration::from_millis(100);
        assert!(q.admit("a", t1));
        assert!(!q.admit("a", t1));
        // A long idle period refills to burst, not beyond.
        let t2 = t1 + Duration::from_secs(60);
        assert!(q.admit("a", t2));
        assert!(q.admit("a", t2));
        assert!(q.admit("a", t2));
        assert!(!q.admit("a", t2));
    }

    #[test]
    fn tenants_are_isolated() {
        let q = TenantQuotas::new(QuotaConfig {
            rate_per_sec: 1,
            burst: 1,
        });
        let now = Instant::now();
        assert!(q.admit("a", now));
        assert!(!q.admit("a", now));
        assert!(q.admit("b", now)); // b has its own bucket
    }

    #[test]
    fn tenant_map_is_bounded() {
        let q = TenantQuotas::new(QuotaConfig {
            rate_per_sec: 1,
            burst: 1,
        });
        let now = Instant::now();
        for i in 0..(MAX_TENANTS + 100) {
            let _ = q.admit(&format!("tenant-{i}"), now);
        }
        // MAX_TENANTS named buckets plus at most one overflow bucket.
        assert!(q.tracked_tenants() <= MAX_TENANTS + 1);
    }
}
