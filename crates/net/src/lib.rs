//! # fademl-net — networked serving for the FAdeML pipeline
//!
//! Three layers over the in-process serving engine
//! ([`fademl_serve`]), zero dependencies beyond the workspace:
//!
//! 1. **Wire protocol** ([`wire`]): length-prefixed, CRC-framed binary
//!    records on std TCP, reusing [`fademl_tensor::io`]'s
//!    bounds-checked codec. Requests carry image tensors, the threat
//!    model, a deadline and a tenant key; replies carry verdicts or
//!    *typed* serving errors — load-shedding semantics
//!    ([`ServeError::Overloaded`](fademl_serve::ServeError),
//!    deadlines, invalid input) survive the network hop intact.
//!    Hostile input (truncated frames, bit flips, lying length
//!    prefixes) becomes a typed [`FrameError`], never a panic or an
//!    oversized allocation.
//! 2. **Replica router** ([`router`]): shards requests across N
//!    in-process replica servers via consistent hashing keyed on
//!    threat model (threat models never share a batch, so pinning them
//!    to replicas maximizes coalescing), with per-tenant token-bucket
//!    quotas, one-hop spill on load shed, and per-replica health
//!    tracking that routes around a breaker-open or repeatedly-failing
//!    replica.
//! 3. **Hot weight swap**: a new `FADEMLW2` artifact is CRC- and
//!    shape-validated, then swapped replica-by-replica while in-flight
//!    batches drain on the weights they started with — the
//!    `swap_generation` metric proves no torn weights and no dropped
//!    traffic. Detectors swap the same way: a router started with
//!    triage ([`ReplicaRouter::start_with_triage`]) rolls a fresh
//!    `FADEMLD1` artifact across the fleet via
//!    [`swap_detectors`](ReplicaRouter::swap_detectors), so refitted
//!    detectors deploy with zero downtime and the fleet is never blind.
//!
//! On the client side, [`RetryingClient`] wraps [`NetClient`] with
//! reconnect-on-demand and bounded retry under exponential backoff with
//! deterministic jitter ([`RetryPolicy`]). Inference is idempotent, so
//! transient transport failures (refused dials, torn frames, dropped
//! responses, read timeouts) are retried safely; remote serving errors
//! are the engine's *answer* and pass through untouched, and when the
//! attempt budget runs out the caller gets a typed
//! [`NetError::RetriesExhausted`] carrying the final cause.
//!
//! The TCP front ([`server`]) drains gracefully end-to-end: stop
//! accepting → drain open connections under a deadline → drain the
//! replicas. The `faults` feature compiles a deterministic network
//! chaos harness ([`faults`]) — torn frames, dropped responses — on
//! top of the serving engine's own fault hooks.
//!
//! ```no_run
//! use fademl_net::{NetClient, NetConfig, NetServer, RouterConfig};
//! use fademl::ThreatModel;
//! # fn pipeline() -> fademl::InferencePipeline { unimplemented!() }
//! # fn image() -> fademl_tensor::Tensor { unimplemented!() }
//!
//! let server =
//!     NetServer::start(pipeline(), RouterConfig::default(), NetConfig::default()).unwrap();
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let verdict = client.classify(&image(), ThreatModel::II).unwrap();
//! println!("class {} at {:.2}", verdict.class, verdict.confidence);
//! println!("{}", server.shutdown().render());
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod client;
pub mod error;
#[cfg(feature = "faults")]
pub mod faults;
pub mod quota;
pub mod router;
pub mod server;
pub mod wire;

pub use client::{NetClient, RetryPolicy, RetryingClient};
pub use error::{NetError, Result};
#[cfg(feature = "faults")]
pub use faults::NetFaultPlan;
pub use quota::{QuotaConfig, TenantQuotas};
pub use router::{ReplicaRouter, RouterConfig, RouterReport};
pub use server::{NetConfig, NetServer};
pub use wire::{Frame, FrameError, WireFault, WireRequest, WireResponse};
