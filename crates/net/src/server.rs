//! The TCP front: accepts connections, speaks the wire protocol, and
//! feeds requests into the [`ReplicaRouter`].
//!
//! Threading model: one accept thread plus one handler thread per
//! connection (bounded by `max_connections`; excess connections get a
//! best-effort `Overloaded` error frame and are closed). A handler
//! always finishes answering its current request before honoring
//! shutdown, so draining never cuts off an in-flight reply.
//!
//! Shutdown sequence (graceful, end-to-end):
//! 1. stop accepting (the accept thread is unblocked by a self-connect
//!    and exits),
//! 2. drain open connections up to `drain_deadline_ms` — handlers
//!    observe the flag, answer their in-flight request, send `Goodbye`
//!    and exit,
//! 3. force-close any straggler sockets past the deadline,
//! 4. drain the replicas (every queued and in-flight request answered)
//!    and return the final report.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fademl::InferencePipeline;
use fademl_serve::error::ServeError;
use parking_lot::Mutex;

use crate::error::NetError;
use crate::router::{ReplicaRouter, RouterConfig, RouterReport};
use crate::wire::{read_frame, write_frame, Frame, WireFault, WireResponse};

#[cfg(feature = "faults")]
use crate::faults::{NetFaultPlan, ResponseFault};

/// Network fault hook; a unit type when the `faults` feature is off so
/// every hook call compiles to nothing.
#[cfg(feature = "faults")]
type FaultHandle = Option<NetFaultPlan>;

/// Zero-sized stand-in when the feature is off.
#[cfg(not(feature = "faults"))]
#[derive(Debug, Clone)]
#[allow(dead_code)]
struct FaultHandle;

#[cfg(feature = "faults")]
fn no_faults() -> FaultHandle {
    None
}
#[cfg(not(feature = "faults"))]
fn no_faults() -> FaultHandle {
    FaultHandle
}

/// TCP front configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub bind_addr: String,
    /// Maximum concurrent connections; excess connections receive a
    /// best-effort `Overloaded` error frame and are closed.
    pub max_connections: usize,
    /// Per-read timeout on client sockets (ms). A peer that dribbles
    /// bytes slower than this — slow-loris — is disconnected.
    pub read_timeout_ms: u64,
    /// How long shutdown waits for open connections to drain before
    /// force-closing them (ms).
    pub drain_deadline_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            bind_addr: "127.0.0.1:0".into(),
            max_connections: 64,
            read_timeout_ms: 10_000,
            drain_deadline_ms: 5_000,
        }
    }
}

impl NetConfig {
    /// Validates the settings.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] with the offending field named.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.max_connections == 0 {
            return Err(NetError::InvalidConfig {
                reason: "max_connections must be at least 1".into(),
            });
        }
        if self.read_timeout_ms == 0 {
            return Err(NetError::InvalidConfig {
                reason: "read_timeout_ms must be nonzero (slow-loris guard)".into(),
            });
        }
        Ok(())
    }
}

#[derive(Debug)]
struct NetShared {
    router: ReplicaRouter,
    config: NetConfig,
    shutting_down: AtomicBool,
    active: AtomicUsize,
    /// Socket clones of open connections, for force-close at the drain
    /// deadline.
    conns: Mutex<Vec<(u64, TcpStream)>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
    timeouts: AtomicU64,
    frame_errors: AtomicU64,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    /// Read only by the `faults`-gated reply path; carried (zero-sized)
    /// in production builds so construction sites stay identical.
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    faults: FaultHandle,
}

/// A running TCP serving front over a [`ReplicaRouter`].
#[derive(Debug)]
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds, starts the router's replicas and the accept thread.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for unusable settings,
    /// [`NetError::Remote`] if the router fails to start,
    /// [`NetError::Io`] if the bind fails.
    pub fn start(
        pipeline: InferencePipeline,
        router_config: RouterConfig,
        net_config: NetConfig,
    ) -> Result<Self, NetError> {
        let router = ReplicaRouter::start(pipeline, router_config)?;
        Self::serve(router, net_config, no_faults())
    }

    /// Starts the front over an already-running router (lets chaos
    /// tests arm replica fault plans first).
    ///
    /// # Errors
    ///
    /// Same as [`start`](NetServer::start), minus router startup.
    pub fn serve_router(router: ReplicaRouter, net_config: NetConfig) -> Result<Self, NetError> {
        Self::serve(router, net_config, no_faults())
    }

    /// Starts the front with an armed network fault plan (chaos
    /// testing): scripted response frames are torn mid-frame or
    /// dropped with the connection.
    ///
    /// # Errors
    ///
    /// Same as [`serve_router`](NetServer::serve_router).
    #[cfg(feature = "faults")]
    pub fn serve_router_with_faults(
        router: ReplicaRouter,
        net_config: NetConfig,
        plan: NetFaultPlan,
    ) -> Result<Self, NetError> {
        Self::serve(router, net_config, Some(plan))
    }

    fn serve(
        router: ReplicaRouter,
        config: NetConfig,
        faults: FaultHandle,
    ) -> Result<Self, NetError> {
        config.validate()?;
        let listener = TcpListener::bind(&config.bind_addr).map_err(NetError::Io)?;
        let local_addr = listener.local_addr().map_err(NetError::Io)?;
        let shared = Arc::new(NetShared {
            router,
            config,
            shutting_down: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            frame_errors: AtomicU64::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            faults,
        });
        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("fademl-net-accept".into())
            .spawn(move || run_accept(&accept_shared, &listener))
            .map_err(NetError::Io)?;
        Ok(NetServer {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The address the server is listening on (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The router behind the front (for swaps and live reports).
    pub fn router(&self) -> &ReplicaRouter {
        &self.shared.router
    }

    /// Live aggregated snapshot.
    pub fn report(&self) -> RouterReport {
        self.shared.router.report()
    }

    /// Connections disconnected by the read timeout (slow-loris guard).
    pub fn timeouts(&self) -> u64 {
        self.shared.timeouts.load(Ordering::Relaxed)
    }

    /// Connections that sent malformed frames.
    pub fn frame_errors(&self) -> u64 {
        self.shared.frame_errors.load(Ordering::Relaxed)
    }

    /// Connections accepted and handled.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.conns_accepted.load(Ordering::Relaxed)
    }

    /// Connections refused at the concurrency cap.
    pub fn connections_rejected(&self) -> u64 {
        self.shared.conns_rejected.load(Ordering::Relaxed)
    }

    /// Graceful end-to-end shutdown (see module docs) returning the
    /// final aggregated report.
    pub fn shutdown(mut self) -> RouterReport {
        self.stop();
        // After stop(), the accept thread and every handler have been
        // joined, so their Arc clones are gone: this clone plus the one
        // inside `self` are the only references left.
        let shared = Arc::clone(&self.shared);
        drop(self); // Drop is a no-op now (accept_handle taken by stop)
        match Arc::try_unwrap(shared) {
            Ok(inner) => inner.router.shutdown(),
            // Defensive: a reference survived (it should not); report
            // rather than block forever on a drain we cannot own.
            Err(arc) => arc.router.report(),
        }
    }

    fn stop(&mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        // Unblock the accept thread: it is parked in accept(); a
        // throwaway self-connection wakes it to observe the flag.
        // best-effort: the wake-up poke may race the listener closing.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            // best-effort: a panicked accept thread still counts as stopped.
            let _ = handle.join();
        }
        // Drain: handlers answer their in-flight request and exit.
        let deadline = Instant::now() + Duration::from_millis(self.shared.config.drain_deadline_ms);
        while self.shared.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        // Force-close stragglers so their handlers unblock and exit.
        // Drain under the lock, shut down outside it: a handler blocked
        // mid-register must not contend with a socket syscall.
        let streams: Vec<(u64, TcpStream)> = self.shared.conns.lock().drain(..).collect();
        for (_, stream) in streams {
            // best-effort: the peer may already be gone; shutdown is a nudge.
            let _ = stream.shutdown(Shutdown::Both);
        }
        let handlers: Vec<JoinHandle<()>> = self.shared.handlers.lock().drain(..).collect();
        for handle in handlers {
            // best-effort: a panicked handler must not abort the shutdown.
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop();
        }
    }
}

fn run_accept(shared: &Arc<NetShared>, listener: &TcpListener) {
    for incoming in listener.incoming() {
        if shared.shutting_down.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = incoming else { continue };
        if shared.active.load(Ordering::Acquire) >= shared.config.max_connections {
            shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
            refuse_connection(shared, stream);
            continue;
        }
        shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
        shared.active.fetch_add(1, Ordering::AcqRel);
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().push((conn_id, clone));
        }
        let handler_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("fademl-net-conn-{conn_id}"))
            .spawn(move || {
                run_handler(&handler_shared, stream, conn_id);
                handler_shared.active.fetch_sub(1, Ordering::AcqRel);
                handler_shared.conns.lock().retain(|(id, _)| *id != conn_id);
            });
        match spawned {
            Ok(handle) => shared.handlers.lock().push(handle),
            Err(_) => {
                // Spawn failed: undo the registration; the socket drops
                // closed and the client sees a disconnect.
                shared.active.fetch_sub(1, Ordering::AcqRel);
                shared.conns.lock().retain(|(id, _)| *id != conn_id);
            }
        }
    }
}

/// Best-effort `Overloaded` error frame to a connection refused at the
/// concurrency cap, so well-behaved clients get a typed reason instead
/// of a bare hangup.
fn refuse_connection(shared: &NetShared, mut stream: TcpStream) {
    let frame = Frame::Error(WireFault {
        id: 0,
        error: ServeError::Overloaded {
            capacity: shared.router.queue_capacity(),
        },
    });
    // best-effort: the refusal notice is a courtesy; the peer may have hung up.
    let _ = write_frame(&mut stream, &frame);
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_handler(shared: &NetShared, mut stream: TcpStream, _conn_id: u64) {
    // best-effort: socket tuning failures degrade latency, not correctness.
    let _ = stream.set_nodelay(true);
    // best-effort: without the timeout the read blocks until shutdown's nudge.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.config.read_timeout_ms)));
    loop {
        match read_frame(&mut stream) {
            Ok(Frame::Request(request)) => {
                let deadline =
                    (request.deadline_us > 0).then(|| Duration::from_micros(request.deadline_us));
                let result = shared.router.classify_for_tenant(
                    request.image,
                    request.threat,
                    deadline,
                    &request.tenant,
                );
                let reply = match result {
                    Ok(verdict) => Frame::Response(WireResponse {
                        id: request.id,
                        verdict,
                    }),
                    Err(error) => Frame::Error(WireFault {
                        id: request.id,
                        error,
                    }),
                };
                if !send_reply(shared, &mut stream, &reply) {
                    break;
                }
                // The in-flight request was answered before honoring
                // shutdown — now say goodbye and close.
                if shared.shutting_down.load(Ordering::Acquire) {
                    // best-effort: Goodbye is advisory; close either way.
                    let _ = write_frame(&mut stream, &Frame::Goodbye);
                    break;
                }
            }
            Ok(Frame::Goodbye) => break,
            Ok(_) => {
                // A client sending server-side frames is violating the
                // protocol; answer typed and close.
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                // best-effort: we are closing on them regardless.
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error(WireFault {
                        id: 0,
                        error: ServeError::InvalidInput {
                            reason: "unexpected frame kind from client".into(),
                        },
                    }),
                );
                break;
            }
            Err(NetError::Frame(frame_error)) => {
                shared.frame_errors.fetch_add(1, Ordering::Relaxed);
                // best-effort: the stream is already suspect; close after.
                let _ = write_frame(
                    &mut stream,
                    &Frame::Error(WireFault {
                        id: 0,
                        error: ServeError::InvalidInput {
                            reason: format!("malformed frame: {frame_error}"),
                        },
                    }),
                );
                break;
            }
            Err(NetError::Timeout { .. }) => {
                // Slow-loris guard: a peer that cannot deliver a frame
                // within the read timeout loses the connection.
                shared.timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Writes a reply frame, applying any scripted network fault. Returns
/// `false` when the connection should close.
fn send_reply(shared: &NetShared, stream: &mut TcpStream, reply: &Frame) -> bool {
    #[cfg(feature = "faults")]
    if let Some(plan) = &shared.faults {
        match plan.on_response() {
            ResponseFault::Tear(keep_bytes) => {
                // Send a torn frame: the prefix only, then cut the
                // connection — the client must see a typed error.
                if let Ok(bytes) = crate::wire::encode_frame(reply) {
                    use std::io::Write;
                    let keep = keep_bytes.min(bytes.len());
                    let (head, _) = bytes.split_at(keep);
                    // best-effort: fault injection tears the stream on purpose.
                    let _ = stream.write_all(head);
                    // best-effort: same — the torn prefix may or may not land.
                    let _ = stream.flush();
                }
                let _ = stream.shutdown(Shutdown::Both);
                return false;
            }
            ResponseFault::Drop => {
                // Kill the connection without a byte of the reply.
                let _ = stream.shutdown(Shutdown::Both);
                return false;
            }
            ResponseFault::None => {}
        }
    }
    #[cfg(not(feature = "faults"))]
    let _ = shared;
    write_frame(stream, reply).is_ok()
}
