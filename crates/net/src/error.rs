//! Error type for the network layer.

use std::fmt;
use std::io;

use fademl_serve::ServeError;

use crate::wire::FrameError;

/// Result alias for network operations.
pub type Result<T> = std::result::Result<T, NetError>;

/// Everything a network call can fail with. The load-shedding
/// semantics of the serving engine survive the wire: a remote
/// [`ServeError`] arrives as [`NetError::Remote`] carrying the exact
/// variant the engine raised.
#[derive(Debug)]
pub enum NetError {
    /// An unclassified transport error.
    Io(io::Error),
    /// The peer sent bytes that are not a valid frame.
    Frame(FrameError),
    /// The remote serving engine answered with a typed error.
    Remote(ServeError),
    /// The peer closed the connection (possibly mid-frame).
    Disconnected {
        /// What was being read or written when the stream ended.
        context: String,
    },
    /// The stream's read/write timeout fired — the peer is too slow
    /// (or dribbling bytes, slow-loris style).
    Timeout {
        /// What was being read or written when the timer fired.
        context: String,
    },
    /// The network configuration is unusable.
    InvalidConfig {
        /// Why the configuration was refused.
        reason: String,
    },
    /// A [`RetryingClient`](crate::client::RetryingClient) gave up: every
    /// one of its bounded attempts failed with a transient transport
    /// error. Carries the final attempt's error so callers can still
    /// classify the root cause.
    RetriesExhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// The error the last attempt failed with.
        last: Box<NetError>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "transport error: {err}"),
            NetError::Frame(err) => write!(f, "wire protocol error: {err}"),
            NetError::Remote(err) => write!(f, "remote serving error: {err}"),
            NetError::Disconnected { context } => {
                write!(f, "connection closed while {context}")
            }
            NetError::Timeout { context } => write!(f, "timed out while {context}"),
            NetError::InvalidConfig { reason } => {
                write!(f, "invalid network config: {reason}")
            }
            NetError::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts; last: {last}"
                )
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            NetError::Frame(err) => Some(err),
            NetError::Remote(err) => Some(err),
            NetError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<FrameError> for NetError {
    fn from(err: FrameError) -> Self {
        NetError::Frame(err)
    }
}

impl From<ServeError> for NetError {
    fn from(err: ServeError) -> Self {
        NetError::Remote(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        assert!(NetError::Remote(ServeError::ShuttingDown)
            .to_string()
            .contains("shutting down"));
        assert!(NetError::Frame(FrameError::BadMagic)
            .to_string()
            .contains("magic"));
        assert!(NetError::Timeout {
            context: "frame header".into()
        }
        .to_string()
        .contains("frame header"));
        assert!(NetError::Disconnected {
            context: "frame body".into()
        }
        .to_string()
        .contains("frame body"));
        let exhausted = NetError::RetriesExhausted {
            attempts: 4,
            last: Box::new(NetError::Timeout {
                context: "frame header".into(),
            }),
        };
        assert!(exhausted.to_string().contains("4 attempts"));
        assert!(exhausted.to_string().contains("frame header"));
        assert!(std::error::Error::source(&exhausted).is_some());
    }
}
