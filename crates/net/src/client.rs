//! Blocking wire-protocol client.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fademl::{ThreatModel, Verdict};
use fademl_serve::error::ServeError;
use fademl_tensor::Tensor;

use crate::error::NetError;
use crate::wire::{read_frame, write_frame, Frame, WireRequest};

/// A blocking client over one TCP connection. Requests carry a
/// client-chosen correlation id; replies are matched on it, so a
/// response for an older request is skipped, never misdelivered.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    tenant: String,
}

impl NetClient {
    /// Connects to a [`NetServer`](crate::server::NetServer) under the
    /// empty tenant.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        // best-effort: socket tuning failures degrade latency, not correctness.
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            next_id: 1,
            tenant: String::new(),
        })
    }

    /// Sets the tenant key sent with every subsequent request.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Bounds how long a single reply read may block; `None` blocks
    /// indefinitely.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket option cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(NetError::Io)
    }

    /// Classifies `image` under `threat` with no deadline.
    ///
    /// # Errors
    ///
    /// See [`classify_with_deadline`](NetClient::classify_with_deadline).
    pub fn classify(&mut self, image: &Tensor, threat: ThreatModel) -> Result<Verdict, NetError> {
        self.classify_with_deadline(image, threat, None)
    }

    /// Classifies `image` under `threat`, optionally asking the server
    /// to refuse a stale answer past `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carrying the exact [`ServeError`] the
    /// engine raised (load shed, deadline miss, invalid input, …),
    /// [`NetError::Disconnected`] / [`NetError::Timeout`] on transport
    /// failure, [`NetError::Frame`] for malformed reply bytes.
    pub fn classify_with_deadline(
        &mut self,
        image: &Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
    ) -> Result<Verdict, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let deadline_us = deadline
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let request = Frame::Request(WireRequest {
            id,
            threat,
            deadline_us,
            tenant: self.tenant.clone(),
            image: image.clone(),
        });
        write_frame(&mut self.stream, &request)?;
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Response(resp) if resp.id == id => return Ok(resp.verdict),
                Frame::Error(fault) if fault.id == id || fault.id == 0 => {
                    return Err(NetError::Remote(fault.error));
                }
                // A reply for a superseded request: skip it.
                Frame::Response(_) | Frame::Error(_) => continue,
                Frame::Goodbye => {
                    return Err(NetError::Remote(ServeError::ShuttingDown));
                }
                Frame::Request(_) => {
                    return Err(NetError::Frame(crate::wire::FrameError::BadPayload {
                        reason: "server sent a request frame".into(),
                    }));
                }
            }
        }
    }

    /// Orderly hang-up: sends `Goodbye` and closes the connection.
    pub fn goodbye(mut self) {
        // best-effort: Goodbye is advisory; the connection closes regardless.
        let _ = write_frame(&mut self.stream, &Frame::Goodbye);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
