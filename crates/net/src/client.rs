//! Blocking wire-protocol client, plus a retrying wrapper with bounded
//! exponential backoff for transient transport failures.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use fademl::{ThreatModel, Verdict};
use fademl_serve::error::ServeError;
use fademl_tensor::{Tensor, TensorRng};

use crate::error::NetError;
use crate::wire::{read_frame, write_frame, Frame, WireRequest};

/// A blocking client over one TCP connection. Requests carry a
/// client-chosen correlation id; replies are matched on it, so a
/// response for an older request is skipped, never misdelivered.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    next_id: u64,
    tenant: String,
}

impl NetClient {
    /// Connects to a [`NetServer`](crate::server::NetServer) under the
    /// empty tenant.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the connection fails.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr).map_err(NetError::Io)?;
        // best-effort: socket tuning failures degrade latency, not correctness.
        let _ = stream.set_nodelay(true);
        Ok(NetClient {
            stream,
            next_id: 1,
            tenant: String::new(),
        })
    }

    /// Sets the tenant key sent with every subsequent request.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self
    }

    /// Bounds how long a single reply read may block; `None` blocks
    /// indefinitely.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket option cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout).map_err(NetError::Io)
    }

    /// Classifies `image` under `threat` with no deadline.
    ///
    /// # Errors
    ///
    /// See [`classify_with_deadline`](NetClient::classify_with_deadline).
    pub fn classify(&mut self, image: &Tensor, threat: ThreatModel) -> Result<Verdict, NetError> {
        self.classify_with_deadline(image, threat, None)
    }

    /// Classifies `image` under `threat`, optionally asking the server
    /// to refuse a stale answer past `deadline`.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carrying the exact [`ServeError`] the
    /// engine raised (load shed, deadline miss, invalid input, …),
    /// [`NetError::Disconnected`] / [`NetError::Timeout`] on transport
    /// failure, [`NetError::Frame`] for malformed reply bytes.
    pub fn classify_with_deadline(
        &mut self,
        image: &Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
    ) -> Result<Verdict, NetError> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        let deadline_us = deadline
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let request = Frame::Request(WireRequest {
            id,
            threat,
            deadline_us,
            tenant: self.tenant.clone(),
            image: image.clone(),
        });
        write_frame(&mut self.stream, &request)?;
        loop {
            match read_frame(&mut self.stream)? {
                Frame::Response(resp) if resp.id == id => return Ok(resp.verdict),
                Frame::Error(fault) if fault.id == id || fault.id == 0 => {
                    return Err(NetError::Remote(fault.error));
                }
                // A reply for a superseded request: skip it.
                Frame::Response(_) | Frame::Error(_) => continue,
                Frame::Goodbye => {
                    return Err(NetError::Remote(ServeError::ShuttingDown));
                }
                Frame::Request(_) => {
                    return Err(NetError::Frame(crate::wire::FrameError::BadPayload {
                        reason: "server sent a request frame".into(),
                    }));
                }
            }
        }
    }

    /// Orderly hang-up: sends `Goodbye` and closes the connection.
    pub fn goodbye(mut self) {
        // best-effort: Goodbye is advisory; the connection closes regardless.
        let _ = write_frame(&mut self.stream, &Frame::Goodbye);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// Retry schedule for [`RetryingClient`]: bounded attempts, exponential
/// backoff capped at `max_delay`, and deterministic jitter (a seeded
/// per-client RNG scales each delay by a factor in `[0.5, 1.0)`, so two
/// clients with different seeds never thundering-herd in lockstep while
/// each client's schedule is exactly reproducible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (must be at least 1).
    pub attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Upper bound on a single backoff delay (pre-jitter).
    pub max_delay: Duration,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed: 0x0BAC_0FF5,
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] with the offending field named.
    pub fn validate(&self) -> Result<(), NetError> {
        if self.attempts == 0 {
            return Err(NetError::InvalidConfig {
                reason: "retry attempts must be at least 1".into(),
            });
        }
        if self.base_delay > self.max_delay {
            return Err(NetError::InvalidConfig {
                reason: "retry base_delay must not exceed max_delay".into(),
            });
        }
        Ok(())
    }

    /// The jittered backoff slept after failed attempt number `attempt`
    /// (1-based). Pure given the RNG state, so schedules are replayable.
    fn delay_after(&self, attempt: u32, rng: &mut TensorRng) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let scaled = self
            .base_delay
            .saturating_mul(1_u32 << doublings)
            .min(self.max_delay);
        let jitter = f64::from(rng.uniform_scalar(0.5, 1.0));
        Duration::from_secs_f64(scaled.as_secs_f64() * jitter)
    }
}

/// Whether an error is a transient transport failure worth retrying.
/// Remote serving errors are the engine's *answer* (load shed, deadline
/// miss, invalid input) and are never retried here — backpressure
/// semantics must survive the wrapper.
fn transient(err: &NetError) -> bool {
    matches!(
        err,
        NetError::Io(_)
            | NetError::Disconnected { .. }
            | NetError::Timeout { .. }
            | NetError::Frame(_)
    )
}

/// A self-healing client: reconnects on demand and retries transient
/// transport failures under a bounded [`RetryPolicy`]. Safe because
/// inference requests are idempotent — re-sending a classify after an
/// ambiguous failure at worst computes a verdict nobody reads; it never
/// double-applies anything. After the final attempt fails, the caller
/// gets a typed [`NetError::RetriesExhausted`] carrying the last error.
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    tenant: String,
    read_timeout: Option<Duration>,
    policy: RetryPolicy,
    rng: TensorRng,
    conn: Option<NetClient>,
}

impl RetryingClient {
    /// Builds a client for `addr` under `policy`. Connection is lazy:
    /// the first call dials (and a refused dial is itself retried).
    ///
    /// # Errors
    ///
    /// [`NetError::InvalidConfig`] for an unusable policy or an address
    /// that resolves to nothing; [`NetError::Io`] if resolution fails.
    pub fn connect<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> Result<Self, NetError> {
        policy.validate()?;
        let addr = addr
            .to_socket_addrs()
            .map_err(NetError::Io)?
            .next()
            .ok_or_else(|| NetError::InvalidConfig {
                reason: "address resolved to no socket address".into(),
            })?;
        Ok(RetryingClient {
            addr,
            tenant: String::new(),
            read_timeout: None,
            policy,
            rng: TensorRng::seed_from_u64(policy.jitter_seed),
            conn: None,
        })
    }

    /// Sets the tenant key sent with every subsequent request (applies
    /// from the next (re)connect).
    #[must_use]
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        self.tenant = tenant.to_string();
        self.conn = None;
        self
    }

    /// Bounds how long a single reply read may block; `None` blocks
    /// indefinitely. Applied to the live connection and every reconnect.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket option cannot be set.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.read_timeout = timeout;
        if let Some(conn) = self.conn.as_mut() {
            conn.set_read_timeout(timeout)?;
        }
        Ok(())
    }

    /// Classifies `image` under `threat` with no deadline, retrying
    /// transient transport failures.
    ///
    /// # Errors
    ///
    /// See [`classify_with_deadline`](RetryingClient::classify_with_deadline).
    pub fn classify(&mut self, image: &Tensor, threat: ThreatModel) -> Result<Verdict, NetError> {
        self.classify_with_deadline(image, threat, None)
    }

    /// Classifies `image` under `threat`, retrying transient transport
    /// failures (reconnecting first) up to the policy's attempt bound
    /// with jittered exponential backoff between attempts.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] immediately (never retried — the engine
    /// answered); [`NetError::RetriesExhausted`] after the final
    /// transient failure, carrying the last attempt's error.
    pub fn classify_with_deadline(
        &mut self,
        image: &Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
    ) -> Result<Verdict, NetError> {
        let mut attempt = 1_u32;
        loop {
            match self.try_once(image, threat, deadline) {
                Ok(verdict) => return Ok(verdict),
                Err(err) if !transient(&err) => return Err(err),
                Err(err) => {
                    // The connection is suspect after any transport
                    // fault; the next attempt dials fresh.
                    self.conn = None;
                    if attempt >= self.policy.attempts {
                        return Err(NetError::RetriesExhausted {
                            attempts: attempt,
                            last: Box::new(err),
                        });
                    }
                    std::thread::sleep(self.policy.delay_after(attempt, &mut self.rng));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// One attempt: dial if disconnected, then classify.
    fn try_once(
        &mut self,
        image: &Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
    ) -> Result<Verdict, NetError> {
        let conn = match self.conn.as_mut() {
            Some(conn) => conn,
            None => {
                let mut fresh = NetClient::connect(self.addr)?.with_tenant(&self.tenant);
                fresh.set_read_timeout(self.read_timeout)?;
                self.conn.insert(fresh)
            }
        };
        conn.classify_with_deadline(image, threat, deadline)
    }

    /// Orderly hang-up of the live connection, if any.
    pub fn goodbye(mut self) {
        if let Some(conn) = self.conn.take() {
            conn.goodbye();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters_deterministically() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(35),
            jitter_seed: 7,
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut rng = TensorRng::seed_from_u64(seed);
            (1..=4).map(|a| policy.delay_after(a, &mut rng)).collect()
        };
        let delays = schedule(7);
        // Jitter scales within [0.5, 1.0) of the capped exponential.
        for (delay, cap_ms) in delays.iter().zip([10_u64, 20, 35, 35]) {
            let cap = Duration::from_millis(cap_ms);
            assert!(*delay < cap, "{delay:?} under pre-jitter cap {cap:?}");
            assert!(*delay >= cap / 2, "{delay:?} at least half of {cap:?}");
        }
        // Same seed, same schedule — fully replayable.
        assert_eq!(delays, schedule(7));
        assert_ne!(delays, schedule(8));
    }

    #[test]
    fn policy_validation_names_the_offence() {
        let zero = RetryPolicy {
            attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(zero
            .validate()
            .unwrap_err()
            .to_string()
            .contains("attempts"));
        let inverted = RetryPolicy {
            base_delay: Duration::from_secs(2),
            max_delay: Duration::from_secs(1),
            ..RetryPolicy::default()
        };
        assert!(inverted
            .validate()
            .unwrap_err()
            .to_string()
            .contains("base_delay"));
    }

    #[test]
    fn remote_errors_are_not_transient() {
        assert!(!transient(&NetError::Remote(ServeError::ShuttingDown)));
        assert!(!transient(&NetError::InvalidConfig { reason: "x".into() }));
        assert!(transient(&NetError::Disconnected {
            context: "reply".into()
        }));
        assert!(transient(&NetError::Timeout {
            context: "reply".into()
        }));
        assert!(transient(&NetError::Io(std::io::Error::other("refused"))));
        assert!(transient(&NetError::Frame(
            crate::wire::FrameError::BadMagic
        )));
    }
}
