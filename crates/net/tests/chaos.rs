//! Network chaos suite (`--features faults`): scripted transport and
//! replica failures. The invariant under test is always the same —
//! **every client call resolves to a typed error or a valid response**;
//! no call hangs, no worker crashes the server, and the front keeps
//! serving new connections after each injected fault.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_net::wire::{encode_frame, read_frame, Frame, WireRequest};
use fademl_net::{
    NetClient, NetConfig, NetError, NetFaultPlan, NetServer, ReplicaRouter, RetryPolicy,
    RetryingClient, RouterConfig,
};
use fademl_nn::vgg::VggConfig;
use fademl_serve::{FaultPlan, ServeError, ServerConfig};
use fademl_tensor::{Tensor, TensorRng};

fn pipeline(seed: u64) -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(seed);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, FilterSpec::Lap { np: 8 }).unwrap()
}

fn router_config(replicas: usize) -> RouterConfig {
    RouterConfig {
        replicas,
        replica: ServerConfig {
            queue_capacity: 64,
            max_batch_size: 4,
            linger_us: 500,
            workers: 2,
            ..ServerConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn image(seed: u64) -> Tensor {
    TensorRng::seed_from_u64(seed).uniform(&[3, 16, 16], 0.0, 1.0)
}

/// A torn response frame (cut mid-bytes) surfaces as a typed transport
/// error on the wounded call; a fresh connection is served normally.
#[test]
fn torn_response_is_a_typed_error_and_server_survives() {
    let router = ReplicaRouter::start(pipeline(21), router_config(1)).unwrap();
    let plan = NetFaultPlan::new().tear_response_on(2, 6);
    let server = NetServer::serve_router_with_faults(router, NetConfig::default(), plan).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client.classify(&image(1), ThreatModel::I).unwrap();
    match client.classify(&image(2), ThreatModel::I) {
        Err(NetError::Disconnected { .. } | NetError::Frame(_)) => {}
        other => panic!("torn frame must be a typed transport error, got {other:?}"),
    }

    // The fault was per-frame, not per-server: reconnect and classify.
    let mut fresh = NetClient::connect(server.local_addr()).unwrap();
    fresh.classify(&image(3), ThreatModel::II).unwrap();
    fresh.goodbye();
    server.shutdown();
}

/// A dropped response (connection cut before any reply byte) is a typed
/// disconnect, never a hang.
#[test]
fn dropped_response_is_a_typed_error() {
    let router = ReplicaRouter::start(pipeline(22), router_config(1)).unwrap();
    let plan = NetFaultPlan::new().drop_response_on(1);
    let server = NetServer::serve_router_with_faults(router, NetConfig::default(), plan).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match client.classify(&image(4), ThreatModel::III) {
        Err(NetError::Disconnected { .. }) => {}
        other => panic!("dropped response must be Disconnected, got {other:?}"),
    }
    server.shutdown();
}

/// A client that disconnects mid-frame (torn request) poisons nothing:
/// its handler exits quietly and other connections keep working.
#[test]
fn mid_frame_client_disconnect_leaves_server_healthy() {
    let server = NetServer::start(pipeline(23), router_config(1), NetConfig::default()).unwrap();

    let frame = Frame::Request(WireRequest {
        id: 1,
        threat: ThreatModel::I,
        deadline_us: 0,
        tenant: String::new(),
        image: image(5),
    });
    let bytes = encode_frame(&frame).unwrap();
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
    drop(raw); // cut mid-frame

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.classify(&image(6), ThreatModel::II).unwrap();
    client.goodbye();
    let report = server.shutdown();
    assert_eq!(report.serving.requests_completed, 1);
    assert_eq!(report.serving.requests_failed, 0);
}

/// Garbage bytes get a best-effort typed error reply before the
/// connection is closed, and count as a frame error on the server.
#[test]
fn garbage_frames_get_a_typed_error_reply() {
    let server = NetServer::start(pipeline(24), router_config(1), NetConfig::default()).unwrap();

    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    raw.write_all(b"NOTFADEMLNOTFADEML").unwrap();
    match read_frame(&mut raw) {
        Ok(Frame::Error(fault)) => {
            assert_eq!(fault.id, 0, "unattributable errors carry id 0");
            assert!(matches!(fault.error, ServeError::InvalidInput { .. }));
        }
        other => panic!("expected typed error frame, got {other:?}"),
    }
    assert!(server.frame_errors() >= 1);

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.classify(&image(7), ThreatModel::I).unwrap();
    client.goodbye();
    server.shutdown();
}

/// A slow-loris peer dribbling header bytes is cut by the read timeout
/// instead of pinning a handler thread forever.
#[test]
fn slow_loris_is_cut_by_the_read_timeout() {
    let config = NetConfig {
        read_timeout_ms: 100,
        ..NetConfig::default()
    };
    let server = NetServer::start(pipeline(25), router_config(1), config).unwrap();

    let mut loris = TcpStream::connect(server.local_addr()).unwrap();
    loris.write_all(b"FAD").unwrap(); // 3 of 13 header bytes, then stall
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        server.timeouts() >= 1,
        "the stalled connection must trip the read timeout"
    );

    // The handler thread it occupied is free again for real clients.
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client.classify(&image(8), ThreatModel::III).unwrap();
    client.goodbye();
    drop(loris);
    server.shutdown();
}

/// A replica worker dying mid-batch: the wounded batch resolves to
/// typed errors, the surviving worker keeps the replica serving, and
/// every subsequent call still resolves.
#[test]
fn replica_death_mid_batch_resolves_every_call() {
    // Arm every replica: consistent hashing decides which one a threat
    // model lands on, so either may take the wounded batch.
    let plans = vec![
        FaultPlan::new().kill_worker_on_batch(1),
        FaultPlan::new().kill_worker_on_batch(1),
    ];
    let router = ReplicaRouter::start_with_faults(pipeline(26), router_config(2), plans).unwrap();
    let server = NetServer::serve_router(router, NetConfig::default()).unwrap();

    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut ok = 0u64;
    let mut typed_errors = 0u64;
    for i in 0..24u64 {
        match client.classify(&image(100 + i), ThreatModel::ALL[(i % 3) as usize]) {
            Ok(_) => ok += 1,
            Err(NetError::Remote(_)) => typed_errors += 1,
            Err(other) => panic!("call {i} must resolve typed, got {other:?}"),
        }
    }
    assert_eq!(ok + typed_errors, 24, "every call resolved");
    assert!(ok > 0, "surviving workers must keep serving");

    client.goodbye();
    server.shutdown();
}

fn fast_retry(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        attempts,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        ..RetryPolicy::default()
    }
}

/// A dropped response then a torn one: the retrying client reconnects
/// and resends after each transient fault, and the third attempt lands.
/// Idempotence makes the resends safe — at worst the server computed a
/// verdict nobody read.
#[test]
fn retrying_client_rides_out_dropped_and_torn_responses() {
    let router = ReplicaRouter::start(pipeline(31), router_config(1)).unwrap();
    let plan = NetFaultPlan::new()
        .drop_response_on(1)
        .tear_response_on(2, 6);
    let server = NetServer::serve_router_with_faults(router, NetConfig::default(), plan).unwrap();

    let mut client = RetryingClient::connect(server.local_addr(), fast_retry(4)).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let verdict = client
        .classify(&image(1), ThreatModel::II)
        .expect("third attempt gets a whole frame");
    assert!(verdict.confidence > 0.0);
    // The healed connection keeps working without further retries.
    client.classify(&image(2), ThreatModel::II).unwrap();
    client.goodbye();
    let report = server.shutdown();
    assert_eq!(report.serving.requests_failed, 0);
}

/// Against a dead address every dial fails; the client gives up after
/// exactly its attempt budget with a typed `RetriesExhausted` carrying
/// the root cause — never a hang, never an untyped panic.
#[test]
fn exhausted_retries_resolve_typed_with_the_last_cause() {
    // Bind then drop a listener so the port is (momentarily) dead.
    let dead = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let mut client = RetryingClient::connect(dead, fast_retry(3)).unwrap();
    match client.classify(&image(3), ThreatModel::I) {
        Err(NetError::RetriesExhausted { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(
                matches!(*last, NetError::Io(_)),
                "refused dial is the root cause, got {last:?}"
            );
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

/// Remote serving errors are the engine's answer, not transport noise:
/// the retrying client must pass them through on the first attempt so
/// backpressure and validation semantics survive the wrapper.
#[test]
fn remote_errors_pass_through_without_retry() {
    let router = ReplicaRouter::start(pipeline(32), router_config(1)).unwrap();
    let server = NetServer::serve_router(router, NetConfig::default()).unwrap();

    let mut client = RetryingClient::connect(server.local_addr(), fast_retry(4)).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Rank-2 input: admission-time validation refuses it remotely.
    let bad = TensorRng::seed_from_u64(9).uniform(&[16, 16], 0.0, 1.0);
    match client.classify(&bad, ThreatModel::I) {
        Err(NetError::Remote(ServeError::InvalidInput { .. })) => {}
        other => panic!("expected the remote validation error, got {other:?}"),
    }
    // The connection survives the typed refusal.
    client.classify(&image(4), ThreatModel::I).unwrap();
    client.goodbye();
    server.shutdown();
}
