//! Property tests for the wire codec: arbitrary frames round-trip
//! bit-exactly, and hostile bytes — truncations, bit flips, lying
//! length prefixes, plain garbage — always come back as a typed
//! [`FrameError`], never a panic and never an oversized allocation.

use std::io::Cursor;

use fademl::{Detection, ThreatModel, Verdict};
use fademl_net::wire::{
    decode_frame, encode_frame, read_frame, Frame, FrameError, WireFault, WireRequest,
    WireResponse, HEADER_LEN, MAX_PAYLOAD, WIRE_MAGIC, WIRE_VERSION,
};
use fademl_net::NetError;
use fademl_nn::metrics::Prediction;
use fademl_serve::{DeadlineStage, ServeError};
use fademl_tensor::TensorRng;
use proptest::prelude::*;

/// A short lowercase string derived from `seed` (the shim has no string
/// strategy, so strings are built from drawn integers).
fn string_for(seed: u64) -> String {
    let len = (seed % 24) as usize;
    (0..len)
        .map(|i| {
            let x = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(i as u32);
            char::from(b'a' + (x % 26) as u8)
        })
        .collect()
}

/// Small tensor dims (rank 1–3, each dim 1–4) derived from `seed`.
fn dims_for(seed: u64) -> Vec<usize> {
    let rank = 1 + (seed % 3) as usize;
    (0..rank)
        .map(|i| 1 + ((seed >> (8 + 4 * i)) % 4) as usize)
        .collect()
}

fn verdict_for(rng: &mut TensorRng, seed: u64) -> Verdict {
    let probs = rng.uniform(&[6], 0.0, 1.0);
    let values = probs.as_slice().to_vec();
    let topk = (seed % 6) as usize;
    Verdict {
        class: (seed % 1000) as usize,
        confidence: values[0],
        top5: Prediction {
            top_classes: (0..topk).map(|i| (seed as usize + i) % 100).collect(),
            top_probs: values[..topk].to_vec(),
        },
        probabilities: rng.uniform(&dims_for(seed ^ 0xABCD), -1.0, 1.0),
        detection: detection_for(rng, seed),
    }
}

/// Roughly half the generated verdicts carry a detection extension, so
/// the round-trip properties cover both the legacy-shaped payload and
/// the extended one.
fn detection_for(rng: &mut TensorRng, seed: u64) -> Option<Detection> {
    if seed & 1 == 0 {
        return None;
    }
    Some(Detection {
        score: rng.uniform_scalar(0.0, 1.0),
        flagged: seed & 2 != 0,
        hardened: seed & 6 == 6,
    })
}

fn error_for(seed: u64) -> ServeError {
    let reason = string_for(seed ^ 0x5555);
    match seed % 9 {
        0 => ServeError::Overloaded {
            capacity: (seed % 10_000) as usize,
        },
        1 => ServeError::ShuttingDown,
        2 => ServeError::Pipeline { message: reason },
        3 => ServeError::BatchFailed { reason },
        4 => ServeError::DeadlineExceeded {
            stage: if seed & 16 == 0 {
                DeadlineStage::Queue
            } else {
                DeadlineStage::Batch
            },
        },
        5 => ServeError::InvalidInput { reason },
        6 => ServeError::InvalidConfig { reason },
        7 => ServeError::Internal { reason },
        _ => ServeError::SwapFailed { reason },
    }
}

/// Builds one of the four frame kinds deterministically from drawn
/// integers, covering every payload codec.
fn frame_for(kind: u64, id: u64, seed: u64) -> Frame {
    let mut rng = TensorRng::seed_from_u64(seed);
    match kind % 4 {
        0 => Frame::Request(WireRequest {
            id,
            threat: ThreatModel::ALL[(seed % 3) as usize],
            deadline_us: seed.wrapping_mul(31),
            tenant: string_for(seed),
            image: rng.uniform(&dims_for(seed), -1.0, 1.0),
        }),
        1 => Frame::Response(WireResponse {
            id,
            verdict: verdict_for(&mut rng, seed),
        }),
        2 => Frame::Error(WireFault {
            id,
            error: error_for(seed),
        }),
        _ => Frame::Goodbye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_frames_round_trip_bit_exactly(
        kind in 0u64..4,
        id in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
    ) {
        let frame = frame_for(kind, id, seed);
        let bytes = encode_frame(&frame).expect("in-cap frame encodes");
        let (decoded, consumed) = decode_frame(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn every_truncation_is_a_typed_error(
        kind in 0u64..4,
        seed in 0u64..u64::MAX,
        cut in 0u64..u64::MAX,
    ) {
        let bytes = encode_frame(&frame_for(kind, 7, seed)).expect("encodes");
        let keep = (cut % bytes.len() as u64) as usize;
        let truncated = &bytes[..keep];
        // A strict prefix is never a complete frame; reaching an Err
        // without panicking is the property.
        prop_assert!(decode_frame(truncated).is_err());
        // The streaming reader sees the same prefix as a mid-frame EOF.
        match read_frame(&mut Cursor::new(truncated.to_vec())) {
            Err(NetError::Disconnected { .. } | NetError::Frame(_)) => {}
            other => prop_assert!(false, "expected typed error, got {other:?}"),
        }
    }

    #[test]
    fn single_bit_flips_never_decode_silently(
        kind in 0u64..4,
        seed in 0u64..u64::MAX,
        flip in 0u64..u64::MAX,
    ) {
        let mut bytes = encode_frame(&frame_for(kind, 9, seed)).expect("encodes");
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Magic/version flips fail structurally; everything else is
        // covered by the CRC. Either way: typed error, no panic.
        prop_assert!(decode_frame(&bytes).is_err());
    }

    #[test]
    fn lying_length_prefixes_are_refused_before_allocation(
        declared in (MAX_PAYLOAD as u64 + 1)..u64::from(u32::MAX),
        kind in 0u64..8,
    ) {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(WIRE_MAGIC);
        header.push(WIRE_VERSION);
        header.push(kind as u8);
        header.extend_from_slice(&(declared as u32).to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&header),
            Err(FrameError::TooLarge { .. })
        ));
        // The stream reader refuses on the header alone: the (absent)
        // multi-megabyte body is never read, never allocated.
        match read_frame(&mut Cursor::new(header)) {
            Err(NetError::Frame(FrameError::TooLarge { declared: d, .. })) => {
                prop_assert_eq!(d, declared);
            }
            other => prop_assert!(false, "expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn garbage_bytes_never_panic(raw in proptest::collection::vec(0u64..256, 0..256)) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        // Any outcome is fine as long as it is a value, not a panic.
        let _ = decode_frame(&bytes);
        let _ = read_frame(&mut Cursor::new(bytes));
    }
}
