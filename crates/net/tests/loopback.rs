//! End-to-end loopback tests: real TCP, real replicas, real weights.
//!
//! The headline assertions mirror the subsystem's contract: verdicts
//! over the wire are bit-identical to in-process inference, typed
//! serving errors survive the hop, a hot weight swap under sustained
//! client load completes with zero dropped or errored requests and a
//! monotonically advancing `swap_generation`, and graceful shutdown
//! drains every in-flight request.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fademl::{serialize, InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_net::{NetClient, NetConfig, NetError, NetServer, RouterConfig};
use fademl_nn::vgg::VggConfig;
use fademl_serve::{ServeError, ServerConfig};
use fademl_tensor::TensorRng;

fn pipeline(seed: u64) -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(seed);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, FilterSpec::Lap { np: 8 }).unwrap()
}

fn router_config(replicas: usize) -> RouterConfig {
    RouterConfig {
        replicas,
        replica: ServerConfig {
            queue_capacity: 128,
            max_batch_size: 8,
            linger_us: 500,
            workers: 2,
            ..ServerConfig::default()
        },
        ..RouterConfig::default()
    }
}

#[test]
fn wire_verdicts_match_in_process_inference() {
    let server = NetServer::start(pipeline(11), router_config(2), NetConfig::default()).unwrap();
    let reference = pipeline(11);
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let mut rng = TensorRng::seed_from_u64(500);
    for (i, threat) in ThreatModel::ALL.iter().cycle().take(9).enumerate() {
        let image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let over_wire = client.classify(&image, *threat).unwrap();
        let direct = reference.classify(&image, *threat).unwrap();
        assert_eq!(over_wire, direct, "request {i} diverged from in-process");
    }
    client.goodbye();
    let report = server.shutdown();
    assert_eq!(report.serving.requests_completed, 9);
    assert_eq!(report.serving.requests_failed, 0);
}

#[test]
fn typed_errors_survive_the_wire() {
    let server = NetServer::start(pipeline(12), router_config(1), NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    let mut rng = TensorRng::seed_from_u64(501);

    // Wrong rank: refused at admission, delivered as the same typed
    // variant the in-process engine raises.
    let wrong_rank = rng.uniform(&[3, 16], 0.0, 1.0);
    match client.classify(&wrong_rank, ThreatModel::I) {
        Err(NetError::Remote(ServeError::InvalidInput { .. })) => {}
        other => panic!("expected Remote(InvalidInput), got {other:?}"),
    }

    // Out-of-range pixels: also InvalidInput, and the connection keeps
    // working afterwards — a rejected request is not a dead session.
    let out_of_range = rng.uniform(&[3, 16, 16], 5.0, 9.0);
    match client.classify(&out_of_range, ThreatModel::II) {
        Err(NetError::Remote(ServeError::InvalidInput { .. })) => {}
        other => panic!("expected Remote(InvalidInput), got {other:?}"),
    }
    let fine = rng.uniform(&[3, 16, 16], 0.0, 1.0);
    client.classify(&fine, ThreatModel::III).unwrap();
    client.goodbye();
    server.shutdown();
}

/// The acceptance-criteria test: three successive hot swaps while four
/// client threads hammer the loopback path. Every request must resolve
/// Ok, the generation must advance monotonically, and the final report
/// must show zero failures and zero shed requests.
#[test]
fn hot_swap_under_sustained_load_drops_nothing() {
    let server = NetServer::start(pipeline(13), router_config(2), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for w in 0..4u64 {
        let stop = Arc::clone(&stop);
        let ok = Arc::clone(&ok);
        workers.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr)
                .unwrap()
                .with_tenant(&format!("load-{w}"));
            let mut rng = TensorRng::seed_from_u64(600 + w);
            let mut i = 0usize;
            let mut errors = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
                if let Err(err) = client.classify(&image, ThreatModel::ALL[i % 3]) {
                    errors.push(format!("{err}"));
                }
                ok.fetch_add(1, Ordering::Relaxed);
                i += 1;
            }
            client.goodbye();
            errors
        }));
    }

    // Three rolling swaps, spaced so load is continuous across each.
    let mut last_generation = server.router().swap_generation();
    assert_eq!(last_generation, 0);
    for swap in 0..3u64 {
        std::thread::sleep(Duration::from_millis(120));
        let mut rng = TensorRng::seed_from_u64(900 + swap);
        let next = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let generation = server
            .router()
            .swap_weights(&serialize::encode_weights(&next))
            .unwrap();
        assert!(
            generation > last_generation,
            "swap_generation must advance monotonically: {generation} after {last_generation}"
        );
        last_generation = generation;
    }
    std::thread::sleep(Duration::from_millis(120));
    stop.store(true, Ordering::Release);

    let mut client_errors = Vec::new();
    for handle in workers {
        client_errors.extend(handle.join().unwrap());
    }
    assert!(
        client_errors.is_empty(),
        "hot swap dropped or errored requests: {client_errors:?}"
    );
    let requests = ok.load(Ordering::Relaxed);
    assert!(requests > 0, "load generator never got a request through");

    let report = server.shutdown();
    assert_eq!(report.serving.swap_generation, 3, "all replicas at gen 3");
    assert_eq!(report.serving.requests_failed, 0);
    assert_eq!(report.serving.requests_rejected, 0);
    assert_eq!(report.serving.requests_completed, requests);
    for replica in &report.serving.replicas {
        assert_eq!(
            replica.swap_generation, 3,
            "replica {} lags",
            replica.replica
        );
    }
}

/// Graceful shutdown: every request admitted before the drain gets its
/// response; late requests get a typed `ShuttingDown`, never silence.
#[test]
fn graceful_shutdown_drains_every_in_flight_request() {
    let server = NetServer::start(pipeline(14), router_config(2), NetConfig::default()).unwrap();
    let addr = server.local_addr();
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..3u64 {
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).unwrap();
            let mut rng = TensorRng::seed_from_u64(700 + w);
            let mut delivered = 0u64;
            loop {
                let image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
                match client.classify(&image, ThreatModel::ALL[(w % 3) as usize]) {
                    Ok(_) => delivered += 1,
                    Err(NetError::Remote(ServeError::ShuttingDown)) => break,
                    Err(NetError::Disconnected { .. }) if stop.load(Ordering::Acquire) => break,
                    Err(other) => panic!("unexpected client error: {other}"),
                }
            }
            delivered
        }));
    }

    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Release);
    let report = server.shutdown();

    let delivered: u64 = workers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(delivered > 0, "no request completed before shutdown");
    assert_eq!(
        delivered, report.serving.requests_completed,
        "an admitted request was dropped during the drain"
    );
    assert_eq!(report.serving.requests_failed, 0);
}
