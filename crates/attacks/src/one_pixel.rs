//! The one-pixel attack (Su et al.), cited in the paper's §II-B — a
//! *black-box* attack that perturbs a handful of pixels found by
//! differential evolution, using only the victim's class probabilities
//! (no gradients).
//!
//! Each DE candidate encodes `k` pixels as `(y, x, r, g, b)` tuples;
//! fitness is the target-class probability (targeted) or one minus the
//! source-class probability (untargeted).

use fademl_tensor::{Tensor, TensorRng};

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The one-pixel black-box attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnePixel {
    pixels: usize,
    population: usize,
    generations: usize,
    seed: u64,
}

impl OnePixel {
    /// Creates the attack perturbing `pixels` pixels, searched with a
    /// DE population of `population` candidates over `generations`
    /// generations, seeded for reproducibility.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for zero pixels,
    /// a population below 4 (DE mutation needs 3 distinct partners) or
    /// zero generations.
    pub fn new(pixels: usize, population: usize, generations: usize, seed: u64) -> Result<Self> {
        if pixels == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "one-pixel attack needs at least one pixel".into(),
            });
        }
        if population < 4 {
            return Err(AttackError::InvalidParameter {
                reason: format!("DE population must be at least 4, got {population}"),
            });
        }
        if generations == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "DE needs at least one generation".into(),
            });
        }
        Ok(OnePixel {
            pixels,
            population,
            generations,
            seed,
        })
    }

    /// The configuration from the original paper scaled for small
    /// images: 1 pixel, population 40, 30 generations.
    pub fn standard() -> Self {
        OnePixel {
            pixels: 1,
            population: 40,
            generations: 30,
            seed: 0x0017_13e1,
        }
    }

    /// Number of perturbed pixels.
    pub fn pixels(&self) -> usize {
        self.pixels
    }

    /// Renders a candidate (flat `(y, x, r, g, b)` quintuples) onto the
    /// image.
    fn apply_candidate(x: &Tensor, genes: &[f32], h: usize, w: usize) -> Tensor {
        let mut out = x.clone();
        let plane = h * w;
        for chunk in genes.chunks(5) {
            let py = (chunk[0].clamp(0.0, 0.999) * h as f32) as usize;
            let px = (chunk[1].clamp(0.0, 0.999) * w as f32) as usize;
            let idx = py * w + px;
            for c in 0..3 {
                out.as_mut_slice()[c * plane + idx] = chunk[2 + c].clamp(0.0, 1.0);
            }
        }
        out
    }

    /// Fitness to MINIMIZE: negative goal-probability.
    fn fitness(surface: &mut AttackSurface, candidate: &Tensor, goal: AttackGoal) -> Result<f32> {
        let probs = surface.probabilities(candidate)?;
        Ok(match goal {
            AttackGoal::Targeted { class } => {
                if class >= probs.numel() {
                    return Err(AttackError::InvalidInput {
                        reason: format!("class {class} out of range for {} classes", probs.numel()),
                    });
                }
                -probs.as_slice()[class]
            }
            AttackGoal::Untargeted { source } => {
                if source >= probs.numel() {
                    return Err(AttackError::InvalidInput {
                        reason: format!(
                            "class {source} out of range for {} classes",
                            probs.numel()
                        ),
                    });
                }
                probs.as_slice()[source]
            }
        })
    }
}

impl Attack for OnePixel {
    fn name(&self) -> String {
        format!(
            "OnePixel(k={}, pop={}, gen={})",
            self.pixels, self.population, self.generations
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        if x.rank() != 3 {
            return Err(AttackError::InvalidInput {
                reason: format!("expected a [C, H, W] image, got {:?}", x.dims()),
            });
        }
        surface.reset_queries();
        let (h, w) = (x.dims()[1], x.dims()[2]);
        let genes_per = 5 * self.pixels;
        let mut rng = TensorRng::seed_from_u64(self.seed);

        // Initialize the population uniformly over position/colour space.
        let mut population: Vec<Vec<f32>> = (0..self.population)
            .map(|_| {
                (0..genes_per)
                    .map(|_| rng.uniform_scalar(0.0, 1.0))
                    .collect()
            })
            .collect();
        let mut fitness = Vec::with_capacity(self.population);
        for genes in &population {
            let candidate = Self::apply_candidate(x, genes, h, w);
            fitness.push(Self::fitness(surface, &candidate, goal)?);
        }

        let mut used = 0usize;
        'outer: for _ in 0..self.generations {
            used += 1;
            for i in 0..self.population {
                // DE/rand/1 mutation with F = 0.5 and binomial crossover.
                let (a, b, c) = {
                    let mut pick = || loop {
                        let j = rng.index(self.population);
                        if j != i {
                            break j;
                        }
                    };
                    (pick(), pick(), pick())
                };
                let mut trial = population[i].clone();
                let force_gene = rng.index(genes_per);
                for g in 0..genes_per {
                    if g == force_gene || rng.chance(0.5) {
                        let v = population[a][g] + 0.5 * (population[b][g] - population[c][g]);
                        trial[g] = v.clamp(0.0, 1.0);
                    }
                }
                let candidate = Self::apply_candidate(x, &trial, h, w);
                let f = Self::fitness(surface, &candidate, goal)?;
                if f < fitness[i] {
                    population[i] = trial;
                    fitness[i] = f;
                }
            }
            // Early exit when the best candidate already meets the goal.
            let best = fitness
                .iter()
                .enumerate()
                .min_by(|p, q| p.1.partial_cmp(q.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let candidate = Self::apply_candidate(x, &population[best], h, w);
            let (predicted, _) = surface.predict(&candidate)?;
            if goal.is_met(predicted) {
                break 'outer;
            }
        }

        let best = fitness
            .iter()
            .enumerate()
            .min_by(|p, q| p.1.partial_cmp(q.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let adversarial = Self::apply_candidate(x, &population[best], h, w);
        finish(surface, x, adversarial, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(OnePixel::new(0, 10, 10, 0).is_err());
        assert!(OnePixel::new(1, 3, 10, 0).is_err());
        assert!(OnePixel::new(1, 10, 0, 0).is_err());
        assert!(OnePixel::new(1, 10, 10, 0).is_ok());
        assert_eq!(OnePixel::standard().pixels(), 1);
    }

    #[test]
    fn perturbs_at_most_k_pixels() {
        let (mut surface, x) = setup(1);
        let attack = OnePixel::new(3, 8, 4, 7).unwrap();
        let adv = attack
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        // Count spatial positions whose colour changed.
        let plane = 16 * 16;
        let mut changed = 0usize;
        for i in 0..plane {
            let touched = (0..3).any(|c| {
                (adv.adversarial.as_slice()[c * plane + i] - x.as_slice()[c * plane + i]).abs()
                    > 1e-6
            });
            if touched {
                changed += 1;
            }
        }
        assert!(changed <= 3, "{changed} pixels changed");
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn needs_no_gradient_queries() {
        // The attack is black-box: the surface only sees probability
        // queries, which the query counter records.
        let (mut surface, x) = setup(2);
        let attack = OnePixel::new(1, 6, 3, 1).unwrap();
        let adv = attack
            .run(&mut surface, &x, AttackGoal::Untargeted { source: 0 })
            .unwrap();
        assert!(adv.queries > 0);
    }

    #[test]
    fn improves_target_probability() {
        let (mut surface, x) = setup(3);
        let target = 1usize;
        let before = surface.probabilities(&x).unwrap().as_slice()[target];
        let attack = OnePixel::new(2, 12, 8, 3).unwrap();
        let adv = attack
            .run(&mut surface, &x, AttackGoal::Targeted { class: target })
            .unwrap();
        let after = surface.probabilities(&adv.adversarial).unwrap().as_slice()[target];
        assert!(
            after >= before,
            "target probability {before} → {after} should not fall"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, x) = setup(4);
        let (mut s2, _) = setup(4);
        let attack = OnePixel::new(1, 6, 3, 99).unwrap();
        let a = attack
            .run(&mut s1, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        let b = attack
            .run(&mut s2, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn rejects_bad_input_and_class() {
        let (mut surface, _) = setup(5);
        let attack = OnePixel::new(1, 6, 2, 0).unwrap();
        assert!(attack
            .run(
                &mut surface,
                &Tensor::zeros(&[1, 3, 16, 16]),
                AttackGoal::Targeted { class: 0 }
            )
            .is_err());
        let x = Tensor::full(&[3, 16, 16], 0.5);
        assert!(attack
            .run(&mut surface, &x, AttackGoal::Targeted { class: 99 })
            .is_err());
    }

    #[test]
    fn named() {
        assert!(OnePixel::standard().name().contains("OnePixel"));
    }
}
