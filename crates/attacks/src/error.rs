use std::error::Error;
use std::fmt;

use fademl_filters::FilterError;
use fademl_nn::NnError;
use fademl_tensor::TensorError;

/// Error type for attack configuration and execution.
#[derive(Debug)]
#[non_exhaustive]
pub enum AttackError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// The victim model failed (usually a shape mismatch).
    Network(NnError),
    /// The pre-processing filter failed.
    Filter(FilterError),
    /// An attack hyper-parameter was invalid.
    InvalidParameter {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// The attack input was malformed (e.g. not a `[C, H, W]` image, or
    /// a target class out of range).
    InvalidInput {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Tensor(e) => write!(f, "tensor error: {e}"),
            AttackError::Network(e) => write!(f, "network error: {e}"),
            AttackError::Filter(e) => write!(f, "filter error: {e}"),
            AttackError::InvalidParameter { reason } => {
                write!(f, "invalid attack parameter: {reason}")
            }
            AttackError::InvalidInput { reason } => write!(f, "invalid attack input: {reason}"),
        }
    }
}

impl Error for AttackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AttackError::Tensor(e) => Some(e),
            AttackError::Network(e) => Some(e),
            AttackError::Filter(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AttackError {
    fn from(e: TensorError) -> Self {
        AttackError::Tensor(e)
    }
}

impl From<NnError> for AttackError {
    fn from(e: NnError) -> Self {
        AttackError::Network(e)
    }
}

impl From<FilterError> for AttackError {
    fn from(e: FilterError) -> Self {
        AttackError::Filter(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = AttackError::from(TensorError::EmptyTensor { op: "x" });
        assert!(e.source().is_some());
        let e = AttackError::InvalidParameter {
            reason: "epsilon < 0".into(),
        };
        assert!(e.to_string().contains("epsilon"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AttackError>();
    }
}
