use fademl_tensor::Tensor;

use crate::{AttackError, Result};

/// The attacker's perturbation budget: an L∞ ball around the original
/// image intersected with the valid pixel range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbationBudget {
    /// Maximum per-pixel deviation from the original (L∞ radius).
    pub epsilon: f32,
    /// Lower bound of the valid pixel range.
    pub pixel_min: f32,
    /// Upper bound of the valid pixel range.
    pub pixel_max: f32,
}

impl PerturbationBudget {
    /// A budget over the standard `[0, 1]` pixel range.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-finite or
    /// non-positive `epsilon`.
    pub fn new(epsilon: f32) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("epsilon must be positive and finite, got {epsilon}"),
            });
        }
        Ok(PerturbationBudget {
            epsilon,
            pixel_min: 0.0,
            pixel_max: 1.0,
        })
    }

    /// Projects `candidate` into the budget: first into the ε-ball
    /// around `original`, then into the pixel range.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the two tensors disagree.
    pub fn project(&self, original: &Tensor, candidate: &Tensor) -> Result<Tensor> {
        let clipped =
            candidate.zip_map(original, |c, o| c.clamp(o - self.epsilon, o + self.epsilon))?;
        Ok(clipped.clamp(self.pixel_min, self.pixel_max))
    }

    /// `true` if `candidate` already satisfies the budget (within a
    /// small float tolerance).
    pub fn contains(&self, original: &Tensor, candidate: &Tensor) -> bool {
        const TOL: f32 = 1e-5;
        original
            .as_slice()
            .iter()
            .zip(candidate.as_slice())
            .all(|(&o, &c)| {
                (c - o).abs() <= self.epsilon + TOL
                    && c >= self.pixel_min - TOL
                    && c <= self.pixel_max + TOL
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(PerturbationBudget::new(0.0).is_err());
        assert!(PerturbationBudget::new(-0.1).is_err());
        assert!(PerturbationBudget::new(f32::NAN).is_err());
        assert!(PerturbationBudget::new(0.05).is_ok());
    }

    #[test]
    fn project_enforces_ball_and_range() {
        let budget = PerturbationBudget::new(0.1).unwrap();
        let original = Tensor::from_vec(vec![0.5, 0.05, 0.95], [3].into()).unwrap();
        let wild = Tensor::from_vec(vec![0.9, -0.5, 2.0], [3].into()).unwrap();
        let projected = budget.project(&original, &wild).unwrap();
        assert!((projected.as_slice()[0] - 0.6).abs() < 1e-6); // ball clip
        assert!((projected.as_slice()[1] - 0.0).abs() < 1e-6); // range clip after ball
        assert!((projected.as_slice()[2] - 1.0).abs() < 1e-6);
        assert!(budget.contains(&original, &projected));
    }

    #[test]
    fn inside_budget_unchanged() {
        let budget = PerturbationBudget::new(0.2).unwrap();
        let original = Tensor::full(&[4], 0.5);
        let candidate = Tensor::full(&[4], 0.6);
        assert_eq!(budget.project(&original, &candidate).unwrap(), candidate);
        assert!(budget.contains(&original, &candidate));
    }

    proptest! {
        /// Projection is idempotent and always lands inside the budget.
        #[test]
        fn projection_idempotent(seed in 0u64..500, eps in 0.01f32..0.3) {
            let budget = PerturbationBudget::new(eps).unwrap();
            let mut rng = TensorRng::seed_from_u64(seed);
            let original = rng.uniform(&[8], 0.0, 1.0);
            let candidate = rng.uniform(&[8], -1.0, 2.0);
            let once = budget.project(&original, &candidate).unwrap();
            let twice = budget.project(&original, &once).unwrap();
            prop_assert!(budget.contains(&original, &once));
            for (a, b) in once.as_slice().iter().zip(twice.as_slice()) {
                prop_assert!((a - b).abs() < 1e-6);
            }
        }
    }
}
