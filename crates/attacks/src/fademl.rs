use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The paper's contribution: the pre-processing noise-Filter-aware
/// Adversarial ML attack (§IV).
///
/// FAdeML upgrades any library attack into a filter-aware one by
/// combining two ingredients:
///
/// 1. **A filter-aware surface.** The wrapped attack is run against an
///    [`AttackSurface`] that models `filter ∘ DNN`, so every gradient it
///    sees is already chained through the filter's vector-Jacobian
///    product (paper steps 2–4). The caller supplies that surface — for
///    the paper's experiments it carries the same LAP/LAR filter the
///    victim pipeline deploys.
/// 2. **An outer refinement loop** (paper steps 5–6 and Eq. 3): the
///    accumulated noise `n` is rescaled by the imperceptibility factor
///    `η` and refined by re-running the inner attack from the current
///    adversarial point, `x* = η · (n + δn) + x`, until the goal is met
///    on the surface or the round budget is exhausted.
///
/// # Example
///
/// ```
/// use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fademl, Fgsm};
/// use fademl_filters::Lap;
/// use fademl_nn::vgg::VggConfig;
/// use fademl_tensor::TensorRng;
///
/// # fn main() -> Result<(), fademl_attacks::AttackError> {
/// let mut rng = TensorRng::seed_from_u64(0);
/// let model = VggConfig::tiny(3, 16, 4).build(&mut rng)?;
/// // The attacker models the defender's LAP(8) filter inside the loop.
/// let mut surface = AttackSurface::with_filter(model, Box::new(Lap::new(8)?));
/// let fademl = Fademl::new(Box::new(Fgsm::new(0.05)?), 3, 1.0)?;
/// let x = rng.uniform(&[3, 16, 16], 0.0, 1.0);
/// let adv = fademl.run(&mut surface, &x, AttackGoal::Targeted { class: 1 })?;
/// assert_eq!(adv.adversarial.dims(), x.dims());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Fademl {
    inner: Box<dyn Attack>,
    rounds: usize,
    noise_scale: f32,
}

impl Fademl {
    /// Wraps `inner` with `rounds` refinement rounds and noise scaling
    /// factor `noise_scale` (the paper's η; 1.0 keeps the raw noise).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for zero rounds or a
    /// `noise_scale` outside `(0, 1]`.
    pub fn new(inner: Box<dyn Attack>, rounds: usize, noise_scale: f32) -> Result<Self> {
        if rounds == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "FAdeML needs at least one refinement round".into(),
            });
        }
        if !noise_scale.is_finite() || noise_scale <= 0.0 || noise_scale > 1.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("FAdeML noise scale must be in (0, 1], got {noise_scale}"),
            });
        }
        Ok(Fademl {
            inner,
            rounds,
            noise_scale,
        })
    }

    /// The wrapped attack.
    pub fn inner(&self) -> &dyn Attack {
        self.inner.as_ref()
    }

    /// The refinement-round budget.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The noise scaling factor η.
    pub fn noise_scale(&self) -> f32 {
        self.noise_scale
    }
}

impl Attack for Fademl {
    fn name(&self) -> String {
        format!(
            "FAdeML[{}](rounds={}, eta={})",
            self.inner.name(),
            self.rounds,
            self.noise_scale
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        let mut current = x.clone();
        let mut total_iterations = 0usize;
        let mut total_queries = 0u64;
        let mut best: Option<AdversarialExample> = None;

        for _ in 0..self.rounds {
            // Refine: δn from the inner attack at the current point.
            let refined = self.inner.run(surface, &current, goal)?;
            total_iterations += refined.iterations;
            total_queries += refined.queries;

            // Eq. 3: x* = η · (n + δn) + x, clipped into pixel range.
            let accumulated = current.add(&refined.noise)?.sub(x)?;
            current = x.add(&accumulated.scale(self.noise_scale))?.clamp(0.0, 1.0);

            surface.reset_queries();
            let candidate = finish(surface, x, current.clone(), goal, total_iterations)?;
            total_queries += surface.queries();
            let better = match &best {
                None => true,
                Some(b) => {
                    (candidate.success_on_surface && !b.success_on_surface)
                        || (candidate.success_on_surface == b.success_on_surface
                            && candidate.confidence > b.confidence)
                }
            };
            if better {
                best = Some(candidate);
            }
            if best.as_ref().is_some_and(|b| b.success_on_surface) {
                break;
            }
        }
        let mut result = best.expect("at least one round ran");
        result.iterations = total_iterations;
        result.queries = total_queries;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bim, Fgsm};
    use fademl_filters::Lap;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn victim(seed: u64) -> (fademl_nn::Sequential, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (model, x)
    }

    #[test]
    fn construction_validates() {
        let inner = || Box::new(Fgsm::new(0.05).unwrap()) as Box<dyn Attack>;
        assert!(Fademl::new(inner(), 0, 1.0).is_err());
        assert!(Fademl::new(inner(), 3, 0.0).is_err());
        assert!(Fademl::new(inner(), 3, 1.5).is_err());
        assert!(Fademl::new(inner(), 3, f32::NAN).is_err());
        assert!(Fademl::new(inner(), 3, 0.9).is_ok());
    }

    #[test]
    fn accessors_and_name() {
        let fademl = Fademl::new(Box::new(Fgsm::new(0.05).unwrap()), 4, 0.95).unwrap();
        assert_eq!(fademl.rounds(), 4);
        assert_eq!(fademl.noise_scale(), 0.95);
        assert!(fademl.name().contains("FGSM"));
        assert!(fademl.name().contains("rounds=4"));
        assert!(fademl.inner().name().contains("FGSM"));
    }

    #[test]
    fn output_is_valid_image() {
        let (model, x) = victim(1);
        let mut surface = AttackSurface::with_filter(model, Box::new(Lap::new(8).unwrap()));
        let fademl = Fademl::new(Box::new(Fgsm::new(0.06).unwrap()), 3, 0.9).unwrap();
        let adv = fademl
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert!(!adv.adversarial.has_non_finite());
        assert!(adv.iterations >= 1);
    }

    #[test]
    fn filter_aware_attack_beats_blind_attack_through_filter() {
        // The core claim of the paper: crafting against filter∘DNN
        // transfers through the filter better than crafting against the
        // bare DNN. Compare the *targeted loss measured through the
        // filtered pipeline*.
        let (model, x) = victim(2);
        let filter = Lap::new(8).unwrap();
        let goal = AttackGoal::Targeted { class: 4 };
        let inner = Bim::new(0.12, 0.02, 12).unwrap();

        // Blind: craft on bare surface.
        let mut bare = AttackSurface::new(model.clone());
        let blind = inner.run(&mut bare, &x, goal).unwrap();

        // Aware: craft on filtered surface via FAdeML.
        let mut filtered_surface =
            AttackSurface::with_filter(model.clone(), Box::new(filter.clone()));
        let fademl = Fademl::new(Box::new(inner), 2, 1.0).unwrap();
        let aware = fademl.run(&mut filtered_surface, &x, goal).unwrap();

        // Evaluate both through the deployed (filtered) pipeline.
        let mut pipeline = AttackSurface::with_filter(model, Box::new(filter));
        let (blind_loss, _) = pipeline
            .loss_and_input_grad(&blind.adversarial, goal)
            .unwrap();
        let (aware_loss, _) = pipeline
            .loss_and_input_grad(&aware.adversarial, goal)
            .unwrap();
        assert!(
            aware_loss < blind_loss,
            "filter-aware loss {aware_loss} not better than blind {blind_loss}"
        );
    }

    #[test]
    fn eta_scales_noise_down() {
        let (model, x) = victim(3);
        let goal = AttackGoal::Targeted { class: 1 };
        let run_with = |eta: f32| {
            let mut surface = AttackSurface::new(model.clone());
            Fademl::new(Box::new(Fgsm::new(0.1).unwrap()), 1, eta)
                .unwrap()
                .run(&mut surface, &x, goal)
                .unwrap()
        };
        let full = run_with(1.0);
        let half = run_with(0.5);
        assert!(half.noise_linf() < full.noise_linf());
    }

    #[test]
    fn stops_early_on_success() {
        let (model, x) = victim(4);
        let mut surface = AttackSurface::new(model);
        let (class, _) = surface.predict(&x).unwrap();
        // Targeting the current prediction succeeds in round one.
        let fademl = Fademl::new(Box::new(Fgsm::new(0.01).unwrap()), 5, 1.0).unwrap();
        let adv = fademl
            .run(&mut surface, &x, AttackGoal::Targeted { class })
            .unwrap();
        assert!(adv.success_on_surface);
        assert_eq!(adv.iterations, 1); // one FGSM round only
    }
}
