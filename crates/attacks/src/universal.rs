//! Universal adversarial perturbations: one noise pattern crafted to
//! work across *many* images.
//!
//! This formalizes the mechanism behind the paper's Fig. 6 accuracy
//! experiment (one scenario's noise transferred to the whole dataset):
//! instead of hoping a single-image perturbation transfers, the
//! universal variant explicitly optimizes the shared noise over a
//! training set of images with signed-gradient steps projected into an
//! ε-ball.

use fademl_tensor::Tensor;

use crate::attack::AttackGoal;
use crate::{AttackError, AttackSurface, Result};

/// Builder for a universal perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniversalPerturbation {
    epsilon: f32,
    alpha: f32,
    epochs: usize,
}

/// The crafted universal noise plus its training statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct UniversalOutcome {
    /// The shared noise pattern (same shape as the images, L∞ ≤ ε).
    pub noise: Tensor,
    /// Fraction of the training images whose goal was met at the end.
    pub training_success: f32,
    /// Optimization epochs performed.
    pub epochs: usize,
}

impl UniversalPerturbation {
    /// Creates a builder with ε-ball radius `epsilon`, per-step size
    /// `alpha`, and a pass count over the image set.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-positive
    /// `epsilon`/`alpha`, `alpha > epsilon`, or zero epochs.
    pub fn new(epsilon: f32, alpha: f32, epochs: usize) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("universal needs positive epsilon/alpha, got {epsilon}/{alpha}"),
            });
        }
        if alpha > epsilon {
            return Err(AttackError::InvalidParameter {
                reason: format!("universal step {alpha} exceeds ball radius {epsilon}"),
            });
        }
        if epochs == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "universal needs at least one epoch".into(),
            });
        }
        Ok(UniversalPerturbation {
            epsilon,
            alpha,
            epochs,
        })
    }

    /// Crafts the shared noise over `images` (each `[C, H, W]`, same
    /// shape) for `goal`.
    ///
    /// Every epoch walks the image set once, taking a signed-gradient
    /// step on the shared noise for each image and projecting back into
    /// the ε-ball.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidInput`] for an empty or
    /// inconsistently shaped image set, plus any surface error.
    pub fn craft(
        &self,
        surface: &mut AttackSurface,
        images: &[Tensor],
        goal: AttackGoal,
    ) -> Result<UniversalOutcome> {
        let first = images.first().ok_or(AttackError::InvalidInput {
            reason: "universal perturbation needs at least one image".into(),
        })?;
        for img in images {
            if img.shape() != first.shape() {
                return Err(AttackError::InvalidInput {
                    reason: format!(
                        "image shapes differ: {:?} vs {:?}",
                        first.dims(),
                        img.dims()
                    ),
                });
            }
        }
        surface.reset_queries();
        let mut noise = Tensor::zeros_like(first);
        for _ in 0..self.epochs {
            for img in images {
                let candidate = img.add(&noise)?.clamp(0.0, 1.0);
                let (_, grad) = surface.loss_and_input_grad(&candidate, goal)?;
                noise.add_scaled_inplace(&grad.sign(), -self.alpha)?;
                noise = noise.clamp(-self.epsilon, self.epsilon);
            }
        }
        let mut hits = 0usize;
        for img in images {
            let candidate = img.add(&noise)?.clamp(0.0, 1.0);
            let (predicted, _) = surface.predict(&candidate)?;
            if goal.is_met(predicted) {
                hits += 1;
            }
        }
        Ok(UniversalOutcome {
            noise,
            training_success: hits as f32 / images.len() as f32,
            epochs: self.epochs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup(seed: u64, n_images: usize) -> (AttackSurface, Vec<Tensor>) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let images = (0..n_images)
            .map(|_| rng.uniform(&[3, 16, 16], 0.2, 0.8))
            .collect();
        (AttackSurface::new(model), images)
    }

    #[test]
    fn construction_validates() {
        assert!(UniversalPerturbation::new(0.0, 0.01, 2).is_err());
        assert!(UniversalPerturbation::new(0.1, 0.0, 2).is_err());
        assert!(UniversalPerturbation::new(0.1, 0.2, 2).is_err());
        assert!(UniversalPerturbation::new(0.1, 0.02, 0).is_err());
        assert!(UniversalPerturbation::new(0.1, 0.02, 2).is_ok());
    }

    #[test]
    fn rejects_empty_or_mismatched_images() {
        let (mut surface, _) = setup(1, 0);
        let up = UniversalPerturbation::new(0.1, 0.02, 1).unwrap();
        assert!(up
            .craft(&mut surface, &[], AttackGoal::Targeted { class: 0 })
            .is_err());
        let mut rng = TensorRng::seed_from_u64(2);
        let images = vec![
            rng.uniform(&[3, 16, 16], 0.0, 1.0),
            rng.uniform(&[3, 8, 8], 0.0, 1.0),
        ];
        assert!(up
            .craft(&mut surface, &images, AttackGoal::Targeted { class: 0 })
            .is_err());
    }

    #[test]
    fn noise_stays_in_ball() {
        let (mut surface, images) = setup(3, 4);
        let up = UniversalPerturbation::new(0.07, 0.02, 3).unwrap();
        let outcome = up
            .craft(&mut surface, &images, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(outcome.noise.norm_linf() <= 0.07 + 1e-6);
        assert_eq!(outcome.noise.dims(), images[0].dims());
        assert_eq!(outcome.epochs, 3);
        assert!((0.0..=1.0).contains(&outcome.training_success));
    }

    #[test]
    fn shared_noise_beats_zero_noise_on_the_objective() {
        let (mut surface, images) = setup(4, 5);
        let goal = AttackGoal::Targeted { class: 3 };
        let total_loss = |surface: &mut AttackSurface, noise: &Tensor| -> f32 {
            images
                .iter()
                .map(|img| {
                    let c = img.add(noise).unwrap().clamp(0.0, 1.0);
                    surface.loss_and_input_grad(&c, goal).unwrap().0
                })
                .sum()
        };
        let zero = Tensor::zeros_like(&images[0]);
        let before = total_loss(&mut surface, &zero);
        let up = UniversalPerturbation::new(0.1, 0.02, 4).unwrap();
        let outcome = up.craft(&mut surface, &images, goal).unwrap();
        let after = total_loss(&mut surface, &outcome.noise);
        assert!(after < before, "shared loss {before} → {after}");
    }
}
