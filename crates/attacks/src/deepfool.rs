//! DeepFool (Moosavi-Dezfooli et al.) — the minimal-perturbation
//! untargeted attack from the paper's related-work list, included as an
//! extension baseline.
//!
//! At each step the decision boundary to every competitor class is
//! linearized and the closest one is crossed:
//!
//! ```text
//! l* = argmin_{k≠ŷ} |f_k − f_ŷ| / ‖∇f_k − ∇f_ŷ‖₂
//! η  = (|f_l* − f_ŷ| / ‖w_l*‖²) · w_l*,   w_k = ∇f_k − ∇f_ŷ
//! ```

use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The DeepFool untargeted attack.
///
/// DeepFool is inherently untargeted: it seeks the nearest decision
/// boundary regardless of which class lies beyond it. Running it with a
/// targeted goal is rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeepFool {
    max_iterations: usize,
    overshoot: f32,
}

impl DeepFool {
    /// Creates DeepFool with an iteration cap and the usual overshoot
    /// factor (the original paper uses 0.02) that pushes the iterate
    /// just past the linearized boundary.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for zero iterations or
    /// a negative/non-finite overshoot.
    pub fn new(max_iterations: usize, overshoot: f32) -> Result<Self> {
        if max_iterations == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "DeepFool needs at least one iteration".into(),
            });
        }
        if !overshoot.is_finite() || overshoot < 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("DeepFool overshoot must be non-negative, got {overshoot}"),
            });
        }
        Ok(DeepFool {
            max_iterations,
            overshoot,
        })
    }

    /// The original paper's configuration: 50 iterations, 0.02 overshoot.
    pub fn standard() -> Self {
        DeepFool {
            max_iterations: 50,
            overshoot: 0.02,
        }
    }

    /// Gradient of a single logit w.r.t. the input.
    fn logit_grad(
        surface: &mut AttackSurface,
        x: &Tensor,
        class: usize,
        classes: usize,
    ) -> Result<Tensor> {
        let mut seed = Tensor::zeros(&[classes]);
        seed.set(&[class], 1.0)?;
        surface.backward_to_input(x, &seed)
    }
}

impl Attack for DeepFool {
    fn name(&self) -> String {
        format!(
            "DeepFool(iters={}, overshoot={})",
            self.max_iterations, self.overshoot
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        let source = match goal {
            AttackGoal::Untargeted { source } => source,
            AttackGoal::Targeted { .. } => {
                return Err(AttackError::InvalidParameter {
                    reason: "DeepFool is untargeted; use AttackGoal::Untargeted".into(),
                })
            }
        };
        surface.reset_queries();
        let mut current = x.clone();
        let mut used = 0usize;
        for _ in 0..self.max_iterations {
            used += 1;
            let logits = surface.forward_train_logits(&current)?;
            let classes = logits.numel();
            if source >= classes {
                return Err(AttackError::InvalidInput {
                    reason: format!("class {source} out of range for {classes} classes"),
                });
            }
            let predicted = logits.argmax()?;
            if predicted != source {
                break; // already fooled
            }
            // NOTE: backward_to_input reuses the cached forward, but each
            // call zeroes and re-accumulates, so re-run the forward per
            // class gradient.
            let grad_src = Self::logit_grad(surface, &current, source, classes)?;

            let mut best_ratio = f32::INFINITY;
            let mut best_direction: Option<Tensor> = None;
            let mut best_gap = 0.0f32;
            for k in 0..classes {
                if k == source {
                    continue;
                }
                surface.forward_train_logits(&current)?;
                let grad_k = Self::logit_grad(surface, &current, k, classes)?;
                let w = grad_k.sub(&grad_src)?;
                let w_norm = w.norm_l2().max(1e-8);
                let gap = (logits.as_slice()[k] - logits.as_slice()[source]).abs();
                let ratio = gap / w_norm;
                if ratio < best_ratio {
                    best_ratio = ratio;
                    best_gap = gap;
                    best_direction = Some(w);
                }
            }
            let w = best_direction.ok_or(AttackError::InvalidInput {
                reason: "network has a single class; nothing to fool".into(),
            })?;
            let w_norm2 = w.norm_l2_squared().max(1e-12);
            let step = w.scale((best_gap + 1e-4) / w_norm2 * (1.0 + self.overshoot));
            current = current.add(&step)?.clamp(0.0, 1.0);
        }
        finish(surface, x, current, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(DeepFool::new(0, 0.02).is_err());
        assert!(DeepFool::new(10, -0.1).is_err());
        assert!(DeepFool::new(10, f32::NAN).is_err());
        assert!(DeepFool::new(10, 0.02).is_ok());
        assert_eq!(DeepFool::standard().max_iterations, 50);
    }

    #[test]
    fn rejects_targeted_goal() {
        let (mut surface, x) = setup(1);
        let df = DeepFool::standard();
        assert!(matches!(
            df.run(&mut surface, &x, AttackGoal::Targeted { class: 0 }),
            Err(AttackError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn fools_the_classifier_with_small_noise() {
        let (mut surface, x) = setup(2);
        let (source, _) = surface.predict(&x).unwrap();
        let df = DeepFool::standard();
        let adv = df
            .run(&mut surface, &x, AttackGoal::Untargeted { source })
            .unwrap();
        assert!(adv.success_on_surface, "DeepFool failed to fool");
        // Minimal-perturbation attack: the noise should be small.
        assert!(
            adv.noise_l2() < x.norm_l2() * 0.5,
            "noise L2 {} vs image L2 {}",
            adv.noise_l2(),
            x.norm_l2()
        );
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn already_misclassified_input_is_a_no_op() {
        let (mut surface, x) = setup(3);
        let (predicted, _) = surface.predict(&x).unwrap();
        let other = (predicted + 1) % 5;
        // Claim the source is a class the model does NOT predict: fooled
        // from the start, one probe iteration, zero noise.
        let adv = DeepFool::standard()
            .run(&mut surface, &x, AttackGoal::Untargeted { source: other })
            .unwrap();
        assert_eq!(adv.iterations, 1);
        assert_eq!(adv.noise_l2(), 0.0);
        assert!(adv.success_on_surface);
    }

    #[test]
    fn named() {
        assert!(DeepFool::standard().name().contains("DeepFool"));
    }
}
