//! Expectation over Transformation (EOT) PGD — the standard answer to
//! *randomized* pipeline stages such as the paper's Threat Model II
//! re-acquisition noise.
//!
//! A plain gradient attack optimizes against one fixed realization of
//! the pipeline; under TM-II every classification re-draws sensor
//! noise, so the crafted perturbation must work *in expectation*. EOT
//! averages the input gradient over `samples` random noise draws at
//! every PGD step:
//!
//! ```text
//! g = (1/k) Σₛ ∇ₓ J(x_adv + ηₛ),   ηₛ ~ N(0, σ²)
//! x_adv ← Π_ε(x_adv − α · sign(g))
//! ```

use fademl_tensor::{Tensor, TensorRng};

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, PerturbationBudget, Result};

/// EOT-PGD: projected gradient descent with gradients averaged over
/// random noise draws.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EotPgd {
    epsilon: f32,
    alpha: f32,
    iterations: usize,
    noise_std: f32,
    samples: usize,
    seed: u64,
}

impl EotPgd {
    /// Creates EOT-PGD with ε-ball radius `epsilon`, step `alpha`, an
    /// iteration cap, the transformation-noise standard deviation to
    /// marginalize over, and the number of noise draws per step.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-positive
    /// `epsilon`/`alpha`, `alpha > epsilon`, zero iterations/samples, or
    /// a negative/non-finite `noise_std`.
    pub fn new(
        epsilon: f32,
        alpha: f32,
        iterations: usize,
        noise_std: f32,
        samples: usize,
        seed: u64,
    ) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("EOT-PGD needs positive epsilon/alpha, got {epsilon}/{alpha}"),
            });
        }
        if alpha > epsilon {
            return Err(AttackError::InvalidParameter {
                reason: format!("EOT-PGD step {alpha} exceeds ball radius {epsilon}"),
            });
        }
        if iterations == 0 || samples == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "EOT-PGD needs positive iterations and samples".into(),
            });
        }
        if !noise_std.is_finite() || noise_std < 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("EOT noise std must be non-negative, got {noise_std}"),
            });
        }
        Ok(EotPgd {
            epsilon,
            alpha,
            iterations,
            noise_std,
            samples,
            seed,
        })
    }

    /// The number of noise draws averaged per step.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// The marginalized noise standard deviation.
    pub fn noise_std(&self) -> f32 {
        self.noise_std
    }
}

impl Attack for EotPgd {
    fn name(&self) -> String {
        format!(
            "EOT-PGD(eps={}, iters={}, sigma={}, k={})",
            self.epsilon, self.iterations, self.noise_std, self.samples
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        let budget = PerturbationBudget::new(self.epsilon)?;
        let mut rng = TensorRng::seed_from_u64(self.seed);
        let mut current = x.clone();
        let mut used = 0usize;
        for _ in 0..self.iterations {
            used += 1;
            // Average the gradient over noise draws (the expectation).
            let mut mean_grad = Tensor::zeros_like(x);
            for _ in 0..self.samples {
                let probe = if self.noise_std > 0.0 {
                    let noise = rng.normal(x.dims(), 0.0, self.noise_std);
                    current.add(&noise)?.clamp(0.0, 1.0)
                } else {
                    current.clone()
                };
                let (_, grad) = surface.loss_and_input_grad(&probe, goal)?;
                mean_grad.add_scaled_inplace(&grad, 1.0 / self.samples as f32)?;
            }
            let step = mean_grad.sign().scale(self.alpha);
            current = budget.project(x, &current.sub(&step)?)?;
        }
        finish(surface, x, current, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(EotPgd::new(0.0, 0.01, 5, 0.05, 4, 0).is_err());
        assert!(EotPgd::new(0.1, 0.2, 5, 0.05, 4, 0).is_err());
        assert!(EotPgd::new(0.1, 0.01, 0, 0.05, 4, 0).is_err());
        assert!(EotPgd::new(0.1, 0.01, 5, 0.05, 0, 0).is_err());
        assert!(EotPgd::new(0.1, 0.01, 5, -1.0, 4, 0).is_err());
        let ok = EotPgd::new(0.1, 0.02, 5, 0.05, 4, 0).unwrap();
        assert_eq!(ok.samples(), 4);
        assert_eq!(ok.noise_std(), 0.05);
    }

    #[test]
    fn respects_budget_and_range() {
        let (mut surface, x) = setup(1);
        let eot = EotPgd::new(0.06, 0.01, 6, 0.04, 3, 1).unwrap();
        let adv = eot
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(adv.noise_linf() <= 0.06 + 1e-5);
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert_eq!(adv.iterations, 6);
    }

    #[test]
    fn zero_sigma_one_sample_matches_plain_pgd_direction() {
        // With σ = 0 and k = 1 every EOT step is an exact PGD step.
        let (mut surface, x) = setup(2);
        let goal = AttackGoal::Targeted { class: 1 };
        let (before, _) = surface.loss_and_input_grad(&x, goal).unwrap();
        let eot = EotPgd::new(0.08, 0.02, 8, 0.0, 1, 2).unwrap();
        let adv = eot.run(&mut surface, &x, goal).unwrap();
        let (after, _) = surface.loss_and_input_grad(&adv.adversarial, goal).unwrap();
        assert!(after < before, "loss {before} → {after}");
    }

    #[test]
    fn eot_examples_are_more_noise_robust_than_plain_pgd() {
        // The defining property: averaged over fresh noise draws, the
        // EOT example keeps a lower goal loss than a plain PGD example
        // of the same budget.
        use crate::Bim;
        let (mut surface, x) = setup(3);
        let goal = AttackGoal::Targeted { class: 4 };
        let sigma = 0.08f32;

        let plain = Bim::new(0.08, 0.02, 10)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();
        let eot = EotPgd::new(0.08, 0.02, 10, sigma, 6, 3)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();

        let mut rng = TensorRng::seed_from_u64(99);
        let mut expected_loss = |img: &Tensor| -> f32 {
            let mut total = 0.0;
            for _ in 0..24 {
                let noise = rng.normal(img.dims(), 0.0, sigma);
                let probe = img.add(&noise).unwrap().clamp(0.0, 1.0);
                let (l, _) = surface.loss_and_input_grad(&probe, goal).unwrap();
                total += l;
            }
            total / 24.0
        };
        let plain_loss = expected_loss(&plain.adversarial);
        let eot_loss = expected_loss(&eot.adversarial);
        assert!(
            eot_loss <= plain_loss + 0.05,
            "EOT expected loss {eot_loss} not better than plain {plain_loss}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, x) = setup(4);
        let (mut s2, _) = setup(4);
        let eot = EotPgd::new(0.05, 0.01, 3, 0.03, 2, 7).unwrap();
        let a = eot
            .run(&mut s1, &x, AttackGoal::Targeted { class: 0 })
            .unwrap();
        let b = eot
            .run(&mut s2, &x, AttackGoal::Targeted { class: 0 })
            .unwrap();
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn named() {
        let eot = EotPgd::new(0.05, 0.01, 3, 0.03, 2, 0).unwrap();
        assert!(eot.name().contains("EOT-PGD"));
    }
}
