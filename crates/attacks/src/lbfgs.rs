//! A from-scratch limited-memory BFGS optimizer and the L-BFGS
//! adversarial attack built on it (Szegedy et al., the paper's first
//! library attack).
//!
//! The optimizer implements the standard two-loop recursion over a
//! bounded curvature history with an Armijo backtracking line search —
//! the paper specifically calls out L-BFGS's reliance on line search as
//! its cost driver, so that structure is preserved rather than replaced
//! by a fixed step size.

use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// Outcome of one [`Lbfgs::minimize`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct LbfgsOutcome {
    /// The minimizing point found.
    pub x: Tensor,
    /// Objective value at `x`.
    pub value: f32,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the gradient-norm tolerance was reached.
    pub converged: bool,
}

/// Limited-memory BFGS with Armijo backtracking line search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lbfgs {
    /// Curvature-pair history length (typically 5-20).
    pub history: usize,
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Stop when the gradient L2 norm falls below this.
    pub grad_tolerance: f32,
    /// Armijo sufficient-decrease constant (0 < c₁ < 1).
    pub armijo_c1: f32,
    /// Multiplicative backtracking factor (0 < ρ < 1).
    pub backtrack_rho: f32,
    /// Maximum backtracking steps per line search.
    pub max_backtracks: usize,
}

impl Default for Lbfgs {
    fn default() -> Self {
        Lbfgs {
            history: 8,
            max_iterations: 50,
            grad_tolerance: 1e-5,
            armijo_c1: 1e-4,
            backtrack_rho: 0.5,
            max_backtracks: 20,
        }
    }
}

impl Lbfgs {
    /// Creates the optimizer with default hyper-parameters and the given
    /// iteration cap.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for zero iterations or
    /// history.
    pub fn new(max_iterations: usize, history: usize) -> Result<Self> {
        if max_iterations == 0 || history == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "L-BFGS needs positive max_iterations and history".into(),
            });
        }
        Ok(Lbfgs {
            history,
            max_iterations,
            ..Lbfgs::default()
        })
    }

    /// Minimizes `objective` (returning `(value, gradient)`) from `x0`.
    ///
    /// # Errors
    ///
    /// Propagates objective errors; returns
    /// [`AttackError::InvalidInput`] if the objective produces
    /// non-finite values at the starting point.
    pub fn minimize<F>(&self, x0: &Tensor, mut objective: F) -> Result<LbfgsOutcome>
    where
        F: FnMut(&Tensor) -> Result<(f32, Tensor)>,
    {
        let mut x = x0.clone();
        let (mut fx, mut grad) = objective(&x)?;
        if !fx.is_finite() || grad.has_non_finite() {
            return Err(AttackError::InvalidInput {
                reason: "objective is non-finite at the starting point".into(),
            });
        }
        // Curvature history: (s_k = x_{k+1} − x_k, y_k = g_{k+1} − g_k, ρ_k).
        let mut s_hist: Vec<Tensor> = Vec::new();
        let mut y_hist: Vec<Tensor> = Vec::new();
        let mut rho_hist: Vec<f32> = Vec::new();

        let mut iterations = 0usize;
        let mut converged = grad.norm_l2() < self.grad_tolerance;

        while iterations < self.max_iterations && !converged {
            iterations += 1;
            // --- Two-loop recursion: direction d = −H·g ---------------
            let mut q = grad.clone();
            let mut alphas = Vec::with_capacity(s_hist.len());
            for i in (0..s_hist.len()).rev() {
                let alpha = rho_hist[i] * s_hist[i].dot(&q)?;
                q.add_scaled_inplace(&y_hist[i], -alpha)?;
                alphas.push(alpha);
            }
            alphas.reverse();
            // Initial Hessian scaling γ = sᵀy / yᵀy of the newest pair.
            if let (Some(s), Some(y)) = (s_hist.last(), y_hist.last()) {
                let sy = s.dot(y)?;
                let yy = y.dot(y)?;
                if yy > 0.0 && sy > 0.0 {
                    q = q.scale(sy / yy);
                }
            }
            for i in 0..s_hist.len() {
                let beta = rho_hist[i] * y_hist[i].dot(&q)?;
                q.add_scaled_inplace(&s_hist[i], alphas[i] - beta)?;
            }
            let mut direction = q.scale(-1.0);

            // Safeguard: fall back to steepest descent when the
            // quasi-Newton direction is not a descent direction.
            let mut dir_dot_grad = direction.dot(&grad)?;
            if dir_dot_grad >= 0.0 {
                direction = grad.scale(-1.0);
                dir_dot_grad = -grad.norm_l2_squared();
            }

            // --- Armijo backtracking line search -----------------------
            let mut step = if s_hist.is_empty() {
                // First iteration: conservative step scaled by gradient.
                (1.0 / grad.norm_l2().max(1.0)).min(1.0)
            } else {
                1.0
            };
            let mut accepted = false;
            let mut new_x = x.clone();
            let mut new_fx = fx;
            let mut new_grad = grad.clone();
            for _ in 0..self.max_backtracks {
                let mut candidate = x.clone();
                candidate.add_scaled_inplace(&direction, step)?;
                let (cf, cg) = objective(&candidate)?;
                if cf.is_finite() && cf <= fx + self.armijo_c1 * step * dir_dot_grad {
                    new_x = candidate;
                    new_fx = cf;
                    new_grad = cg;
                    accepted = true;
                    break;
                }
                step *= self.backtrack_rho;
            }
            if !accepted {
                // Line search failed: the current point is (numerically)
                // a local minimum along every direction we can try.
                break;
            }

            // --- Update curvature history ------------------------------
            let s = new_x.sub(&x)?;
            let y = new_grad.sub(&grad)?;
            let sy = s.dot(&y)?;
            if sy > 1e-10 {
                s_hist.push(s);
                y_hist.push(y);
                rho_hist.push(1.0 / sy);
                if s_hist.len() > self.history {
                    s_hist.remove(0);
                    y_hist.remove(0);
                    rho_hist.remove(0);
                }
            }
            x = new_x;
            fx = new_fx;
            grad = new_grad;
            converged = grad.norm_l2() < self.grad_tolerance;
        }
        Ok(LbfgsOutcome {
            x,
            value: fx,
            iterations,
            converged,
        })
    }
}

/// The L-BFGS adversarial attack (paper Eq. 1): minimize
/// `c·‖η‖² + CE(f(clip(x + η)), target)` over the noise `η`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbfgsAttack {
    c: f32,
    optimizer: Lbfgs,
}

impl LbfgsAttack {
    /// Creates the attack with noise-norm weight `c` and an iteration cap.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for negative or
    /// non-finite `c` or zero iterations.
    pub fn new(c: f32, max_iterations: usize) -> Result<Self> {
        if !c.is_finite() || c < 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("L-BFGS attack weight c must be non-negative, got {c}"),
            });
        }
        Ok(LbfgsAttack {
            c,
            optimizer: Lbfgs::new(max_iterations, 8)?,
        })
    }

    /// The noise-norm weight.
    pub fn c(&self) -> f32 {
        self.c
    }
}

impl Attack for LbfgsAttack {
    fn name(&self) -> String {
        format!(
            "L-BFGS(c={}, iters={})",
            self.c, self.optimizer.max_iterations
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        let c = self.c;
        let x_ref = x.clone();
        let outcome = self.optimizer.minimize(&Tensor::zeros_like(x), |noise| {
            let candidate = x_ref.add(noise)?;
            let clipped = candidate.clamp(0.0, 1.0);
            let (loss, grad_x) = surface.loss_and_input_grad(&clipped, goal)?;
            // Pass-through clamp subgradient: zero where the clamp is
            // active (candidate outside [0, 1]).
            let mask = candidate.map(|v| if (0.0..=1.0).contains(&v) { 1.0 } else { 0.0 });
            let mut grad = grad_x.mul(&mask)?;
            grad.add_scaled_inplace(noise, 2.0 * c)?;
            Ok((loss + c * noise.norm_l2_squared(), grad))
        })?;
        let adversarial = x.add(&outcome.x)?.clamp(0.0, 1.0);
        finish(surface, x, adversarial, goal, outcome.iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::{Shape, TensorRng};

    #[test]
    fn construction_validates() {
        assert!(Lbfgs::new(0, 8).is_err());
        assert!(Lbfgs::new(10, 0).is_err());
        assert!(LbfgsAttack::new(-1.0, 10).is_err());
        assert!(LbfgsAttack::new(f32::NAN, 10).is_err());
        assert!(LbfgsAttack::new(0.1, 10).is_ok());
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        // f(x) = ½‖x − t‖², minimum at t.
        let target = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3].into()).unwrap();
        let opt = Lbfgs::new(50, 8).unwrap();
        let outcome = opt
            .minimize(&Tensor::zeros(&[3]), |x| {
                let diff = x.sub(&target)?;
                Ok((0.5 * diff.norm_l2_squared(), diff))
            })
            .unwrap();
        assert!(outcome.converged);
        for (a, b) in outcome.x.as_slice().iter().zip(target.as_slice()) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn minimizes_rosenbrock() {
        // The classic curved-valley benchmark: minimum at (1, 1).
        let opt = Lbfgs {
            max_iterations: 200,
            ..Lbfgs::default()
        };
        let outcome = opt
            .minimize(
                &Tensor::from_vec(vec![-1.2, 1.0], Shape::new(vec![2])).unwrap(),
                |p| {
                    let (x, y) = (p.as_slice()[0], p.as_slice()[1]);
                    let f = (1.0 - x).powi(2) + 100.0 * (y - x * x).powi(2);
                    let gx = -2.0 * (1.0 - x) - 400.0 * x * (y - x * x);
                    let gy = 200.0 * (y - x * x);
                    Ok((f, Tensor::from_vec(vec![gx, gy], Shape::new(vec![2]))?))
                },
            )
            .unwrap();
        assert!(
            (outcome.x.as_slice()[0] - 1.0).abs() < 1e-2
                && (outcome.x.as_slice()[1] - 1.0).abs() < 1e-2,
            "ended at {:?} after {} iters",
            outcome.x.as_slice(),
            outcome.iterations
        );
    }

    #[test]
    fn converges_faster_than_gradient_descent_on_ill_conditioned() {
        // f(x) = ½(x₀² + 100·x₁²): L-BFGS should need far fewer
        // iterations than its cap on this classic hard case for GD.
        let opt = Lbfgs::new(100, 8).unwrap();
        let outcome = opt
            .minimize(
                &Tensor::from_vec(vec![10.0, 1.0], Shape::new(vec![2])).unwrap(),
                |p| {
                    let (x, y) = (p.as_slice()[0], p.as_slice()[1]);
                    Ok((
                        0.5 * (x * x + 100.0 * y * y),
                        Tensor::from_vec(vec![x, 100.0 * y], Shape::new(vec![2]))?,
                    ))
                },
            )
            .unwrap();
        assert!(outcome.converged);
        assert!(
            outcome.iterations < 40,
            "took {} iterations",
            outcome.iterations
        );
    }

    #[test]
    fn rejects_non_finite_start() {
        let opt = Lbfgs::new(10, 4).unwrap();
        let result = opt.minimize(&Tensor::zeros(&[1]), |_| {
            Ok((f32::NAN, Tensor::zeros(&[1])))
        });
        assert!(matches!(result, Err(AttackError::InvalidInput { .. })));
    }

    #[test]
    fn attack_produces_bounded_image() {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let mut surface = AttackSurface::new(model);
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        let attack = LbfgsAttack::new(0.05, 20).unwrap();
        let adv = attack
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert!(!adv.adversarial.has_non_finite());
    }

    #[test]
    fn attack_decreases_targeted_loss() {
        let mut rng = TensorRng::seed_from_u64(2);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let mut surface = AttackSurface::new(model);
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        let goal = AttackGoal::Targeted { class: 3 };
        let (before, _) = surface.loss_and_input_grad(&x, goal).unwrap();
        let adv = LbfgsAttack::new(0.01, 25)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();
        let (after, _) = surface.loss_and_input_grad(&adv.adversarial, goal).unwrap();
        assert!(after < before, "loss {before} → {after}");
    }

    #[test]
    fn higher_c_yields_smaller_noise() {
        let mut rng = TensorRng::seed_from_u64(3);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let mut surface = AttackSurface::new(model);
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        let goal = AttackGoal::Targeted { class: 1 };
        let small_c = LbfgsAttack::new(0.001, 20)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();
        let big_c = LbfgsAttack::new(1.0, 20)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();
        assert!(
            big_c.noise_l2() <= small_c.noise_l2() + 1e-4,
            "c=1.0 noise {} vs c=0.001 noise {}",
            big_c.noise_l2(),
            small_c.noise_l2()
        );
    }

    #[test]
    fn name_includes_c() {
        let attack = LbfgsAttack::new(0.05, 30).unwrap();
        assert!(attack.name().contains("0.05"));
        assert_eq!(attack.c(), 0.05);
    }
}
