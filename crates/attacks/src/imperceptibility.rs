use fademl_tensor::Tensor;

use crate::{AttackError, Result};

/// Quantifies how visible an adversarial perturbation is — the paper's
/// imperceptibility criteria (noise norms and the correlation
/// coefficient between original and adversarial image).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImperceptibilityReport {
    /// L2 norm of the perturbation.
    pub noise_l2: f32,
    /// L∞ norm of the perturbation.
    pub noise_linf: f32,
    /// Mean absolute per-pixel change.
    pub mean_abs: f32,
    /// Peak signal-to-noise ratio in dB (for a `[0, 1]` pixel range);
    /// `f32::INFINITY` for identical images.
    pub psnr_db: f32,
    /// Pearson correlation coefficient between the two images
    /// (1.0 = visually identical structure).
    pub correlation: f32,
}

impl ImperceptibilityReport {
    /// Compares an original and an adversarial image of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidInput`] if shapes differ or images
    /// are empty.
    pub fn between(original: &Tensor, adversarial: &Tensor) -> Result<Self> {
        if original.shape() != adversarial.shape() {
            return Err(AttackError::InvalidInput {
                reason: format!(
                    "image shapes differ: {:?} vs {:?}",
                    original.dims(),
                    adversarial.dims()
                ),
            });
        }
        let n = original.numel();
        if n == 0 {
            return Err(AttackError::InvalidInput {
                reason: "cannot compare empty images".into(),
            });
        }
        let noise = adversarial.sub(original)?;
        let mse = noise.norm_l2_squared() / n as f32;
        let psnr_db = if mse == 0.0 {
            f32::INFINITY
        } else {
            // MAX = 1.0 for unit-range images.
            -10.0 * mse.log10()
        };
        Ok(ImperceptibilityReport {
            noise_l2: noise.norm_l2(),
            noise_linf: noise.norm_linf(),
            mean_abs: noise.abs().mean(),
            psnr_db,
            correlation: pearson(original.as_slice(), adversarial.as_slice()),
        })
    }

    /// A rule-of-thumb judgement: PSNR above 30 dB is generally
    /// considered visually imperceptible for natural images.
    pub fn is_imperceptible(&self) -> bool {
        self.psnr_db > 30.0
    }
}

fn pearson(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len() as f32;
    let mean_a: f32 = a.iter().sum::<f32>() / n;
    let mean_b: f32 = b.iter().sum::<f32>() / n;
    let mut cov = 0.0f32;
    let mut var_a = 0.0f32;
    let mut var_b = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let (dx, dy) = (x - mean_a, y - mean_b);
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        // A constant image correlates perfectly with itself, else 0.
        return if a == b { 1.0 } else { 0.0 };
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn identical_images_are_perfect() {
        let mut rng = TensorRng::seed_from_u64(1);
        let img = rng.uniform(&[3, 8, 8], 0.0, 1.0);
        let report = ImperceptibilityReport::between(&img, &img).unwrap();
        assert_eq!(report.noise_l2, 0.0);
        assert_eq!(report.noise_linf, 0.0);
        assert_eq!(report.psnr_db, f32::INFINITY);
        assert!((report.correlation - 1.0).abs() < 1e-6);
        assert!(report.is_imperceptible());
    }

    #[test]
    fn small_noise_high_psnr() {
        let mut rng = TensorRng::seed_from_u64(2);
        let img = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        let perturbed = img.add_scalar(0.005).clamp(0.0, 1.0);
        let report = ImperceptibilityReport::between(&img, &perturbed).unwrap();
        assert!(report.psnr_db > 40.0);
        assert!(report.correlation > 0.999);
        assert!(report.is_imperceptible());
    }

    #[test]
    fn large_noise_low_psnr() {
        let mut rng = TensorRng::seed_from_u64(3);
        let img = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let noise = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let report = ImperceptibilityReport::between(&img, &noise).unwrap();
        assert!(report.psnr_db < 15.0);
        assert!(!report.is_imperceptible());
    }

    #[test]
    fn psnr_matches_known_value() {
        // Uniform 0.1 offset: MSE = 0.01 → PSNR = 20 dB.
        let a = Tensor::full(&[10], 0.4);
        let b = Tensor::full(&[10], 0.5);
        let report = ImperceptibilityReport::between(&a, &b).unwrap();
        assert!((report.psnr_db - 20.0).abs() < 0.01);
        assert!((report.mean_abs - 0.1).abs() < 1e-6);
    }

    #[test]
    fn correlation_of_inverted_image_is_negative() {
        let mut rng = TensorRng::seed_from_u64(4);
        let img = rng.uniform(&[64], 0.0, 1.0);
        let inverted = img.map(|x| 1.0 - x);
        let report = ImperceptibilityReport::between(&img, &inverted).unwrap();
        assert!(report.correlation < -0.99);
    }

    #[test]
    fn constant_images() {
        let a = Tensor::full(&[8], 0.5);
        let report = ImperceptibilityReport::between(&a, &a).unwrap();
        assert_eq!(report.correlation, 1.0);
        let b = Tensor::full(&[8], 0.7);
        let report = ImperceptibilityReport::between(&a, &b).unwrap();
        assert_eq!(report.correlation, 0.0);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = Tensor::zeros(&[3, 4, 4]);
        let b = Tensor::zeros(&[3, 5, 5]);
        assert!(ImperceptibilityReport::between(&a, &b).is_err());
        let empty = Tensor::zeros(&[0]);
        assert!(ImperceptibilityReport::between(&empty, &empty).is_err());
    }
}
