//! The Jacobian-based Saliency Map Attack (Papernot et al.), cited in
//! the paper's §II-B attack taxonomy.
//!
//! JSMA perturbs a small number of *individual pixels* chosen by a
//! saliency map built from the forward Jacobian: a pixel is useful for
//! a targeted attack when increasing it raises the target logit
//! (`α = ∂Z_t/∂x_i > 0`) while lowering the combined other logits
//! (`β = Σ_{j≠t} ∂Z_j/∂x_i < 0`); its saliency is `α·|β|`.
//!
//! This implementation uses the classic greedy single-feature variant
//! with a perturbation step `θ` applied in both directions, and needs
//! only two backward passes per iteration (for `∂Z_t/∂x` and
//! `∂ΣZ/∂x`) instead of one per class.

use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The JSMA targeted attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jsma {
    theta: f32,
    max_pixel_fraction: f32,
}

impl Jsma {
    /// Creates JSMA with per-pixel step `theta` (towards either pixel
    /// bound) and a budget of at most `max_pixel_fraction` of the image
    /// pixels modified.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-positive
    /// `theta` or a fraction outside `(0, 1]`.
    pub fn new(theta: f32, max_pixel_fraction: f32) -> Result<Self> {
        if !theta.is_finite() || theta <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("JSMA theta must be positive, got {theta}"),
            });
        }
        if !max_pixel_fraction.is_finite()
            || !(0.0..=1.0).contains(&max_pixel_fraction)
            || max_pixel_fraction == 0.0
        {
            return Err(AttackError::InvalidParameter {
                reason: format!("JSMA pixel fraction must be in (0, 1], got {max_pixel_fraction}"),
            });
        }
        Ok(Jsma {
            theta,
            max_pixel_fraction,
        })
    }

    /// The original paper's working point: θ = 1 (saturate the pixel),
    /// at most 14.5 % of pixels (γ from the JSMA paper).
    pub fn standard() -> Self {
        Jsma {
            theta: 1.0,
            max_pixel_fraction: 0.145,
        }
    }

    /// The per-pixel step.
    pub fn theta(&self) -> f32 {
        self.theta
    }
}

impl Attack for Jsma {
    fn name(&self) -> String {
        format!(
            "JSMA(theta={}, gamma={})",
            self.theta, self.max_pixel_fraction
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        let target = match goal {
            AttackGoal::Targeted { class } => class,
            AttackGoal::Untargeted { .. } => {
                return Err(AttackError::InvalidParameter {
                    reason: "JSMA is a targeted attack; use AttackGoal::Targeted".into(),
                })
            }
        };
        surface.reset_queries();
        let mut current = x.clone();
        let budget = ((x.numel() as f32) * self.max_pixel_fraction).ceil() as usize;
        let mut modified = vec![false; x.numel()];
        let mut used = 0usize;

        for _ in 0..budget.max(1) {
            used += 1;
            let logits = surface.forward_train_logits(&current)?;
            let classes = logits.numel();
            if target >= classes {
                return Err(AttackError::InvalidInput {
                    reason: format!("class {target} out of range for {classes} classes"),
                });
            }
            if logits.argmax()? == target {
                break;
            }
            // ∂Z_target/∂x.
            let mut seed_t = Tensor::zeros(&[classes]);
            seed_t.set(&[target], 1.0)?;
            let grad_target = surface.backward_to_input(&current, &seed_t)?;
            // ∂(ΣZ)/∂x via a ones seed; β = that minus the target row.
            surface.forward_train_logits(&current)?;
            let grad_sum = surface.backward_to_input(&current, &Tensor::ones(&[classes]))?;
            let alpha = grad_target.as_slice();
            let cur = current.as_slice();

            // Greedy saliency: consider both increasing (+θ) and
            // decreasing (−θ) each still-unmodified, unsaturated pixel.
            let mut best_idx = usize::MAX;
            let mut best_score = 0.0f32;
            let mut best_dir = 0.0f32;
            for i in 0..current.numel() {
                if modified[i] {
                    continue;
                }
                let a = alpha[i];
                let b = grad_sum.as_slice()[i] - a;
                // Increase: helps when α>0 and β<0.
                if a > 0.0 && b < 0.0 && cur[i] < 1.0 {
                    let score = a * (-b);
                    if score > best_score {
                        best_score = score;
                        best_idx = i;
                        best_dir = 1.0;
                    }
                }
                // Decrease: helps when α<0 and β>0.
                if a < 0.0 && b > 0.0 && cur[i] > 0.0 {
                    let score = (-a) * b;
                    if score > best_score {
                        best_score = score;
                        best_idx = i;
                        best_dir = -1.0;
                    }
                }
            }
            if best_idx == usize::MAX {
                break; // saliency map exhausted
            }
            modified[best_idx] = true;
            let v = current.as_slice()[best_idx] + best_dir * self.theta;
            current.as_mut_slice()[best_idx] = v.clamp(0.0, 1.0);
        }
        finish(surface, x, current, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(Jsma::new(0.0, 0.1).is_err());
        assert!(Jsma::new(-1.0, 0.1).is_err());
        assert!(Jsma::new(0.5, 0.0).is_err());
        assert!(Jsma::new(0.5, 1.5).is_err());
        assert!(Jsma::new(0.5, 0.1).is_ok());
        assert_eq!(Jsma::standard().theta(), 1.0);
    }

    #[test]
    fn rejects_untargeted_goal() {
        let (mut surface, x) = setup(1);
        assert!(matches!(
            Jsma::standard().run(&mut surface, &x, AttackGoal::Untargeted { source: 0 }),
            Err(AttackError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn modifies_only_a_sparse_pixel_set() {
        let (mut surface, x) = setup(2);
        let jsma = Jsma::new(1.0, 0.05).unwrap();
        let adv = jsma
            .run(&mut surface, &x, AttackGoal::Targeted { class: 3 })
            .unwrap();
        let changed = adv
            .noise
            .as_slice()
            .iter()
            .filter(|&&v| v.abs() > 1e-6)
            .count();
        let budget = ((x.numel() as f32) * 0.05).ceil() as usize;
        assert!(
            changed <= budget,
            "{changed} pixels changed, budget {budget}"
        );
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn raises_target_logit() {
        let (mut surface, x) = setup(3);
        let target = 4usize;
        let before = surface.logits(&x).unwrap().as_slice()[target];
        let adv = Jsma::standard()
            .run(&mut surface, &x, AttackGoal::Targeted { class: target })
            .unwrap();
        let after = surface.logits(&adv.adversarial).unwrap().as_slice()[target];
        assert!(
            after > before || adv.success_on_surface,
            "target logit {before} → {after} without success"
        );
    }

    #[test]
    fn already_on_target_is_a_no_op() {
        let (mut surface, x) = setup(4);
        let (predicted, _) = surface.predict(&x).unwrap();
        let adv = Jsma::standard()
            .run(&mut surface, &x, AttackGoal::Targeted { class: predicted })
            .unwrap();
        assert_eq!(adv.noise_l2(), 0.0);
        assert!(adv.success_on_surface);
        assert_eq!(adv.iterations, 1);
    }

    #[test]
    fn named() {
        assert!(Jsma::standard().name().contains("JSMA"));
    }
}
