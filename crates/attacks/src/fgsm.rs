use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The fast gradient sign method (Goodfellow et al.).
///
/// A single step along the sign of the input gradient:
/// `x* = clip(x − ε · sign(∇ₓ J))`, where `J` is the surface objective
/// (towards the target class for targeted goals). One gradient query,
/// no iteration — the cheapest attack in the paper's library.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates FGSM with step size (and perturbation magnitude) `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-finite or
    /// non-positive `epsilon`.
    pub fn new(epsilon: f32) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("FGSM epsilon must be positive and finite, got {epsilon}"),
            });
        }
        Ok(Fgsm { epsilon })
    }

    /// The configured step size.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }
}

impl Attack for Fgsm {
    fn name(&self) -> String {
        format!("FGSM(eps={})", self.epsilon)
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        let (_, grad) = surface.loss_and_input_grad(x, goal)?;
        // Descend the objective: subtract the signed gradient.
        let step = grad.sign().scale(self.epsilon);
        let adversarial = x.sub(&step)?.clamp(0.0, 1.0);
        finish(surface, x, adversarial, goal, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(Fgsm::new(0.0).is_err());
        assert!(Fgsm::new(-0.1).is_err());
        assert!(Fgsm::new(f32::INFINITY).is_err());
        assert!(Fgsm::new(0.05).is_ok());
    }

    #[test]
    fn perturbation_bounded_by_epsilon() {
        let (mut surface, x) = setup(1);
        let fgsm = Fgsm::new(0.07).unwrap();
        let adv = fgsm
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(adv.noise_linf() <= 0.07 + 1e-5);
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert_eq!(adv.iterations, 1);
    }

    #[test]
    fn decreases_targeted_loss() {
        let (mut surface, x) = setup(2);
        let goal = AttackGoal::Targeted { class: 3 };
        let (before, _) = surface.loss_and_input_grad(&x, goal).unwrap();
        let adv = Fgsm::new(0.05)
            .unwrap()
            .run(&mut surface, &x, goal)
            .unwrap();
        let (after, _) = surface.loss_and_input_grad(&adv.adversarial, goal).unwrap();
        assert!(
            after < before,
            "targeted loss did not decrease: {before} → {after}"
        );
    }

    #[test]
    fn untargeted_increases_source_loss() {
        let (mut surface, x) = setup(3);
        let (class, _) = surface.predict(&x).unwrap();
        let before = {
            let (l, _) = surface
                .loss_and_input_grad(&x, AttackGoal::Targeted { class })
                .unwrap();
            l
        };
        let adv = Fgsm::new(0.08)
            .unwrap()
            .run(&mut surface, &x, AttackGoal::Untargeted { source: class })
            .unwrap();
        let after = {
            let (l, _) = surface
                .loss_and_input_grad(&adv.adversarial, AttackGoal::Targeted { class })
                .unwrap();
            l
        };
        assert!(
            after > before,
            "source-class loss did not increase: {before} → {after}"
        );
    }

    #[test]
    fn reports_queries_and_name() {
        let (mut surface, x) = setup(4);
        let fgsm = Fgsm::new(0.03).unwrap();
        assert_eq!(fgsm.name(), "FGSM(eps=0.03)");
        assert_eq!(fgsm.epsilon(), 0.03);
        let adv = fgsm
            .run(&mut surface, &x, AttackGoal::Targeted { class: 0 })
            .unwrap();
        // One gradient query + one predict.
        assert_eq!(adv.queries, 2);
    }

    #[test]
    fn noise_is_adversarial_minus_original() {
        let (mut surface, x) = setup(5);
        let adv = Fgsm::new(0.05)
            .unwrap()
            .run(&mut surface, &x, AttackGoal::Targeted { class: 1 })
            .unwrap();
        let rebuilt = x.add(&adv.noise).unwrap();
        for (a, b) in rebuilt.as_slice().iter().zip(adv.adversarial.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
