use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, PerturbationBudget, Result};

/// The basic iterative method (Kurakin et al.) — FGSM applied in many
/// small steps, with each iterate clipped back into an ε-ball around
/// the original image and into the valid pixel range.
///
/// The paper highlights BIM as the physically-motivated variant ("people
/// can only pass data through devices"), which is why its finer steps
/// interact differently with smoothing filters than one-shot FGSM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bim {
    epsilon: f32,
    alpha: f32,
    iterations: usize,
}

impl Bim {
    /// Creates BIM with ε-ball radius `epsilon`, per-step size `alpha`
    /// and an iteration cap.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-positive or
    /// non-finite `epsilon`/`alpha`, `alpha > epsilon`, or zero
    /// iterations.
    pub fn new(epsilon: f32, alpha: f32, iterations: usize) -> Result<Self> {
        if !epsilon.is_finite() || epsilon <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("BIM needs positive finite epsilon/alpha, got {epsilon}/{alpha}"),
            });
        }
        if alpha > epsilon {
            return Err(AttackError::InvalidParameter {
                reason: format!("BIM step alpha {alpha} exceeds ball radius epsilon {epsilon}"),
            });
        }
        if iterations == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "BIM needs at least one iteration".into(),
            });
        }
        Ok(Bim {
            epsilon,
            alpha,
            iterations,
        })
    }

    /// The Kurakin et al. default: `alpha = epsilon / iterations` with a
    /// small slack so the ball boundary is reachable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Bim::new`].
    pub fn with_auto_step(epsilon: f32, iterations: usize) -> Result<Self> {
        if iterations == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "BIM needs at least one iteration".into(),
            });
        }
        Bim::new(
            epsilon,
            (epsilon * 1.25 / iterations as f32).min(epsilon),
            iterations,
        )
    }

    /// The ε-ball radius.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// The per-iteration step size.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// The iteration cap.
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Attack for Bim {
    fn name(&self) -> String {
        format!(
            "BIM(eps={}, alpha={}, iters={})",
            self.epsilon, self.alpha, self.iterations
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        let budget = PerturbationBudget::new(self.epsilon)?;
        let mut current = x.clone();
        let mut used = 0usize;
        for _ in 0..self.iterations {
            used += 1;
            let (_, grad) = surface.loss_and_input_grad(&current, goal)?;
            let step = grad.sign().scale(self.alpha);
            current = budget.project(x, &current.sub(&step)?)?;
            // Early exit once the goal is met on the surface.
            let (predicted, _) = surface.predict(&current)?;
            if goal.is_met(predicted) {
                break;
            }
        }
        finish(surface, x, current, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(Bim::new(0.0, 0.01, 5).is_err());
        assert!(Bim::new(0.1, 0.0, 5).is_err());
        assert!(Bim::new(0.1, 0.2, 5).is_err()); // alpha > epsilon
        assert!(Bim::new(0.1, 0.02, 0).is_err());
        assert!(Bim::new(0.1, 0.02, 5).is_ok());
        assert!(Bim::with_auto_step(0.1, 0).is_err());
        let auto = Bim::with_auto_step(0.1, 10).unwrap();
        assert!(auto.alpha() <= auto.epsilon());
    }

    #[test]
    fn stays_in_epsilon_ball() {
        let (mut surface, x) = setup(1);
        let bim = Bim::new(0.06, 0.01, 8).unwrap();
        let adv = bim
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        assert!(adv.noise_linf() <= 0.06 + 1e-5);
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert!(adv.iterations >= 1 && adv.iterations <= 8);
    }

    #[test]
    fn succeeds_at_least_as_often_as_fgsm() {
        // With equal ε, iterated refinement with early exit should meet
        // the targeted goal at least as often as the single FGSM step
        // across a sweep of targets. (A per-example loss comparison is
        // not sound: BIM stops as soon as the goal is met.)
        use crate::Fgsm;
        let (mut surface, x) = setup(2);
        let eps = 0.08;
        let mut fgsm_wins = 0usize;
        let mut bim_wins = 0usize;
        for class in 0..6 {
            let goal = AttackGoal::Targeted { class };
            if Fgsm::new(eps)
                .unwrap()
                .run(&mut surface, &x, goal)
                .unwrap()
                .success_on_surface
            {
                fgsm_wins += 1;
            }
            if Bim::new(eps, 0.01, 20)
                .unwrap()
                .run(&mut surface, &x, goal)
                .unwrap()
                .success_on_surface
            {
                bim_wins += 1;
            }
        }
        assert!(
            bim_wins >= fgsm_wins,
            "BIM {bim_wins} successes vs FGSM {fgsm_wins}"
        );
    }

    #[test]
    fn early_exit_on_success() {
        let (mut surface, x) = setup(3);
        let (class, _) = surface.predict(&x).unwrap();
        // Targeting the already-predicted class succeeds immediately.
        let bim = Bim::new(0.05, 0.01, 50).unwrap();
        let adv = bim
            .run(&mut surface, &x, AttackGoal::Targeted { class })
            .unwrap();
        assert!(adv.success_on_surface);
        assert_eq!(adv.iterations, 1);
    }

    #[test]
    fn monotone_loss_over_iterations() {
        let (mut surface, x) = setup(4);
        let goal = AttackGoal::Targeted { class: 1 };
        let mut losses = Vec::new();
        for iters in [1usize, 5, 15] {
            let adv = Bim::new(0.08, 0.01, iters)
                .unwrap()
                .run(&mut surface, &x, goal)
                .unwrap();
            let (l, _) = surface.loss_and_input_grad(&adv.adversarial, goal).unwrap();
            losses.push(l);
        }
        assert!(losses[2] <= losses[0] + 1e-4, "losses {losses:?}");
    }

    #[test]
    fn name_includes_parameters() {
        let bim = Bim::new(0.06, 0.01, 8).unwrap();
        assert!(bim.name().contains("0.06"));
        assert!(bim.name().contains('8'));
        assert_eq!(bim.iterations(), 8);
    }
}
