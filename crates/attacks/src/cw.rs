//! The Carlini & Wagner L2 attack ("CWI" in the paper's Figs. 3 and 8
//! attack-library boxes).
//!
//! C&W reparameterizes the adversarial image through `tanh` so the box
//! constraint is satisfied by construction, and minimizes
//!
//! ```text
//! ‖x(w) − x‖₂² + c · f(x(w)),   x(w) = ½(tanh(w) + 1)
//! f(x) = max(max_{i≠t} Z(x)ᵢ − Z(x)_t, −κ)
//! ```
//!
//! where `Z` are the logits, `t` the target class and `κ` a confidence
//! margin. The objective is optimized with plain Adam on `w`, as in the
//! original paper.

use fademl_tensor::Tensor;

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The Carlini & Wagner L2 attack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarliniWagner {
    c: f32,
    kappa: f32,
    learning_rate: f32,
    iterations: usize,
}

impl CarliniWagner {
    /// Creates the attack with trade-off constant `c`, confidence margin
    /// `kappa`, and an Adam step budget.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for non-positive `c`,
    /// negative `kappa`, non-positive learning rate, or zero iterations.
    pub fn new(c: f32, kappa: f32, learning_rate: f32, iterations: usize) -> Result<Self> {
        if !c.is_finite() || c <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("C&W c must be positive, got {c}"),
            });
        }
        if !kappa.is_finite() || kappa < 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("C&W kappa must be non-negative, got {kappa}"),
            });
        }
        if !learning_rate.is_finite() || learning_rate <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("C&W learning rate must be positive, got {learning_rate}"),
            });
        }
        if iterations == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "C&W needs at least one iteration".into(),
            });
        }
        Ok(CarliniWagner {
            c,
            kappa,
            learning_rate,
            iterations,
        })
    }

    /// Sensible defaults: `c = 1`, `κ = 0`, Adam lr `5e-2`, 60 steps.
    pub fn standard() -> Self {
        CarliniWagner {
            c: 1.0,
            kappa: 0.0,
            learning_rate: 5e-2,
            iterations: 60,
        }
    }

    /// The trade-off constant.
    pub fn c(&self) -> f32 {
        self.c
    }

    /// The confidence margin κ.
    pub fn kappa(&self) -> f32 {
        self.kappa
    }
}

/// atanh with clamping away from ±1 for numerical safety.
fn atanh_stable(x: f32) -> f32 {
    let x = x.clamp(-0.999_999, 0.999_999);
    0.5 * ((1.0 + x) / (1.0 - x)).ln()
}

/// The C&W margin loss on logits and its gradient w.r.t. the logits.
///
/// For [`AttackGoal::Targeted`], `f = max(max_{i≠t} Zᵢ − Z_t, −κ)`; for
/// [`AttackGoal::Untargeted`], `f = max(Z_s − max_{i≠s} Zᵢ, −κ)`.
fn margin_loss(logits: &Tensor, goal: AttackGoal, kappa: f32) -> Result<(f32, Tensor)> {
    let z = logits.as_slice();
    let classes = z.len();
    let (anchor, want_anchor_small) = match goal {
        AttackGoal::Targeted { class } => (class, false),
        AttackGoal::Untargeted { source } => (source, true),
    };
    if anchor >= classes {
        return Err(AttackError::InvalidInput {
            reason: format!("class {anchor} out of range for {classes} classes"),
        });
    }
    // The strongest competitor to the anchor class.
    let mut best_other = usize::MAX;
    let mut best_val = f32::NEG_INFINITY;
    for (i, &v) in z.iter().enumerate() {
        if i != anchor && v > best_val {
            best_val = v;
            best_other = i;
        }
    }
    let mut grad = Tensor::zeros(&[classes]);
    let raw = if want_anchor_small {
        z[anchor] - best_val
    } else {
        best_val - z[anchor]
    };
    let value = raw.max(-kappa);
    if raw > -kappa {
        // Active branch: gradient flows to the two competing logits.
        let sign = if want_anchor_small { 1.0 } else { -1.0 };
        grad.set(&[anchor], sign)?;
        grad.set(&[best_other], -sign)?;
    }
    Ok((value, grad))
}

impl Attack for CarliniWagner {
    fn name(&self) -> String {
        format!(
            "C&W(c={}, kappa={}, iters={})",
            self.c, self.kappa, self.iterations
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        // w initialized so that x(w) == x.
        let mut w = x.map(|v| atanh_stable(2.0 * v - 1.0));
        // Adam state.
        let mut m = Tensor::zeros_like(&w);
        let mut v = Tensor::zeros_like(&w);
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);

        let mut best_image = x.clone();
        let mut best_l2 = f32::INFINITY;
        let mut best_found = false;
        let mut used = 0usize;

        for t in 1..=self.iterations {
            used = t;
            let candidate = w.map(|wi| 0.5 * (wi.tanh() + 1.0));
            // Margin loss and its gradient through logits → input.
            let (margin, margin_val, grad_x) =
                surface.margin_loss_and_grad(&candidate, goal, self.kappa)?;
            let _ = margin;

            // Record the best successful (margin at the floor) example by
            // noise L2.
            let noise_l2 = candidate.sub(x)?.norm_l2();
            let succeeded = margin_val <= 0.0;
            if succeeded && noise_l2 < best_l2 {
                best_l2 = noise_l2;
                best_image = candidate.clone();
                best_found = true;
            }

            // Total gradient in x-space: 2(x(w) − x) + c·∂f/∂x.
            let mut gx = candidate.sub(x)?.scale(2.0);
            gx.add_scaled_inplace(&grad_x, self.c)?;
            // Chain into w-space: dx/dw = ½(1 − tanh²(w)).
            let dxdw = w.map(|wi| 0.5 * (1.0 - wi.tanh() * wi.tanh()));
            let gw = gx.mul(&dxdw)?;

            // Adam update on w.
            let bc1 = 1.0 - beta1.powi(t as i32);
            let bc2 = 1.0 - beta2.powi(t as i32);
            for i in 0..w.numel() {
                let g = gw.as_slice()[i];
                let mi = beta1 * m.as_slice()[i] + (1.0 - beta1) * g;
                let vi = beta2 * v.as_slice()[i] + (1.0 - beta2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                w.as_mut_slice()[i] -= self.learning_rate * (mi / bc1) / ((vi / bc2).sqrt() + eps);
            }
        }
        let adversarial = if best_found {
            best_image
        } else {
            w.map(|wi| 0.5 * (wi.tanh() + 1.0))
        };
        finish(surface, x, adversarial, goal, used)
    }
}

impl AttackSurface {
    /// The C&W margin loss evaluated through the surface (filter
    /// included when present), returning `(logits, margin_value,
    /// ∂margin/∂input)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AttackSurface::loss_and_input_grad`].
    pub fn margin_loss_and_grad(
        &mut self,
        x: &Tensor,
        goal: AttackGoal,
        kappa: f32,
    ) -> Result<(Tensor, f32, Tensor)> {
        let logits = self.forward_train_logits(x)?;
        let (value, grad_logits) = margin_loss(&logits, goal, kappa)?;
        let grad_input = self.backward_to_input(x, &grad_logits)?;
        Ok((logits, value, grad_input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::{Shape, TensorRng};

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.1, 0.9);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(CarliniWagner::new(0.0, 0.0, 0.01, 10).is_err());
        assert!(CarliniWagner::new(1.0, -1.0, 0.01, 10).is_err());
        assert!(CarliniWagner::new(1.0, 0.0, 0.0, 10).is_err());
        assert!(CarliniWagner::new(1.0, 0.0, 0.01, 0).is_err());
        assert!(CarliniWagner::new(1.0, 0.0, 0.01, 10).is_ok());
        let std = CarliniWagner::standard();
        assert_eq!(std.c(), 1.0);
        assert_eq!(std.kappa(), 0.0);
    }

    #[test]
    fn margin_loss_semantics() {
        let logits = Tensor::from_vec(vec![3.0, 1.0, 0.5], Shape::new(vec![3])).unwrap();
        // Targeted at class 0 (already winning by 2): raw margin −2 is
        // floored at −κ, so with κ = 0.5 the value is −0.5 and the
        // gradient is inactive.
        let (v, g) = margin_loss(&logits, AttackGoal::Targeted { class: 0 }, 0.5).unwrap();
        assert_eq!(v, -0.5);
        assert_eq!(g.norm_l2(), 0.0);
        // Targeted at class 1 (losing): margin = 3 − 1 = 2, active.
        let (v, g) = margin_loss(&logits, AttackGoal::Targeted { class: 1 }, 0.0).unwrap();
        assert_eq!(v, 2.0);
        assert_eq!(g.get(&[1]).unwrap(), -1.0);
        assert_eq!(g.get(&[0]).unwrap(), 1.0);
        // Untargeted from class 0 (winning): margin = 3 − 1 = 2.
        let (v, g) = margin_loss(&logits, AttackGoal::Untargeted { source: 0 }, 0.0).unwrap();
        assert_eq!(v, 2.0);
        assert_eq!(g.get(&[0]).unwrap(), 1.0);
        assert_eq!(g.get(&[1]).unwrap(), -1.0);
        // Out-of-range class.
        assert!(margin_loss(&logits, AttackGoal::Targeted { class: 9 }, 0.0).is_err());
    }

    #[test]
    fn atanh_round_trips() {
        for x in [0.01f32, 0.3, 0.5, 0.77, 0.99] {
            let w = atanh_stable(2.0 * x - 1.0);
            let back = 0.5 * (w.tanh() + 1.0);
            assert!((back - x).abs() < 1e-4, "{x} → {back}");
        }
        // Extremes stay finite.
        assert!(atanh_stable(1.0).is_finite());
        assert!(atanh_stable(-1.0).is_finite());
    }

    #[test]
    fn produces_valid_image_without_clipping() {
        let (mut surface, x) = setup(1);
        let cw = CarliniWagner::new(2.0, 0.0, 0.05, 30).unwrap();
        let adv = cw
            .run(&mut surface, &x, AttackGoal::Targeted { class: 2 })
            .unwrap();
        // The tanh parameterization keeps pixels strictly inside [0, 1].
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
        assert!(!adv.adversarial.has_non_finite());
    }

    #[test]
    fn reduces_margin_towards_target() {
        let (mut surface, x) = setup(2);
        // Target the class the model currently likes LEAST so there is
        // real work to do, and compare raw (unfloored) margins.
        let logits = surface.logits(&x).unwrap();
        let target = logits
            .as_slice()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let goal = AttackGoal::Targeted { class: target };
        let raw_margin = |surface: &mut AttackSurface, img: &Tensor| -> f32 {
            let z = surface.logits(img).unwrap();
            let zt = z.as_slice()[target];
            let best_other = z
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, &v)| v)
                .fold(f32::NEG_INFINITY, f32::max);
            best_other - zt
        };
        let before = raw_margin(&mut surface, &x);
        let cw = CarliniWagner::new(5.0, 0.0, 0.05, 40).unwrap();
        let adv = cw.run(&mut surface, &x, goal).unwrap();
        let after = raw_margin(&mut surface, &adv.adversarial);
        assert!(after < before, "margin {before} → {after}");
    }

    #[test]
    fn keeps_noise_small_when_it_succeeds() {
        // When C&W reaches the target, it reports the smallest-noise
        // success seen, which should be subtle compared to FGSM at the
        // same success status.
        let (mut surface, x) = setup(3);
        // Target the class the model already nearly predicts to make
        // success easy, then check the noise stays tiny.
        let (current, _) = surface.predict(&x).unwrap();
        let cw = CarliniWagner::standard();
        let adv = cw
            .run(&mut surface, &x, AttackGoal::Targeted { class: current })
            .unwrap();
        assert!(adv.success_on_surface);
        assert!(adv.noise_l2() < 1.0, "noise L2 {}", adv.noise_l2());
    }

    #[test]
    fn named() {
        let cw = CarliniWagner::new(0.5, 0.1, 0.01, 25).unwrap();
        assert!(cw.name().contains("0.5"));
        assert!(cw.name().contains("25"));
    }
}
