//! Adversarial ML attacks for the FAdeML reproduction.
//!
//! The paper studies three classical gradient attacks and contributes a
//! fourth, filter-aware one:
//!
//! - [`Fgsm`] — the fast gradient sign method (one signed-gradient step).
//! - [`Bim`] — the basic iterative method (small FGSM steps, clipped to
//!   an ε-ball).
//! - [`LbfgsAttack`] — Szegedy et al.'s box-constrained optimization
//!   attack, minimizing `c·‖η‖² + loss(f(x + η))` with a from-scratch
//!   L-BFGS optimizer ([`lbfgs::Lbfgs`], two-loop recursion + backtracking
//!   line search).
//! - [`Fademl`] — the paper's contribution: any of the above, run against
//!   a *filter-aware* [`AttackSurface`] that chains the pre-processing
//!   filter's vector-Jacobian product into the input gradient, with an
//!   outer budget-escalation loop (paper §IV steps 1-6).
//!
//! The central abstraction is the [`AttackSurface`]: the differentiable
//! composition the attacker can see. Under the paper's Threat Model I
//! the surface is the bare DNN; FAdeML's insight is to make the surface
//! `filter ∘ DNN`.
//!
//! # Example
//!
//! ```
//! use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fgsm};
//! use fademl_nn::vgg::VggConfig;
//! use fademl_tensor::TensorRng;
//!
//! # fn main() -> Result<(), fademl_attacks::AttackError> {
//! let mut rng = TensorRng::seed_from_u64(0);
//! let model = VggConfig::tiny(3, 16, 4).build(&mut rng)?;
//! let mut surface = AttackSurface::new(model);
//! let x = rng.uniform(&[3, 16, 16], 0.0, 1.0);
//! let fgsm = Fgsm::new(0.05)?;
//! let adv = fgsm.run(&mut surface, &x, AttackGoal::Targeted { class: 2 })?;
//! assert_eq!(adv.adversarial.dims(), x.dims());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod attack;
mod bim;
mod cw;
mod deepfool;
mod eot;
mod error;
mod fademl;
mod fgsm;
mod imperceptibility;
mod jsma;
pub mod lbfgs;
mod one_pixel;
mod perturbation;
mod surface;
mod universal;
mod zoo;

pub use attack::{AdversarialExample, Attack, AttackGoal};
pub use bim::Bim;
pub use cw::CarliniWagner;
pub use deepfool::DeepFool;
pub use eot::EotPgd;
pub use error::AttackError;
pub use fademl::Fademl;
pub use fgsm::Fgsm;
pub use imperceptibility::ImperceptibilityReport;
pub use jsma::Jsma;
pub use lbfgs::LbfgsAttack;
pub use one_pixel::OnePixel;
pub use perturbation::PerturbationBudget;
pub use surface::AttackSurface;
pub use universal::{UniversalOutcome, UniversalPerturbation};
pub use zoo::Zoo;

/// Convenient result alias for fallible attack operations.
pub type Result<T> = std::result::Result<T, AttackError>;
