use fademl_filters::Filter;
use fademl_nn::{CrossEntropyLoss, Loss, Sequential};
use fademl_tensor::Tensor;

use crate::attack::AttackGoal;
use crate::{AttackError, Result};

/// The differentiable composition the attacker optimizes against.
///
/// Under the paper's Threat Model I the surface is the bare DNN
/// ([`AttackSurface::new`]); the FAdeML attack instead optimizes against
/// `filter ∘ DNN` ([`AttackSurface::with_filter`]), chaining the
/// filter's vector-Jacobian product into the input gradient.
///
/// The surface counts every gradient/forward query so experiments can
/// report attacker cost.
#[derive(Debug, Clone)]
pub struct AttackSurface {
    model: Sequential,
    filter: Option<Box<dyn Filter>>,
    loss: CrossEntropyLoss,
    queries: u64,
}

impl AttackSurface {
    /// A surface over the bare model (Threat Model I view).
    pub fn new(model: Sequential) -> Self {
        AttackSurface {
            model,
            filter: None,
            loss: CrossEntropyLoss::new(),
            queries: 0,
        }
    }

    /// A filter-aware surface: the attacker models `filter ∘ DNN`.
    pub fn with_filter(model: Sequential, filter: Box<dyn Filter>) -> Self {
        AttackSurface {
            model,
            filter: Some(filter),
            loss: CrossEntropyLoss::new(),
            queries: 0,
        }
    }

    /// The pre-processing filter the surface models, if any.
    pub fn filter(&self) -> Option<&dyn Filter> {
        self.filter.as_deref()
    }

    /// The victim model.
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Number of forward/gradient queries issued so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// Resets the query counter.
    pub fn reset_queries(&mut self) {
        self.queries = 0;
    }

    fn check_image(x: &Tensor) -> Result<()> {
        if x.rank() != 3 {
            return Err(AttackError::InvalidInput {
                reason: format!("expected a [C, H, W] image, got shape {:?}", x.dims()),
            });
        }
        Ok(())
    }

    /// Class logits for a single `[C, H, W]` image, through the filter
    /// if the surface has one.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidInput`] for non-rank-3 input plus
    /// any filter/model error.
    pub fn logits(&mut self, x: &Tensor) -> Result<Tensor> {
        Self::check_image(x)?;
        self.queries += 1;
        let input = match &self.filter {
            Some(f) => f.apply(x)?,
            None => x.clone(),
        };
        let logits = self.model.forward(&input.unsqueeze_batch())?;
        Ok(logits.row(0)?)
    }

    /// Softmax probabilities for a single image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AttackSurface::logits`].
    pub fn probabilities(&mut self, x: &Tensor) -> Result<Tensor> {
        let logits = self.logits(x)?;
        Ok(logits
            .reshape(&[1, logits.numel()])?
            .softmax_rows()?
            .row(0)?)
    }

    /// Predicted `(class, confidence)` for a single image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`AttackSurface::logits`].
    pub fn predict(&mut self, x: &Tensor) -> Result<(usize, f32)> {
        let probs = self.probabilities(x)?;
        let class = probs.argmax()?;
        Ok((class, probs.as_slice()[class]))
    }

    /// Forward pass for a single image that *caches* activations so a
    /// following [`AttackSurface::backward_to_input`] can run. Returns
    /// the `[classes]` logits (through the filter when present).
    ///
    /// Building block for custom attack objectives (the built-in
    /// cross-entropy path is [`AttackSurface::loss_and_input_grad`]).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidInput`] for non-rank-3 input plus
    /// any filter/model error.
    pub fn forward_train_logits(&mut self, x: &Tensor) -> Result<Tensor> {
        Self::check_image(x)?;
        self.queries += 1;
        let filtered = match &self.filter {
            Some(f) => f.apply(x)?,
            None => x.clone(),
        };
        let logits = self.model.forward_train(&filtered.unsqueeze_batch())?;
        Ok(logits.row(0)?)
    }

    /// Backward pass from a `[classes]` logit gradient down to the raw
    /// input, chaining through the filter when present. Must follow a
    /// [`AttackSurface::forward_train_logits`] call on the same `x`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grad_logits` does not match the class
    /// count, or a cache error if no training forward preceded the call.
    pub fn backward_to_input(&mut self, x: &Tensor, grad_logits: &Tensor) -> Result<Tensor> {
        let grad_batch = grad_logits.reshape(&[1, grad_logits.numel()])?;
        self.model.zero_grad();
        let grad_filtered = self.model.backward(&grad_batch)?.index_batch(0)?;
        Ok(match &self.filter {
            Some(f) => f.backward(x, &grad_filtered)?,
            None => grad_filtered,
        })
    }

    /// The scalar attack objective and its gradient w.r.t. the *raw*
    /// input `x` (i.e. chained through the filter when present).
    ///
    /// The objective is framed so the attack always *descends*:
    ///
    /// - [`AttackGoal::Targeted`]: cross-entropy towards the target class.
    /// - [`AttackGoal::Untargeted`]: negative cross-entropy on the source
    ///   class (descending pushes the prediction away from it).
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidInput`] for non-rank-3 input or an
    /// out-of-range class, plus any filter/model error.
    pub fn loss_and_input_grad(&mut self, x: &Tensor, goal: AttackGoal) -> Result<(f32, Tensor)> {
        Self::check_image(x)?;
        self.queries += 1;
        let filtered = match &self.filter {
            Some(f) => f.apply(x)?,
            None => x.clone(),
        };
        let batch = filtered.unsqueeze_batch();
        let logits = self.model.forward_train(&batch)?;
        let classes = logits.dims()[1];
        let (label, sign) = match goal {
            AttackGoal::Targeted { class } => (class, 1.0f32),
            AttackGoal::Untargeted { source } => (source, -1.0f32),
        };
        if label >= classes {
            return Err(AttackError::InvalidInput {
                reason: format!("class {label} out of range for {classes} classes"),
            });
        }
        let lv = self.loss.compute(&logits, &[label])?;
        self.model.zero_grad();
        let grad_batch = self.model.backward(&lv.grad.scale(sign))?;
        let grad_filtered = grad_batch.index_batch(0)?;
        let grad_input = match &self.filter {
            Some(f) => f.backward(x, &grad_filtered)?,
            None => grad_filtered,
        };
        Ok((sign * lv.loss, grad_input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_filters::Lap;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn setup() -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 4).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn logits_and_probabilities() {
        let (mut surface, x) = setup();
        let logits = surface.logits(&x).unwrap();
        assert_eq!(logits.dims(), &[4]);
        let probs = surface.probabilities(&x).unwrap();
        let sum: f32 = probs.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        let (class, conf) = surface.predict(&x).unwrap();
        assert!(class < 4);
        assert!(conf > 0.0 && conf <= 1.0);
    }

    #[test]
    fn rejects_batched_input() {
        let (mut surface, _) = setup();
        assert!(matches!(
            surface.logits(&Tensor::zeros(&[1, 3, 16, 16])),
            Err(AttackError::InvalidInput { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_class() {
        let (mut surface, x) = setup();
        assert!(surface
            .loss_and_input_grad(&x, AttackGoal::Targeted { class: 99 })
            .is_err());
    }

    #[test]
    fn targeted_gradient_matches_finite_difference() {
        let (mut surface, x) = setup();
        let goal = AttackGoal::Targeted { class: 1 };
        let (_, grad) = surface.loss_and_input_grad(&x, goal).unwrap();
        let eps = 1e-2f32;
        for idx in [0usize, 100, 400, 700] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = surface.loss_and_input_grad(&plus, goal).unwrap();
            let (lm, _) = surface.loss_and_input_grad(&minus, goal).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn filtered_gradient_matches_finite_difference() {
        let mut rng = TensorRng::seed_from_u64(2);
        let model = VggConfig::tiny(3, 16, 4).build(&mut rng).unwrap();
        let mut surface = AttackSurface::with_filter(model, Box::new(Lap::new(8).unwrap()));
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        let goal = AttackGoal::Targeted { class: 2 };
        let (_, grad) = surface.loss_and_input_grad(&x, goal).unwrap();
        let eps = 1e-2f32;
        for idx in [50usize, 300, 600] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = surface.loss_and_input_grad(&plus, goal).unwrap();
            let (lm, _) = surface.loss_and_input_grad(&minus, goal).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn untargeted_objective_is_negated() {
        let (mut surface, x) = setup();
        let (class, _) = surface.predict(&x).unwrap();
        let (targeted_loss, tg) = surface
            .loss_and_input_grad(&x, AttackGoal::Targeted { class })
            .unwrap();
        let (untargeted_loss, ug) = surface
            .loss_and_input_grad(&x, AttackGoal::Untargeted { source: class })
            .unwrap();
        assert!((targeted_loss + untargeted_loss).abs() < 1e-5);
        for (a, b) in tg.as_slice().iter().zip(ug.as_slice()) {
            assert!((a + b).abs() < 1e-5);
        }
    }

    #[test]
    fn query_counter_increments() {
        let (mut surface, x) = setup();
        assert_eq!(surface.queries(), 0);
        surface.logits(&x).unwrap();
        surface
            .loss_and_input_grad(&x, AttackGoal::Targeted { class: 0 })
            .unwrap();
        assert_eq!(surface.queries(), 2);
        surface.reset_queries();
        assert_eq!(surface.queries(), 0);
    }

    #[test]
    fn filter_accessor() {
        let (surface, _) = setup();
        assert!(surface.filter().is_none());
        let mut rng = TensorRng::seed_from_u64(3);
        let model = VggConfig::tiny(3, 16, 4).build(&mut rng).unwrap();
        let filtered = AttackSurface::with_filter(model, Box::new(Lap::new(4).unwrap()));
        assert_eq!(filtered.filter().unwrap().name(), "LAP(4)");
    }
}
