use fademl_tensor::Tensor;

use crate::{AttackSurface, Result};

/// What the attacker wants the classifier to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackGoal {
    /// Force classification as a specific class (the paper's five
    /// misclassification scenarios are all targeted).
    Targeted {
        /// The desired output class.
        class: usize,
    },
    /// Push the prediction away from the true class, any winner accepted.
    Untargeted {
        /// The image's true class.
        source: usize,
    },
}

impl AttackGoal {
    /// `true` if `predicted` satisfies the goal.
    pub fn is_met(&self, predicted: usize) -> bool {
        match *self {
            AttackGoal::Targeted { class } => predicted == class,
            AttackGoal::Untargeted { source } => predicted != source,
        }
    }
}

/// The output of an attack run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversarialExample {
    /// The adversarial image (same shape as the input, clamped to `[0, 1]`).
    pub adversarial: Tensor,
    /// The additive noise `adversarial − original`.
    pub noise: Tensor,
    /// Whether the goal was met *on the attack surface* (Threat Model I
    /// evaluation; the experiment pipeline re-evaluates under II/III).
    pub success_on_surface: bool,
    /// The surface's predicted class for the adversarial image.
    pub predicted: usize,
    /// The surface's confidence in that prediction.
    pub confidence: f32,
    /// Optimization iterations used.
    pub iterations: usize,
    /// Gradient/forward queries issued to the surface.
    pub queries: u64,
}

impl AdversarialExample {
    /// L∞ magnitude of the perturbation.
    pub fn noise_linf(&self) -> f32 {
        self.noise.norm_linf()
    }

    /// L2 magnitude of the perturbation.
    pub fn noise_l2(&self) -> f32 {
        self.noise.norm_l2()
    }
}

/// An adversarial-example generator.
///
/// Attacks are pure strategies: all victim/filter state lives in the
/// [`AttackSurface`], so the same attack object can be reused across
/// surfaces (this is exactly how the FAdeML wrapper upgrades a classic
/// attack into a filter-aware one).
pub trait Attack: std::fmt::Debug + Send + Sync {
    /// Short display name, e.g. `"FGSM(eps=0.06)"`.
    fn name(&self) -> String;

    /// Crafts an adversarial example for `x` (a `[C, H, W]` image in
    /// `[0, 1]`) against `surface`.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError`](crate::AttackError) for malformed inputs
    /// or underlying model/filter failures.
    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample>;
}

/// Builds the standard [`AdversarialExample`] bookkeeping from a final
/// adversarial image.
pub(crate) fn finish(
    surface: &mut AttackSurface,
    original: &Tensor,
    adversarial: Tensor,
    goal: AttackGoal,
    iterations: usize,
) -> Result<AdversarialExample> {
    let (predicted, confidence) = surface.predict(&adversarial)?;
    let noise = adversarial.sub(original)?;
    Ok(AdversarialExample {
        success_on_surface: goal.is_met(predicted),
        predicted,
        confidence,
        iterations,
        queries: surface.queries(),
        adversarial,
        noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_satisfaction() {
        let t = AttackGoal::Targeted { class: 3 };
        assert!(t.is_met(3));
        assert!(!t.is_met(2));
        let u = AttackGoal::Untargeted { source: 3 };
        assert!(u.is_met(2));
        assert!(!u.is_met(3));
    }

    #[test]
    fn example_norms() {
        let ex = AdversarialExample {
            adversarial: Tensor::zeros(&[2]),
            noise: Tensor::from_vec(vec![0.3, -0.4], [2].into()).unwrap(),
            success_on_surface: true,
            predicted: 0,
            confidence: 0.9,
            iterations: 1,
            queries: 2,
        };
        assert!((ex.noise_linf() - 0.4).abs() < 1e-6);
        assert!((ex.noise_l2() - 0.5).abs() < 1e-6);
    }
}
