//! The ZOO attack (Chen et al.) — *zeroth-order optimization*, cited in
//! the paper's §II-B: a black-box attack that estimates gradients with
//! symmetric finite differences on randomly chosen coordinates and
//! feeds them to an Adam-style coordinate update. No model gradients
//! are ever requested.

use fademl_tensor::{Tensor, TensorRng};

use crate::attack::{finish, AdversarialExample, Attack, AttackGoal};
use crate::{AttackError, AttackSurface, Result};

/// The ZOO black-box attack (coordinate-wise stochastic variant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zoo {
    iterations: usize,
    coords_per_step: usize,
    fd_epsilon: f32,
    learning_rate: f32,
    seed: u64,
}

impl Zoo {
    /// Creates ZOO with an iteration cap, the number of random
    /// coordinates estimated per step, the finite-difference probe size
    /// and the Adam learning rate.
    ///
    /// # Errors
    ///
    /// Returns [`AttackError::InvalidParameter`] for zero iterations or
    /// coordinates, or non-positive probe/learning-rate values.
    pub fn new(
        iterations: usize,
        coords_per_step: usize,
        fd_epsilon: f32,
        learning_rate: f32,
        seed: u64,
    ) -> Result<Self> {
        if iterations == 0 || coords_per_step == 0 {
            return Err(AttackError::InvalidParameter {
                reason: "ZOO needs positive iterations and coordinates per step".into(),
            });
        }
        if !fd_epsilon.is_finite() || fd_epsilon <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("ZOO probe size must be positive, got {fd_epsilon}"),
            });
        }
        if !learning_rate.is_finite() || learning_rate <= 0.0 {
            return Err(AttackError::InvalidParameter {
                reason: format!("ZOO learning rate must be positive, got {learning_rate}"),
            });
        }
        Ok(Zoo {
            iterations,
            coords_per_step,
            fd_epsilon,
            learning_rate,
            seed,
        })
    }

    /// A working point for small images: 100 iterations × 32 coordinates.
    pub fn standard() -> Self {
        Zoo {
            iterations: 100,
            coords_per_step: 32,
            fd_epsilon: 1e-2,
            learning_rate: 2e-2,
            seed: 0x200,
        }
    }

    /// The black-box objective: cross-entropy of the goal over the
    /// surface's probabilities (no gradient access).
    fn objective(surface: &mut AttackSurface, x: &Tensor, goal: AttackGoal) -> Result<f32> {
        let probs = surface.probabilities(x)?;
        let classes = probs.numel();
        Ok(match goal {
            AttackGoal::Targeted { class } => {
                if class >= classes {
                    return Err(AttackError::InvalidInput {
                        reason: format!("class {class} out of range for {classes} classes"),
                    });
                }
                -probs.as_slice()[class].max(1e-12).ln()
            }
            AttackGoal::Untargeted { source } => {
                if source >= classes {
                    return Err(AttackError::InvalidInput {
                        reason: format!("class {source} out of range for {classes} classes"),
                    });
                }
                probs.as_slice()[source].max(1e-12).ln()
            }
        })
    }
}

impl Attack for Zoo {
    fn name(&self) -> String {
        format!(
            "ZOO(iters={}, coords={}, lr={})",
            self.iterations, self.coords_per_step, self.learning_rate
        )
    }

    fn run(
        &self,
        surface: &mut AttackSurface,
        x: &Tensor,
        goal: AttackGoal,
    ) -> Result<AdversarialExample> {
        surface.reset_queries();
        let mut rng = TensorRng::seed_from_u64(self.seed);
        let mut current = x.clone();
        let n = x.numel();

        // Per-coordinate Adam state (first/second moments, step counts).
        let mut m = vec![0.0f32; n];
        let mut v = vec![0.0f32; n];
        let mut t = vec![0u32; n];
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1e-8f32);

        let mut used = 0usize;
        for _ in 0..self.iterations {
            used += 1;
            let (predicted, _) = surface.predict(&current)?;
            if goal.is_met(predicted) {
                break;
            }
            for _ in 0..self.coords_per_step {
                let i = rng.index(n);
                // Symmetric finite difference on coordinate i.
                let original = current.as_slice()[i];
                current.as_mut_slice()[i] = (original + self.fd_epsilon).clamp(0.0, 1.0);
                let f_plus = Self::objective(surface, &current, goal)?;
                current.as_mut_slice()[i] = (original - self.fd_epsilon).clamp(0.0, 1.0);
                let f_minus = Self::objective(surface, &current, goal)?;
                current.as_mut_slice()[i] = original;
                let g = (f_plus - f_minus) / (2.0 * self.fd_epsilon);

                // Coordinate Adam step (descend the objective).
                t[i] += 1;
                m[i] = beta1 * m[i] + (1.0 - beta1) * g;
                v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
                let m_hat = m[i] / (1.0 - beta1.powi(t[i] as i32));
                let v_hat = v[i] / (1.0 - beta2.powi(t[i] as i32));
                let step = self.learning_rate * m_hat / (v_hat.sqrt() + eps);
                current.as_mut_slice()[i] = (original - step).clamp(0.0, 1.0);
            }
        }
        finish(surface, x, current, goal, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_nn::vgg::VggConfig;

    fn setup(seed: u64) -> (AttackSurface, Tensor) {
        let mut rng = TensorRng::seed_from_u64(seed);
        let model = VggConfig::tiny(3, 16, 5).build(&mut rng).unwrap();
        let x = rng.uniform(&[3, 16, 16], 0.2, 0.8);
        (AttackSurface::new(model), x)
    }

    #[test]
    fn construction_validates() {
        assert!(Zoo::new(0, 8, 0.01, 0.01, 0).is_err());
        assert!(Zoo::new(10, 0, 0.01, 0.01, 0).is_err());
        assert!(Zoo::new(10, 8, 0.0, 0.01, 0).is_err());
        assert!(Zoo::new(10, 8, 0.01, -1.0, 0).is_err());
        assert!(Zoo::new(10, 8, 0.01, 0.01, 0).is_ok());
        assert!(Zoo::standard().name().contains("ZOO"));
    }

    #[test]
    fn reduces_targeted_objective_without_gradients() {
        let (mut surface, x) = setup(1);
        // Target a class the random victim does not already predict —
        // otherwise the goal is met at iteration zero and the attack
        // (correctly) returns the input unchanged.
        let (source, _) = surface.predict(&x).unwrap();
        let goal = AttackGoal::Targeted {
            class: (source + 1) % 5,
        };
        let before = Zoo::objective(&mut surface, &x, goal).unwrap();
        let zoo = Zoo::new(20, 24, 1e-2, 5e-2, 1).unwrap();
        let adv = zoo.run(&mut surface, &x, goal).unwrap();
        let after = Zoo::objective(&mut surface, &adv.adversarial, goal).unwrap();
        assert!(after < before, "objective {before} → {after}");
        assert!(adv.adversarial.min().unwrap() >= 0.0);
        assert!(adv.adversarial.max().unwrap() <= 1.0);
    }

    #[test]
    fn untargeted_flip_on_easy_victim() {
        let (mut surface, x) = setup(2);
        let (source, _) = surface.predict(&x).unwrap();
        let zoo = Zoo::new(60, 32, 1e-2, 5e-2, 2).unwrap();
        let adv = zoo
            .run(&mut surface, &x, AttackGoal::Untargeted { source })
            .unwrap();
        assert!(
            adv.success_on_surface,
            "ZOO failed to fool an untrained tiny net"
        );
    }

    #[test]
    fn early_exit_when_goal_already_met() {
        let (mut surface, x) = setup(3);
        let (predicted, _) = surface.predict(&x).unwrap();
        let adv = Zoo::standard()
            .run(&mut surface, &x, AttackGoal::Targeted { class: predicted })
            .unwrap();
        assert_eq!(adv.iterations, 1);
        assert_eq!(adv.noise_l2(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut s1, x) = setup(4);
        let (mut s2, _) = setup(4);
        let zoo = Zoo::new(5, 8, 1e-2, 2e-2, 11).unwrap();
        let a = zoo
            .run(&mut s1, &x, AttackGoal::Targeted { class: 1 })
            .unwrap();
        let b = zoo
            .run(&mut s2, &x, AttackGoal::Targeted { class: 1 })
            .unwrap();
        assert_eq!(a.adversarial, b.adversarial);
    }

    #[test]
    fn rejects_out_of_range_class() {
        let (mut surface, x) = setup(5);
        let zoo = Zoo::new(2, 4, 1e-2, 1e-2, 0).unwrap();
        assert!(zoo
            .run(&mut surface, &x, AttackGoal::Targeted { class: 99 })
            .is_err());
    }
}
