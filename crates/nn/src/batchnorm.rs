use fademl_tensor::{Shape, Tensor, TensorError};

use crate::{Layer, NnError, Param, Result};

/// Batch normalization over the channel axis of NCHW input.
///
/// Training normalizes each channel by the batch statistics over
/// `(N, H, W)` and updates exponential running estimates; inference
/// uses the running estimates. Scale (γ) and shift (β) are learnable.
///
/// Included as the optional modernization of the paper's VGGNet (the
/// original VGG predates batch norm); the ablation benches compare
/// victims with and without it.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    momentum: f32,
    eps: f32,
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
    input_shape: Shape,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with the
    /// standard momentum (0.1) and epsilon (1e-5).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channels.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::InvalidConfig {
                reason: "batch norm needs at least one channel".into(),
            });
        }
        Ok(BatchNorm2d {
            channels,
            momentum: 0.1,
            eps: 1e-5,
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            cache: None,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize)> {
        if input.rank() != 4 || input.dims()[1] != self.channels {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "batch_norm2d",
                lhs: input.dims().to_vec(),
                rhs: vec![self.channels],
            }));
        }
        Ok((input.dims()[0], input.dims()[2], input.dims()[3]))
    }

    /// Per-channel affine transform with the provided mean/var.
    fn affine(&self, input: &Tensor, mean: &[f32], var: &[f32]) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let plane = h * w;
        let src = input.as_slice();
        let mut out = vec![0.0f32; src.len()];
        for s in 0..n {
            for c in 0..self.channels {
                let g = self.gamma.value.as_slice()[c];
                let b = self.beta.value.as_slice()[c];
                let inv = 1.0 / (var[c] + self.eps).sqrt();
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    out[base + i] = g * (src[base + i] - mean[c]) * inv + b;
                }
            }
        }
        Ok(Tensor::from_vec(out, input.shape().clone())?)
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batch_norm2d"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.affine(
            input,
            self.running_mean.as_slice(),
            self.running_var.as_slice(),
        )
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let (n, h, w) = self.check_input(input)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let src = input.as_slice();

        // Batch statistics per channel.
        let mut mean = vec![0.0f32; self.channels];
        let mut var = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let mut sum = 0.0f32;
            for s in 0..n {
                let base = (s * self.channels + c) * plane;
                sum += src[base..base + plane].iter().sum::<f32>();
            }
            mean[c] = sum / count;
            let mut sq = 0.0f32;
            for s in 0..n {
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    let d = src[base + i] - mean[c];
                    sq += d * d;
                }
            }
            var[c] = sq / count;
        }

        // Update running estimates.
        for c in 0..self.channels {
            let rm = self.running_mean.as_mut_slice();
            rm[c] = (1.0 - self.momentum) * rm[c] + self.momentum * mean[c];
            let rv = self.running_var.as_mut_slice();
            rv[c] = (1.0 - self.momentum) * rv[c] + self.momentum * var[c];
        }

        // Normalize and cache what backward needs.
        let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut normalized = vec![0.0f32; src.len()];
        for s in 0..n {
            for c in 0..self.channels {
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    normalized[base + i] = (src[base + i] - mean[c]) * std_inv[c];
                }
            }
        }
        let normalized = Tensor::from_vec(normalized, input.shape().clone())?;
        let mut out = vec![0.0f32; src.len()];
        for s in 0..n {
            for c in 0..self.channels {
                let g = self.gamma.value.as_slice()[c];
                let b = self.beta.value.as_slice()[c];
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    out[base + i] = g * normalized.as_slice()[base + i] + b;
                }
            }
        }
        self.cache = Some(BnCache {
            normalized,
            std_inv,
            input_shape: input.shape().clone(),
        });
        Ok(Tensor::from_vec(out, input.shape().clone())?)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "batch_norm2d",
        })?;
        if grad_out.shape() != &cache.input_shape {
            return Err(NnError::Tensor(TensorError::ShapeMismatch {
                op: "batch_norm2d_backward",
                lhs: grad_out.dims().to_vec(),
                rhs: cache.input_shape.dims().to_vec(),
            }));
        }
        let dims = cache.input_shape.dims();
        let (n, h, w) = (dims[0], dims[2], dims[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let g_out = grad_out.as_slice();
        let x_hat = cache.normalized.as_slice();

        let mut grad_in = vec![0.0f32; g_out.len()];
        for c in 0..self.channels {
            // Channel-wise reductions.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for s in 0..n {
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    sum_dy += g_out[base + i];
                    sum_dy_xhat += g_out[base + i] * x_hat[base + i];
                }
            }
            // Parameter gradients.
            self.gamma.grad.as_mut_slice()[c] += sum_dy_xhat;
            self.beta.grad.as_mut_slice()[c] += sum_dy;

            // Input gradient (standard batch-norm backward formula):
            // dx = γ/σ · (dy − mean(dy) − x̂ · mean(dy·x̂))
            let gamma = self.gamma.value.as_slice()[c];
            let scale = gamma * cache.std_inv[c];
            for s in 0..n {
                let base = (s * self.channels + c) * plane;
                for i in 0..plane {
                    grad_in[base + i] = scale
                        * (g_out[base + i]
                            - sum_dy / count
                            - x_hat[base + i] * sum_dy_xhat / count);
                }
            }
        }
        Ok(Tensor::from_vec(grad_in, cache.input_shape.clone())?)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn construction_validates() {
        assert!(BatchNorm2d::new(0).is_err());
        assert!(BatchNorm2d::new(8).is_ok());
        assert_eq!(BatchNorm2d::new(8).unwrap().channels(), 8);
    }

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.normal(&[8, 2, 6, 6], 5.0, 3.0);
        let y = bn.forward_train(&x).unwrap();
        // With γ=1, β=0 each channel of the output has ≈0 mean, ≈1 var.
        for c in 0..2 {
            let mut vals = Vec::new();
            for s in 0..8 {
                for i in 0..6 {
                    for j in 0..6 {
                        vals.push(y.get(&[s, c, i, j]).unwrap());
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = TensorRng::seed_from_u64(2);
        for _ in 0..200 {
            let x = rng.normal(&[4, 1, 4, 4], 2.0, 1.5);
            bn.forward_train(&x).unwrap();
        }
        let rm = bn.running_mean.as_slice()[0];
        let rv = bn.running_var.as_slice()[0];
        assert!((rm - 2.0).abs() < 0.2, "running mean {rm}");
        assert!((rv - 2.25).abs() < 0.5, "running var {rv}");
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = TensorRng::seed_from_u64(3);
        for _ in 0..100 {
            bn.forward_train(&rng.normal(&[4, 1, 4, 4], 0.0, 1.0))
                .unwrap();
        }
        // A constant input through inference normalization is constant.
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let y1 = bn.forward(&x).unwrap();
        let y2 = bn.forward(&x).unwrap();
        assert_eq!(y1, y2); // inference does not mutate state
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let mut rng = TensorRng::seed_from_u64(4);
        // Give γ/β non-trivial values.
        bn.params_mut()[0].value = rng.uniform(&[2], 0.5, 1.5);
        bn.params_mut()[1].value = rng.uniform(&[2], -0.5, 0.5);
        let x = rng.uniform(&[2, 2, 3, 3], -1.0, 1.0);
        let y = bn.forward_train(&x).unwrap();
        let grad_in = bn.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        let loss = |bn: &mut BatchNorm2d, inp: &Tensor| bn.forward_train(inp).unwrap().sum();
        for idx in [0usize, 7, 17, 35] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric =
                (loss(&mut bn.clone(), &plus) - loss(&mut bn.clone(), &minus)) / (2.0 * eps);
            let analytic = grad_in.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 5e-2,
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn param_grads_accumulate() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        let mut rng = TensorRng::seed_from_u64(5);
        let x = rng.uniform(&[2, 1, 3, 3], -1.0, 1.0);
        let y = bn.forward_train(&x).unwrap();
        bn.backward(&Tensor::ones(y.dims())).unwrap();
        // β gradient for a sum loss is the element count.
        assert!((bn.params()[1].grad.as_slice()[0] - 18.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_wrong_shapes_and_missing_cache() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4])).is_err());
        assert!(bn.forward(&Tensor::zeros(&[3, 4, 4])).is_err());
        assert!(matches!(
            bn.backward(&Tensor::zeros(&[1, 3, 4, 4])),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
