use fademl_tensor::{Initializer, Shape, Tensor, TensorError, TensorRng};

use crate::{Layer, NnError, Param, Result};

/// A fully-connected layer: `y = x·Wᵀ + b` over `[batch, in] → [batch, out]`.
///
/// The weight is stored `[out, in]` (one row per output unit), the bias
/// `[out]`.
///
/// # Example
///
/// ```
/// use fademl_nn::{Dense, Layer};
/// use fademl_tensor::{Tensor, TensorRng};
///
/// # fn main() -> Result<(), fademl_nn::NnError> {
/// let mut rng = TensorRng::seed_from_u64(0);
/// let fc = Dense::new(64, 43, &mut rng); // the paper's classification head
/// let logits = fc.forward(&Tensor::zeros(&[2, 64]))?;
/// assert_eq!(logits.dims(), &[2, 43]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Xavier-uniform weights and zero biases.
    pub fn new(in_features: usize, out_features: usize, rng: &mut TensorRng) -> Self {
        let weight = rng.init(
            &[out_features, in_features],
            Initializer::XavierUniform {
                fan_in: in_features,
                fan_out: out_features,
            },
        );
        Dense {
            in_features,
            out_features,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.rank() != 2 || input.dims()[1] != self.in_features {
            return Err(NnError::Tensor(TensorError::shape_mismatch(
                "dense",
                input.dims(),
                &[self.in_features],
            )));
        }
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input)?;
        // x [n, in] · Wᵀ [in, out] + b
        let out = input.matmul_nt(&self.weight.value)?;
        Ok(out.add(&self.bias.value)?)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_input = Some(input.duplicate());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dense" })?;
        if grad_out.rank() != 2 || grad_out.dims()[1] != self.out_features {
            return Err(NnError::Tensor(TensorError::shape_mismatch(
                "dense_backward",
                grad_out.dims(),
                &[self.out_features],
            )));
        }
        // ∂W = gᵀ·x  ([out, n] × [n, in]).
        let grad_w = grad_out.matmul_tn(input)?;
        self.weight.grad.add_scaled_inplace(&grad_w, 1.0)?;
        // ∂b = column sums of g.
        let grad_b = grad_out.sum_batch()?;
        self.bias
            .grad
            .add_scaled_inplace(&grad_b.reshape(&[self.out_features])?, 1.0)?;
        // ∂x = g·W  ([n, out] × [out, in]).
        Ok(grad_out.matmul(&self.weight.value)?)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Builds a one-hot row matrix `[n, classes]` from class labels.
///
/// # Errors
///
/// Returns [`TensorError::IndexOutOfBounds`] (wrapped) if any label is
/// `>= classes`.
pub(crate) fn one_hot(labels: &[usize], classes: usize) -> Result<Tensor> {
    let mut data = fademl_tensor::plan::alloc::fresh_vec(labels.len() * classes);
    for (i, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::Tensor(TensorError::index_oob(
                &[label],
                &[classes],
            )));
        }
        data[i * classes + label] = 1.0;
    }
    Ok(Tensor::from_vec(data, Shape::of(&[labels.len(), classes]))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Dense {
        let mut rng = TensorRng::seed_from_u64(5);
        Dense::new(4, 3, &mut rng)
    }

    #[test]
    fn forward_shape_and_bias() {
        let mut fc = layer();
        // Set weight to zeros so output equals bias broadcast.
        fc.params_mut()[0].value = Tensor::zeros(&[3, 4]);
        fc.params_mut()[1].value =
            Tensor::from_vec(vec![1.0, 2.0, 3.0], Shape::new(vec![3])).unwrap();
        let y = fc.forward(&Tensor::ones(&[2, 4])).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let fc = layer();
        assert!(fc.forward(&Tensor::zeros(&[2, 5])).is_err());
        assert!(fc.forward(&Tensor::zeros(&[4])).is_err());
    }

    #[test]
    fn backward_finite_difference() {
        let mut fc = layer();
        let mut rng = TensorRng::seed_from_u64(6);
        let x = rng.uniform(&[3, 4], -1.0, 1.0);
        let y = fc.forward_train(&x).unwrap();
        let gin = fc.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-3f32;
        // Input gradient check.
        for idx in [0usize, 5, 11] {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (fc.forward(&plus).unwrap().sum() - fc.forward(&minus).unwrap().sum())
                / (2.0 * eps);
            assert!((numeric - gin.as_slice()[idx]).abs() < 1e-2);
        }
        // Weight gradient check.
        let wgrad = fc.params()[0].grad.clone();
        for idx in [0usize, 7, 11] {
            let mut plus = fc.clone();
            plus.params_mut()[0].value.as_mut_slice()[idx] += eps;
            let mut minus = fc.clone();
            minus.params_mut()[0].value.as_mut_slice()[idx] -= eps;
            let numeric =
                (plus.forward(&x).unwrap().sum() - minus.forward(&x).unwrap().sum()) / (2.0 * eps);
            assert!((numeric - wgrad.as_slice()[idx]).abs() < 1e-2);
        }
        // Bias gradient equals batch size for a sum loss.
        for &g in fc.params()[1].grad.as_slice() {
            assert!((g - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn one_hot_rows() {
        let t = one_hot(&[2, 0], 3).unwrap();
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.as_slice(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
        assert!(one_hot(&[3], 3).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut fc = layer();
        assert!(matches!(
            fc.backward(&Tensor::zeros(&[1, 3])),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
