use fademl_tensor::Tensor;

use crate::{Layer, NnError, Result};

/// Rectified linear unit activation: `y = max(x, 0)` elementwise.
///
/// Stateless apart from the backward mask cached during training.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cached_mask: Option<Tensor>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.relu())
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        // The mask is 1 where the unit was active; the subgradient at
        // exactly 0 is taken as 0 (the standard convention).
        self.cached_mask = Some(input.map(|x| if x > 0.0 { 1.0 } else { 0.0 }));
        Ok(input.relu())
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "relu" })?;
        Ok(grad_out.mul(mask)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::Shape;

    #[test]
    fn forward_clips_negatives() {
        let relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], Shape::new(vec![3])).unwrap();
        assert_eq!(relu.forward(&x).unwrap().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], Shape::new(vec![3])).unwrap();
        relu.forward_train(&x).unwrap();
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0], Shape::new(vec![3])).unwrap();
        assert_eq!(relu.backward(&g).unwrap().as_slice(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_input_has_zero_subgradient() {
        let mut relu = Relu::new();
        let x = Tensor::zeros(&[2]);
        relu.forward_train(&x).unwrap();
        let g = Tensor::ones(&[2]);
        assert_eq!(relu.backward(&g).unwrap().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut relu = Relu::new();
        assert!(matches!(
            relu.backward(&Tensor::ones(&[1])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn has_no_params() {
        assert_eq!(Relu::new().param_count(), 0);
    }
}

/// Logistic sigmoid activation: `y = 1 / (1 + e^{-x})`.
///
/// Included for library completeness (the paper's VGG uses ReLU).
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cached_output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid::default()
    }

    fn activate(x: &Tensor) -> Tensor {
        x.map(|v| 1.0 / (1.0 + (-v).exp()))
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(Self::activate(input))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = Self::activate(input);
        self.cached_output = Some(out.duplicate());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "sigmoid" })?;
        // dy/dx = y (1 - y), computable from the cached output alone.
        let local = y.map(|v| v * (1.0 - v));
        Ok(grad_out.mul(&local)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic-tangent activation.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cached_output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(input.map(f32::tanh))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        self.cached_output = Some(out.duplicate());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let y = self
            .cached_output
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "tanh" })?;
        // dy/dx = 1 - y².
        let local = y.map(|v| 1.0 - v * v);
        Ok(grad_out.mul(&local)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Leaky ReLU: `y = x` for `x > 0`, `y = slope·x` otherwise — keeps a
/// small gradient alive on the negative side.
#[derive(Debug, Clone)]
pub struct LeakyRelu {
    slope: f32,
    cached_input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope
    /// (commonly 0.01).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `0 <= slope < 1`.
    pub fn new(slope: f32) -> Result<Self> {
        if !slope.is_finite() || !(0.0..1.0).contains(&slope) {
            return Err(NnError::InvalidConfig {
                reason: format!("leaky slope must be in [0, 1), got {slope}"),
            });
        }
        Ok(LeakyRelu {
            slope,
            cached_input: None,
        })
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        let slope = self.slope;
        Ok(input.map(|v| if v > 0.0 { v } else { slope * v }))
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cached_input = Some(input.duplicate());
        self.forward(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let x = self.cached_input.as_ref().ok_or(NnError::NoForwardCache {
            layer: "leaky_relu",
        })?;
        let slope = self.slope;
        let local = x.map(|v| if v > 0.0 { 1.0 } else { slope });
        Ok(grad_out.mul(&local)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod extended_tests {
    use super::*;
    use fademl_tensor::{Shape, TensorRng};

    fn grad_check(layer: &mut dyn Layer, x: &Tensor) {
        let y = layer.forward_train(x).unwrap();
        let gin = layer.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-3f32;
        for idx in 0..x.numel() {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (layer.forward(&plus).unwrap().sum()
                - layer.forward(&minus).unwrap().sum())
                / (2.0 * eps);
            let analytic = gin.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "{}: idx {idx} numeric {numeric} vs analytic {analytic}",
                layer.name()
            );
        }
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let sig = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], Shape::new(vec![3])).unwrap();
        let y = sig.forward(&x).unwrap();
        assert!(y.as_slice()[0] < 0.001);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 0.999);
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.uniform(&[8], -2.0, 2.0);
        grad_check(&mut Sigmoid::new(), &x);
    }

    #[test]
    fn tanh_range_and_gradient() {
        let t = Tanh::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], Shape::new(vec![3])).unwrap();
        let y = t.forward(&x).unwrap();
        assert!((y.as_slice()[0] + 1.0).abs() < 1e-3);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!((y.as_slice()[2] - 1.0).abs() < 1e-3);
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.uniform(&[8], -2.0, 2.0);
        grad_check(&mut Tanh::new(), &x);
    }

    #[test]
    fn leaky_relu_slope_and_gradient() {
        assert!(LeakyRelu::new(-0.1).is_err());
        assert!(LeakyRelu::new(1.0).is_err());
        let leaky = LeakyRelu::new(0.1).unwrap();
        let x = Tensor::from_vec(vec![-2.0, 3.0], Shape::new(vec![2])).unwrap();
        let y = leaky.forward(&x).unwrap();
        assert!((y.as_slice()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 3.0);
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[8], -2.0, 2.0);
        grad_check(&mut LeakyRelu::new(0.05).unwrap(), &x);
    }

    #[test]
    fn backward_requires_forward_for_all() {
        assert!(Sigmoid::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(LeakyRelu::new(0.1)
            .unwrap()
            .backward(&Tensor::ones(&[1]))
            .is_err());
    }
}
