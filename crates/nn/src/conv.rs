use fademl_tensor::{conv2d, conv2d_backward, ConvSpec, Initializer, Tensor, TensorRng};

use crate::{Layer, NnError, Param, Result};

/// A 2-D convolution layer (NCHW, square kernels).
///
/// Weights are Kaiming-normal initialized — appropriate for the ReLU
/// stack the paper's VGGNet uses.
///
/// # Example
///
/// ```
/// use fademl_nn::{Conv2d, Layer};
/// use fademl_tensor::{ConvSpec, Tensor, TensorRng};
///
/// # fn main() -> Result<(), fademl_nn::NnError> {
/// let mut rng = TensorRng::seed_from_u64(0);
/// let conv = Conv2d::new(ConvSpec::new(3, 8, 3, 1, 1), &mut rng);
/// let out = conv.forward(&Tensor::zeros(&[2, 3, 16, 16]))?;
/// assert_eq!(out.dims(), &[2, 8, 16, 16]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    spec: ConvSpec,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-normal weights and zero
    /// biases drawn from `rng`.
    pub fn new(spec: ConvSpec, rng: &mut TensorRng) -> Self {
        let fan_in = spec.in_channels * spec.kernel_h * spec.kernel_w;
        let weight = rng.init(
            &[
                spec.out_channels,
                spec.in_channels,
                spec.kernel_h,
                spec.kernel_w,
            ],
            Initializer::KaimingNormal { fan_in },
        );
        Conv2d {
            spec,
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[spec.out_channels])),
            cached_input: None,
        }
    }

    /// The layer's geometry.
    pub fn spec(&self) -> &ConvSpec {
        &self.spec
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(conv2d(
            input,
            &self.weight.value,
            &self.bias.value,
            &self.spec,
        )?)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let out = self.forward(input)?;
        self.cached_input = Some(input.duplicate());
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "conv2d" })?;
        let grads = conv2d_backward(input, &self.weight.value, grad_out, &self.spec)?;
        self.weight.grad.add_scaled_inplace(&grads.weight, 1.0)?;
        self.bias.grad.add_scaled_inplace(&grads.bias, 1.0)?;
        Ok(grads.input)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> Conv2d {
        let mut rng = TensorRng::seed_from_u64(1);
        Conv2d::new(ConvSpec::new(2, 3, 3, 1, 1), &mut rng)
    }

    #[test]
    fn forward_shape() {
        let conv = layer();
        let out = conv.forward(&Tensor::zeros(&[2, 2, 8, 8])).unwrap();
        assert_eq!(out.dims(), &[2, 3, 8, 8]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut conv = layer();
        let err = conv.backward(&Tensor::zeros(&[1, 3, 8, 8])).unwrap_err();
        assert!(matches!(err, NnError::NoForwardCache { .. }));
    }

    #[test]
    fn backward_accumulates_param_grads() {
        let mut conv = layer();
        let mut rng = TensorRng::seed_from_u64(2);
        let x = rng.uniform(&[1, 2, 6, 6], -1.0, 1.0);
        let y = conv.forward_train(&x).unwrap();
        let gin = conv.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gin.dims(), x.dims());
        assert!(conv.params()[0].grad.norm_l2() > 0.0);
        assert!(conv.params()[1].grad.norm_l2() > 0.0);
        // Second backward accumulates (doubles) the gradient.
        let w_grad_once = conv.params()[0].grad.clone();
        conv.forward_train(&x).unwrap();
        conv.backward(&Tensor::ones(y.dims())).unwrap();
        let doubled = w_grad_once.scale(2.0);
        for (a, b) in conv.params()[0]
            .grad
            .as_slice()
            .iter()
            .zip(doubled.as_slice())
        {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_grad_clears() {
        let mut conv = layer();
        let x = Tensor::ones(&[1, 2, 6, 6]);
        let y = conv.forward_train(&x).unwrap();
        conv.backward(&Tensor::ones(y.dims())).unwrap();
        conv.zero_grad();
        assert_eq!(conv.params()[0].grad.norm_l2(), 0.0);
    }

    #[test]
    fn inference_matches_train_forward() {
        let mut conv = layer();
        let mut rng = TensorRng::seed_from_u64(3);
        let x = rng.uniform(&[1, 2, 5, 5], -1.0, 1.0);
        let pure = conv.forward(&x).unwrap();
        let train = conv.forward_train(&x).unwrap();
        assert_eq!(pure, train);
    }

    #[test]
    fn param_count() {
        let conv = layer();
        // 3 filters × 2 channels × 3×3 + 3 biases
        assert_eq!(conv.param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn clone_box_preserves_weights() {
        let conv = layer();
        let cloned = conv.clone_box();
        let x = Tensor::ones(&[1, 2, 5, 5]);
        assert_eq!(conv.forward(&x).unwrap(), cloned.forward(&x).unwrap());
    }
}
