use fademl_tensor::{Shape, Tensor, TensorError};

use crate::{Layer, NnError, Result};

/// Flattens all non-batch dimensions: `[n, d...] → [n, Πd]`.
///
/// Bridges the convolutional trunk and the dense classification head.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    fn flatten(input: &Tensor) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::Tensor(TensorError::RankMismatch {
                op: "flatten",
                expected: 2,
                actual: input.rank(),
            }));
        }
        let n = input.dims()[0];
        let inner: usize = input.dims()[1..].iter().product();
        Ok(input.reshape(&[n, inner])?)
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Self::flatten(input)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        self.cached_shape = Some(input.shape().clone());
        Self::flatten(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "flatten" })?;
        Ok(grad_out.reshape(shape.dims())?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_inner_dims() {
        let flat = Flatten::new();
        let out = flat.forward(&Tensor::zeros(&[2, 3, 4, 5])).unwrap();
        assert_eq!(out.dims(), &[2, 60]);
    }

    #[test]
    fn backward_restores_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::ones(&[2, 3, 2, 2]);
        let y = flat.forward_train(&x).unwrap();
        let gin = flat.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gin.dims(), x.dims());
    }

    #[test]
    fn rejects_rank_1() {
        assert!(Flatten::new().forward(&Tensor::zeros(&[5])).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut flat = Flatten::new();
        assert!(matches!(
            flat.backward(&Tensor::zeros(&[1, 4])),
            Err(NnError::NoForwardCache { .. })
        ));
    }
}
