//! Durable, verifiable training checkpoints.
//!
//! A checkpoint captures *everything* [`Trainer`](crate::Trainer) needs
//! to continue a run bit-for-bit: model weights, optimizer state
//! (momentum / Adam moments and step counter), the trainer RNG's exact
//! stream position, the current learning rate, the epoch counter and
//! the accumulated [`TrainHistory`]. A run interrupted at a checkpoint
//! boundary and resumed produces **byte-identical final weights** to an
//! uninterrupted run with the same seed (proven by test).
//!
//! # On-disk format (`FADEMLC1`)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 8    | magic `"FADEMLC1"` |
//! | 8      | 4    | version `u32` = 1 (start of CRC-covered body) |
//! | 12     | 8    | `epochs_done: u64` |
//! | 20     | 32   | trainer RNG state, 4 × `u64` |
//! | 52     | 4    | current learning rate `f32` |
//! | 56     | ..   | model parameters: count `u32`, then per tensor `rank u8`, dims `u64`×rank, data `f32`×numel |
//! | ..     | ..   | optimizer state: kind tag `u8` (0 = SGD, 1 = Adam), hyper-parameters, then state tensors in the same per-tensor encoding |
//! | ..     | ..   | history: epoch count `u32`, then (`loss f32`, `train_accuracy f32`) per epoch |
//! | end−4  | 4    | CRC-32 (IEEE) over the body (everything after the magic) |
//!
//! All integers and floats are little-endian. Loading verifies magic,
//! version and CRC **before** interpreting any tensor data, and every
//! structural field is bounds-checked against hard caps before a single
//! allocation — a truncated, torn or bit-flipped checkpoint is a
//! [`NnError::Corrupt`], never garbage weights.
//!
//! # Generations
//!
//! [`CheckpointStore`] manages a directory of `ckpt-<epoch>.fckpt`
//! generations, written via the atomic temp-file + rename helper
//! ([`fademl_tensor::io::atomic_write`]) and pruned to a configurable
//! retention count. [`CheckpointStore::latest_intact`] scans newest →
//! oldest and returns the first generation that passes verification, so
//! recovery survives a corrupt newest file as long as one older
//! generation is intact.

use std::fs;
use std::path::{Path, PathBuf};

use fademl_tensor::io::{
    atomic_write, crc32, is_staging_file, read_artifact, ByteReader, ByteWriter,
};
use fademl_tensor::{Shape, Tensor, TensorRng};

use crate::{EpochStats, Optimizer};
use crate::{NnError, OptimizerState, Result, Sequential, TrainHistory};

const MAGIC: &[u8; 8] = b"FADEMLC1";
const VERSION: u32 = 1;

/// Hard caps applied while parsing, before any allocation: a corrupt
/// header can never trigger a runaway allocation.
const MAX_RANK: usize = 8;
const MAX_TENSORS: usize = 65_536;
const MAX_HISTORY: usize = 10_000_000;

const SGD_TAG: u8 = 0;
const ADAM_TAG: u8 = 1;

/// Where and how often [`Trainer::fit_durable`](crate::Trainer::fit_durable)
/// checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint generations (created if absent).
    pub dir: PathBuf,
    /// Checkpoint after every `every_epochs` completed epochs.
    pub every_epochs: usize,
    /// How many most-recent generations to keep on disk (≥ 1). Keeping
    /// more than one lets recovery fall back past a corrupt newest file.
    pub retain: usize,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` after every epoch, retaining the last two
    /// generations.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_epochs: 1,
            retain: 2,
        }
    }

    /// Sets the checkpoint period (builder style).
    #[must_use]
    pub fn every(mut self, epochs: usize) -> Self {
        self.every_epochs = epochs;
        self
    }

    /// Sets the retention count (builder style).
    #[must_use]
    pub fn retain(mut self, generations: usize) -> Self {
        self.retain = generations;
        self
    }
}

/// A complete snapshot of a training run at an epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainState {
    /// Number of epochs fully completed before this snapshot.
    pub epochs_done: u64,
    /// The trainer RNG's exact stream position.
    pub rng_state: [u64; 4],
    /// Learning rate in effect for the *next* epoch (decay applied).
    pub learning_rate: f32,
    /// Model parameter values, in [`Sequential::params`] order.
    pub params: Vec<Tensor>,
    /// Optimizer state (momentum buffers / Adam moments).
    pub optimizer: OptimizerState,
    /// Per-epoch statistics accumulated so far.
    pub history: TrainHistory,
}

impl TrainState {
    /// Snapshots a live training run.
    pub fn capture(
        model: &Sequential,
        optimizer: &dyn Optimizer,
        rng: &TensorRng,
        history: &TrainHistory,
        epochs_done: u64,
    ) -> TrainState {
        TrainState {
            epochs_done,
            rng_state: rng.state(),
            learning_rate: optimizer.learning_rate(),
            params: model.params().iter().map(|p| p.value.clone()).collect(),
            optimizer: optimizer.export_state(),
            history: history.clone(),
        }
    }

    /// Pours the snapshot's weights back into `model`, verifying count
    /// and shape of every parameter first.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ArchMismatch`] when the snapshot does not fit
    /// the model.
    pub fn apply_to(&self, model: &mut Sequential) -> Result<()> {
        let mut params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(NnError::ArchMismatch {
                reason: format!(
                    "checkpoint has {} parameters, model has {}",
                    self.params.len(),
                    params.len()
                ),
            });
        }
        for (i, (target, saved)) in params.iter_mut().zip(&self.params).enumerate() {
            if target.value.dims() != saved.dims() {
                return Err(NnError::ArchMismatch {
                    reason: format!(
                        "parameter {i}: checkpoint shape {:?} vs model shape {:?}",
                        saved.dims(),
                        target.value.dims()
                    ),
                });
            }
        }
        for (target, saved) in params.iter_mut().zip(&self.params) {
            target.value = saved.clone();
        }
        Ok(())
    }

    /// A trainer RNG positioned exactly where the snapshot left off.
    pub fn resume_rng(&self) -> TensorRng {
        TensorRng::from_state(self.rng_state)
    }

    /// Serializes the snapshot to the `FADEMLC1` format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u32(VERSION);
        w.put_u64(self.epochs_done);
        for &s in &self.rng_state {
            w.put_u64(s);
        }
        w.put_f32(self.learning_rate);
        w.put_u32(self.params.len() as u32);
        for t in &self.params {
            put_tensor(&mut w, t);
        }
        match &self.optimizer {
            OptimizerState::Sgd {
                lr,
                momentum,
                weight_decay,
                velocity,
            } => {
                w.put_u8(SGD_TAG);
                w.put_f32(*lr);
                w.put_f32(*momentum);
                w.put_f32(*weight_decay);
                put_tensor_list(&mut w, velocity);
            }
            OptimizerState::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                w.put_u8(ADAM_TAG);
                w.put_f32(*lr);
                w.put_f32(*beta1);
                w.put_f32(*beta2);
                w.put_f32(*eps);
                w.put_u32(*t);
                put_tensor_list(&mut w, m);
                put_tensor_list(&mut w, v);
            }
        }
        w.put_u32(self.history.epochs.len() as u32);
        for e in &self.history.epochs {
            w.put_f32(e.loss);
            w.put_f32(e.train_accuracy);
        }
        let body = w.into_bytes();
        let mut out = Vec::with_capacity(MAGIC.len() + body.len() + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out
    }

    /// Parses and verifies a `FADEMLC1` checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Corrupt`] for bad magic, unsupported version,
    /// CRC mismatch, truncation or any structurally invalid field.
    pub fn decode(bytes: &[u8]) -> Result<TrainState> {
        if bytes.len() < MAGIC.len() + 4 + 4 {
            return Err(corrupt(format!(
                "file too small for a checkpoint ({} bytes)",
                bytes.len()
            )));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(corrupt("not a FAdeML checkpoint (bad magic)"));
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let trailer = &bytes[bytes.len() - 4..];
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "CRC mismatch: trailer {stored:#010x}, computed {actual:#010x}"
            )));
        }
        let mut r = ByteReader::new(body);
        let state = parse_body(&mut r)?;
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes after the checkpoint body",
                r.remaining()
            )));
        }
        Ok(state)
    }
}

fn corrupt(reason: impl Into<String>) -> NnError {
    NnError::Corrupt {
        reason: reason.into(),
    }
}

fn parse_body(r: &mut ByteReader<'_>) -> Result<TrainState> {
    let rd = |e: std::io::Error| corrupt(e.to_string());
    let version = r.get_u32().map_err(rd)?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported checkpoint version {version}")));
    }
    let epochs_done = r.get_u64().map_err(rd)?;
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = r.get_u64().map_err(rd)?;
    }
    let learning_rate = r.get_f32().map_err(rd)?;
    let params = get_tensor_list(r)?;
    let tag = r.get_u8().map_err(rd)?;
    let optimizer = match tag {
        SGD_TAG => OptimizerState::Sgd {
            lr: r.get_f32().map_err(rd)?,
            momentum: r.get_f32().map_err(rd)?,
            weight_decay: r.get_f32().map_err(rd)?,
            velocity: get_tensor_list(r)?,
        },
        ADAM_TAG => OptimizerState::Adam {
            lr: r.get_f32().map_err(rd)?,
            beta1: r.get_f32().map_err(rd)?,
            beta2: r.get_f32().map_err(rd)?,
            eps: r.get_f32().map_err(rd)?,
            t: r.get_u32().map_err(rd)?,
            m: get_tensor_list(r)?,
            v: get_tensor_list(r)?,
        },
        other => return Err(corrupt(format!("unknown optimizer tag {other}"))),
    };
    let epochs = r.get_u32().map_err(rd)? as usize;
    if epochs > MAX_HISTORY {
        return Err(corrupt(format!("implausible history length {epochs}")));
    }
    let mut history = TrainHistory::default();
    for _ in 0..epochs {
        history.epochs.push(EpochStats {
            loss: r.get_f32().map_err(rd)?,
            train_accuracy: r.get_f32().map_err(rd)?,
        });
    }
    Ok(TrainState {
        epochs_done,
        rng_state,
        learning_rate,
        params,
        optimizer,
        history,
    })
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) {
    w.put_u8(t.dims().len() as u8);
    for &d in t.dims() {
        w.put_u64(d as u64);
    }
    for &x in t.as_slice() {
        w.put_f32(x);
    }
}

fn put_tensor_list(w: &mut ByteWriter, list: &[Tensor]) {
    w.put_u32(list.len() as u32);
    for t in list {
        put_tensor(w, t);
    }
}

/// Reads one tensor record, validating rank and size against the bytes
/// actually present *before* allocating the data buffer.
fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor> {
    let rd = |e: std::io::Error| corrupt(e.to_string());
    let rank = r.get_u8().map_err(rd)? as usize;
    if rank > MAX_RANK {
        return Err(corrupt(format!("implausible tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let d = r.get_u64().map_err(rd)? as usize;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| corrupt("tensor dims overflow"))?;
        dims.push(d);
    }
    let byte_len = numel
        .checked_mul(4)
        .ok_or_else(|| corrupt("tensor byte length overflows"))?;
    if byte_len > r.remaining() {
        return Err(corrupt(format!(
            "tensor claims {byte_len} data bytes but only {} remain",
            r.remaining()
        )));
    }
    let raw = r.get_bytes(byte_len).map_err(rd)?;
    let data: Vec<f32> = raw
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Tensor::from_vec(data, Shape::new(dims)).map_err(NnError::from)
}

fn get_tensor_list(r: &mut ByteReader<'_>) -> Result<Vec<Tensor>> {
    let rd = |e: std::io::Error| corrupt(e.to_string());
    let count = r.get_u32().map_err(rd)? as usize;
    if count > MAX_TENSORS {
        return Err(corrupt(format!("implausible tensor count {count}")));
    }
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        out.push(get_tensor(r)?);
    }
    Ok(out)
}

/// A directory of checkpoint generations with atomic writes, integrity
/// verification on load, and newest-intact recovery.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory keeping the
    /// last `retain` generations.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for `retain == 0` and
    /// [`NnError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self> {
        if retain == 0 {
            return Err(NnError::InvalidConfig {
                reason: "checkpoint retention must be at least 1".into(),
            });
        }
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, retain })
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn generation_path(&self, epochs_done: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{epochs_done:08}.fckpt"))
    }

    /// All generations on disk (intact or not), oldest first, as
    /// `(epochs_done, path)` pairs. Staging leftovers and foreign files
    /// are skipped.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures.
    pub fn generations(&self) -> Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if is_staging_file(&path) {
                continue;
            }
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if let Some(gen) = name
                .strip_prefix("ckpt-")
                .and_then(|s| s.strip_suffix(".fckpt"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                out.push((gen, path));
            }
        }
        out.sort_by_key(|(g, _)| *g);
        Ok(out)
    }

    /// Atomically writes `state` as generation `state.epochs_done` and
    /// prunes generations beyond the retention count.
    ///
    /// # Errors
    ///
    /// Propagates encode/write failures ([`NnError::Io`]); pruning
    /// failures are ignored (they only cost disk space, not safety).
    pub fn save(&self, state: &TrainState) -> Result<PathBuf> {
        let path = self.generation_path(state.epochs_done);
        atomic_write(&path, &state.encode())?;
        if let Ok(gens) = self.generations() {
            if gens.len() > self.retain {
                for (_, old) in &gens[..gens.len() - self.retain] {
                    // best-effort: pruning a vanished generation is fine.
                    let _ = fs::remove_file(old);
                }
            }
        }
        Ok(path)
    }

    /// Loads and verifies one checkpoint file.
    ///
    /// # Errors
    ///
    /// [`NnError::Io`] when the file cannot be read, [`NnError::Corrupt`]
    /// when it fails verification.
    pub fn load(path: &Path) -> Result<TrainState> {
        let bytes = read_artifact(path).map_err(|e| {
            if e.kind() == std::io::ErrorKind::InvalidData {
                corrupt(e.to_string())
            } else {
                NnError::Io(e)
            }
        })?;
        TrainState::decode(&bytes)
    }

    /// Scans generations newest → oldest and returns the first one that
    /// passes full verification, or `None` when no intact generation
    /// exists. Corrupt or unreadable generations are skipped — recovery
    /// never loads a file that fails its CRC.
    ///
    /// # Errors
    ///
    /// Propagates directory-read failures only.
    pub fn latest_intact(&self) -> Result<Option<(u64, TrainState)>> {
        for (gen, path) in self.generations()?.into_iter().rev() {
            if let Ok(state) = Self::load(&path) {
                return Ok(Some((gen, state)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Dense, Relu, Sgd};
    use proptest::prelude::*;

    fn model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(5, 7, &mut rng))
            .push(Relu::new())
            .push(Dense::new(7, 3, &mut rng))
    }

    fn sample_state(seed: u64) -> TrainState {
        let m = model(seed);
        let mut opt = Adam::new(2e-3);
        opt.set_learning_rate(1.5e-3);
        let rng = TensorRng::seed_from_u64(seed + 1);
        let history = TrainHistory {
            epochs: vec![
                EpochStats {
                    loss: 1.25,
                    train_accuracy: 0.4,
                },
                EpochStats {
                    loss: 0.75,
                    train_accuracy: 0.8,
                },
            ],
        };
        TrainState::capture(&m, &opt, &rng, &history, 2)
    }

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fademl_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trip() {
        let state = sample_state(1);
        let decoded = TrainState::decode(&state.encode()).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn sgd_state_round_trips_too() {
        let m = model(2);
        let opt = Sgd::with_momentum(0.05, 0.9).weight_decay(1e-4);
        let rng = TensorRng::seed_from_u64(9);
        let state = TrainState::capture(&m, &opt, &rng, &TrainHistory::default(), 0);
        assert_eq!(TrainState::decode(&state.encode()).unwrap(), state);
    }

    #[test]
    fn apply_restores_weights_and_checks_shapes() {
        let source = model(1);
        let state = sample_state(1);
        let mut target = model(2);
        let x = Tensor::ones(&[2, 5]);
        assert_ne!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
        state.apply_to(&mut target).unwrap();
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());

        let mut rng = TensorRng::seed_from_u64(3);
        let mut wrong = Sequential::new().push(Dense::new(5, 4, &mut rng));
        assert!(matches!(
            state.apply_to(&mut wrong),
            Err(NnError::ArchMismatch { .. })
        ));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        // Flip one bit in every byte region — magic, header, payload,
        // trailer — and require a typed error each time. The CRC covers
        // the body, the magic check covers the prefix.
        let state = sample_state(4);
        let clean = state.encode();
        // Exhaustive over a stride to keep runtime sane, but always
        // covering magic (0..8), header, the first/last payload bytes
        // and the trailer.
        let mut offsets: Vec<usize> = (0..clean.len()).step_by(97).collect();
        offsets.extend(0..12);
        offsets.extend(clean.len() - 8..clean.len());
        for at in offsets {
            let mut bad = clean.clone();
            bad[at] ^= 0x20;
            match TrainState::decode(&bad) {
                Err(NnError::Corrupt { .. }) => {}
                Err(other) => panic!("byte {at}: wrong error kind {other:?}"),
                Ok(decoded) => {
                    panic!(
                        "byte {at}: corrupt checkpoint decoded successfully ({} params)",
                        decoded.params.len()
                    )
                }
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let clean = sample_state(5).encode();
        for len in (0..clean.len()).step_by(13) {
            assert!(
                matches!(
                    TrainState::decode(&clean[..len]),
                    Err(NnError::Corrupt { .. })
                ),
                "truncation to {len} bytes must be Corrupt"
            );
        }
    }

    #[test]
    fn store_saves_prunes_and_recovers_newest() {
        let dir = unique_dir("store");
        let store = CheckpointStore::open(&dir, 2).unwrap();
        for epochs in [1u64, 2, 3, 4] {
            let mut s = sample_state(epochs);
            s.epochs_done = epochs;
            store.save(&s).unwrap();
        }
        let gens = store.generations().unwrap();
        assert_eq!(
            gens.iter().map(|(g, _)| *g).collect::<Vec<_>>(),
            vec![3, 4],
            "retention must keep only the last two generations"
        );
        let (gen, state) = store.latest_intact().unwrap().unwrap();
        assert_eq!(gen, 4);
        assert_eq!(state.epochs_done, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_a_corrupt_newest_generation() {
        let dir = unique_dir("recover");
        let store = CheckpointStore::open(&dir, 3).unwrap();
        for epochs in [1u64, 2] {
            let mut s = sample_state(epochs);
            s.epochs_done = epochs;
            store.save(&s).unwrap();
        }
        // Rot the newest generation on disk.
        let newest = store.generations().unwrap().last().unwrap().1.clone();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            CheckpointStore::load(&newest),
            Err(NnError::Corrupt { .. })
        ));
        // latest_intact falls back to generation 1.
        let (gen, state) = store.latest_intact().unwrap().unwrap();
        assert_eq!(gen, 1);
        assert_eq!(state.epochs_done, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_has_no_intact_generation() {
        let dir = unique_dir("empty");
        let store = CheckpointStore::open(&dir, 1).unwrap();
        assert!(store.latest_intact().unwrap().is_none());
        assert!(CheckpointStore::open(&dir, 0).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_foreign_and_oversized_headers() {
        assert!(matches!(
            TrainState::decode(b"NOTACKPTxxxxyyyy"),
            Err(NnError::Corrupt { .. })
        ));
        // A payload claiming an absurd tensor rank must fail before
        // allocating.
        let mut w = ByteWriter::new();
        w.put_u32(VERSION);
        w.put_u64(0);
        for _ in 0..4 {
            w.put_u64(0);
        }
        w.put_f32(0.0);
        w.put_u32(1); // one param tensor
        w.put_u8(255); // rank 255 ≫ MAX_RANK
        let body = w.into_bytes();
        let mut file = Vec::new();
        file.extend_from_slice(MAGIC);
        file.extend_from_slice(&body);
        file.extend_from_slice(&crc32(&body).to_le_bytes());
        assert!(matches!(
            TrainState::decode(&file),
            Err(NnError::Corrupt { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Arbitrary layer stacks and optimizer states survive the
        /// save/load round trip bit-for-bit.
        #[test]
        fn prop_round_trip(
            widths in proptest::collection::vec(1usize..6, 1..4),
            use_adam in 0u8..2,
            steps in 0u32..50,
            epochs_done in 0u64..1000,
            lr in 1e-5f32..1.0,
            seed in 0u64..u64::MAX,
        ) {
            let mut rng = TensorRng::seed_from_u64(seed);
            let mut m = Sequential::new();
            let mut prev = 3usize;
            for w in widths {
                m.push_boxed(Box::new(Dense::new(prev, w, &mut rng)));
                m.push_boxed(Box::new(Relu::new()));
                prev = w;
            }
            let mut opt: Box<dyn Optimizer> = if use_adam == 1 {
                Box::new(Adam::new(lr))
            } else {
                Box::new(Sgd::with_momentum(lr, 0.9))
            };
            // Drive a few steps so moment buffers are non-trivial.
            for _ in 0..steps.min(3) {
                for p in m.params_mut() {
                    p.grad = Tensor::ones(p.value.dims());
                }
                opt.step(&mut m.params_mut()).unwrap();
            }
            let history = TrainHistory {
                epochs: (0..(steps as usize % 5)).map(|i| EpochStats {
                    loss: i as f32 * 0.1,
                    train_accuracy: 1.0 - i as f32 * 0.05,
                }).collect(),
            };
            let state = TrainState::capture(&m, opt.as_ref(), &rng, &history, epochs_done);
            let decoded = TrainState::decode(&state.encode()).unwrap();
            prop_assert_eq!(decoded, state);
        }

        /// Any single-byte corruption of a checkpoint is a typed error.
        #[test]
        fn prop_single_byte_corruption_is_typed(
            at_frac in 0.0f64..1.0,
            flip in 1u32..256,
        ) {
            let clean = sample_state(6).encode();
            let at = ((clean.len() - 1) as f64 * at_frac) as usize;
            let mut bad = clean.clone();
            bad[at] ^= flip as u8;
            prop_assert!(matches!(
                TrainState::decode(&bad),
                Err(NnError::Corrupt { .. })
            ));
        }
    }
}
