use fademl_tensor::{Tensor, TensorRng};
use parking_lot::Mutex;

use crate::{Layer, NnError, Param, Result};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and the survivors are scaled by `1/(1−p)`, so
/// inference ([`Layer::forward`]) is the identity with no rescaling.
///
/// Randomness is drawn from an internal seeded generator so training
/// runs stay reproducible; the generator sits behind a mutex because
/// [`Layer`] requires `Sync` (inference never touches it).
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: Mutex<TensorRng>,
    seed: u64,
    cached_mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and a seed for
    /// its mask stream.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !p.is_finite() || !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                reason: format!("dropout probability must be in [0, 1), got {p}"),
            });
        }
        Ok(Dropout {
            p,
            rng: Mutex::new(TensorRng::seed_from_u64(seed)),
            seed,
            cached_mask: None,
        })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Clone for Dropout {
    fn clone(&self) -> Self {
        Dropout {
            p: self.p,
            // The clone restarts its mask stream from the original seed;
            // what matters for reproducibility is determinism, not
            // continuing the exact stream position.
            rng: Mutex::new(TensorRng::seed_from_u64(self.seed)),
            seed: self.seed,
            cached_mask: self.cached_mask.clone(),
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        // Inverted dropout: inference is the identity.
        Ok(input.clone())
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.p == 0.0 {
            self.cached_mask = Some(Tensor::ones(input.dims()));
            return Ok(input.clone());
        }
        let keep_scale = 1.0 / (1.0 - self.p);
        let mask = {
            let mut rng = self.rng.lock();
            let mut data = Vec::with_capacity(input.numel());
            for _ in 0..input.numel() {
                data.push(if rng.chance(self.p) { 0.0 } else { keep_scale });
            }
            Tensor::from_vec(data, input.shape().clone())?
        };
        let out = input.mul(&mask)?;
        self.cached_mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let mask = self
            .cached_mask
            .as_ref()
            .ok_or(NnError::NoForwardCache { layer: "dropout" })?;
        Ok(grad_out.mul(mask)?)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(f32::NAN, 0).is_err());
        assert!(Dropout::new(0.0, 0).is_ok());
        assert!(Dropout::new(0.5, 0).is_ok());
    }

    #[test]
    fn inference_is_identity() {
        let drop = Dropout::new(0.9, 0).unwrap();
        let x = Tensor::full(&[100], 3.0);
        assert_eq!(drop.forward(&x).unwrap(), x);
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut drop = Dropout::new(0.3, 1).unwrap();
        let x = Tensor::ones(&[10_000]);
        let y = drop.forward_train(&x).unwrap();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
        // Survivors are scaled by 1/(1−p).
        let survivor = y.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.7).abs() < 1e-5);
    }

    #[test]
    fn expected_value_preserved() {
        let mut drop = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones(&[50_000]);
        let y = drop.forward_train(&x).unwrap();
        assert!((y.mean() - 1.0).abs() < 0.02, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut drop = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones(&[1000]);
        let y = drop.forward_train(&x).unwrap();
        let g = drop.backward(&Tensor::ones(&[1000])).unwrap();
        // The gradient is zero exactly where the forward output was zero.
        for (a, b) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn backward_requires_forward() {
        let mut drop = Dropout::new(0.5, 4).unwrap();
        assert!(matches!(
            drop.backward(&Tensor::ones(&[4])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn p_zero_is_identity_in_training() {
        let mut drop = Dropout::new(0.0, 5).unwrap();
        let x = Tensor::full(&[16], 2.0);
        assert_eq!(drop.forward_train(&x).unwrap(), x);
        assert_eq!(drop.backward(&x).unwrap(), x);
    }

    #[test]
    fn clone_restarts_stream_deterministically() {
        let mut a = Dropout::new(0.5, 6).unwrap();
        let mut b = a.clone();
        let x = Tensor::ones(&[64]);
        assert_eq!(a.forward_train(&x).unwrap(), b.forward_train(&x).unwrap());
        assert_eq!(a.probability(), 0.5);
    }
}
