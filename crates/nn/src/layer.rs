use std::fmt::Debug;

use fademl_tensor::Tensor;

use crate::Result;

/// A trainable parameter: its value and the gradient accumulated by the
/// most recent backward pass(es).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value tensor with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros_like(&value);
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros_like(&self.value);
    }

    /// Number of scalar parameters.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// A neural-network layer with explicit forward and backward passes.
///
/// Two forward entry points exist:
///
/// - [`Layer::forward`] is pure inference — it takes `&self` and caches
///   nothing, so a shared model can serve concurrent evaluation threads.
/// - [`Layer::forward_train`] caches whatever the backward pass needs
///   and must precede every [`Layer::backward`] call.
///
/// [`Layer::backward`] consumes `∂L/∂output`, *accumulates* parameter
/// gradients into the layer's [`Param`]s, and returns `∂L/∂input`. The
/// returned input gradient is what both the optimizer chain and the
/// adversarial attacks are built on.
pub trait Layer: Debug + Send + Sync {
    /// Short static name, e.g. `"conv2d"` (used in error messages and
    /// model summaries).
    fn name(&self) -> &'static str;

    /// Pure inference pass; does not touch any cache.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&self, input: &Tensor) -> Result<Tensor>;

    /// Forward pass that caches activations for a following
    /// [`Layer::backward`] call.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor>;

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the layer input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`](crate::NnError::NoForwardCache)
    /// if no [`Layer::forward_train`] preceded this call, or a shape error
    /// if `grad_out` does not match the cached forward output.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// The layer's trainable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the trainable parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Clones the layer into a boxed trait object (enables cloning whole
    /// models for parallel evaluation).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Zeroes all accumulated parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters in this layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_starts_with_zero_grad() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad, Tensor::zeros(&[2, 3]));
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad = Tensor::full(&[2], 5.0);
        p.zero_grad();
        assert_eq!(p.grad, Tensor::zeros(&[2]));
    }
}
