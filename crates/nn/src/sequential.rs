use std::fmt;

use fademl_tensor::Tensor;

use crate::{Layer, NnError, Param, Result};

/// An ordered stack of layers forming a feed-forward network.
///
/// `Sequential` is the whole-model abstraction used everywhere in the
/// reproduction: the paper's VGGNet is a `Sequential` built by
/// [`vgg::VggConfig::build`](crate::vgg::VggConfig::build).
///
/// Cloning a `Sequential` deep-copies all weights, which is how the
/// experiment runner hands identical victims to parallel workers.
///
/// # Example
///
/// ```
/// use fademl_nn::{Dense, Relu, Sequential};
/// use fademl_tensor::{Tensor, TensorRng};
///
/// # fn main() -> Result<(), fademl_nn::NnError> {
/// let mut rng = TensorRng::seed_from_u64(0);
/// let model = Sequential::new()
///     .push(Dense::new(8, 16, &mut rng))
///     .push(Relu::new())
///     .push(Dense::new(16, 4, &mut rng));
/// let logits = model.forward(&Tensor::zeros(&[2, 8]))?;
/// assert_eq!(logits.dims(), &[2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    #[must_use]
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` if the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Pure inference pass producing logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an empty model or any layer
    /// error for incompatible shapes.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "cannot run forward on an empty model".into(),
            });
        }
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Training forward pass (caches activations in every layer).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sequential::forward`].
    pub fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        if self.layers.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "cannot run forward on an empty model".into(),
            });
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward_train(&x)?;
        }
        Ok(x)
    }

    /// Backward pass through the whole stack. Accumulates parameter
    /// gradients and returns `∂L/∂input` — the quantity adversarial
    /// attacks are built on.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::NoForwardCache`] if [`Sequential::forward_train`]
    /// did not precede this call.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        let mut g = grad_logits.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Softmax class probabilities `[n, classes]` for a batch.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sequential::forward`].
    pub fn predict_proba(&self, input: &Tensor) -> Result<Tensor> {
        Ok(self.forward(input)?.softmax_rows()?)
    }

    /// Predicted class index per sample.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Sequential::forward`].
    pub fn predict(&self, input: &Tensor) -> Result<Vec<usize>> {
        Ok(self.forward(input)?.argmax_rows()?)
    }

    /// All trainable parameters, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Mutable access to all trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Clips the global L2 norm of all accumulated gradients to
    /// `max_norm`, scaling every gradient by the same factor when the
    /// combined norm exceeds it (the standard stabilizer for exploding
    /// gradients). Returns the pre-clip global norm.
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive (a programming error in the
    /// training loop, not a data condition).
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        assert!(
            max_norm > 0.0 && max_norm.is_finite(),
            "max_norm must be positive and finite"
        );
        let total_sq: f32 = self.params().iter().map(|p| p.grad.norm_l2_squared()).sum();
        let total = total_sq.sqrt();
        if total > max_norm {
            let scale = max_norm / total;
            for p in self.params_mut() {
                p.grad = p.grad.scale(scale);
            }
        }
        total
    }

    /// Zeroes every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// A one-line-per-layer architecture summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            out.push_str(&format!(
                "{i:>2}: {:<12} params={}\n",
                layer.name(),
                layer.param_count()
            ));
        }
        out.push_str(&format!("total params: {}", self.param_count()));
        out
    }
}

impl FromIterator<Box<dyn Layer>> for Sequential {
    fn from_iter<I: IntoIterator<Item = Box<dyn Layer>>>(iter: I) -> Self {
        Sequential {
            layers: iter.into_iter().collect(),
        }
    }
}

impl Extend<Box<dyn Layer>> for Sequential {
    fn extend<I: IntoIterator<Item = Box<dyn Layer>>>(&mut self, iter: I) {
        self.layers.extend(iter);
    }
}

impl fmt::Debug for Sequential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sequential")
            .field(
                "layers",
                &self.layers.iter().map(|l| l.name()).collect::<Vec<_>>(),
            )
            .field("param_count", &self.param_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Flatten, Relu};
    use fademl_tensor::TensorRng;

    fn model() -> Sequential {
        let mut rng = TensorRng::seed_from_u64(3);
        Sequential::new()
            .push(Dense::new(6, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 3, &mut rng))
    }

    #[test]
    fn forward_chains_layers() {
        let m = model();
        let y = m.forward(&Tensor::zeros(&[2, 6])).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn empty_model_errors() {
        let m = Sequential::new();
        assert!(m.forward(&Tensor::zeros(&[1, 1])).is_err());
        assert!(m.is_empty());
    }

    #[test]
    fn backward_returns_input_grad() {
        let mut m = model();
        let mut rng = TensorRng::seed_from_u64(4);
        let x = rng.uniform(&[2, 6], -1.0, 1.0);
        let y = m.forward_train(&x).unwrap();
        let gin = m.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gin.dims(), x.dims());
    }

    #[test]
    fn whole_model_gradient_check() {
        let mut m = model();
        let mut rng = TensorRng::seed_from_u64(5);
        let x = rng.uniform(&[1, 6], -1.0, 1.0);
        let y = m.forward_train(&x).unwrap();
        let gin = m.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric =
                (m.forward(&plus).unwrap().sum() - m.forward(&minus).unwrap().sum()) / (2.0 * eps);
            assert!(
                (numeric - gin.as_slice()[idx]).abs() < 2e-2,
                "idx {idx}: numeric {numeric} vs analytic {}",
                gin.as_slice()[idx]
            );
        }
    }

    #[test]
    fn predict_proba_is_distribution() {
        let m = model();
        let p = m.predict_proba(&Tensor::zeros(&[2, 6])).unwrap();
        for r in 0..2 {
            let sum: f32 = p.row(r).unwrap().as_slice().iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn clone_is_deep() {
        let m = model();
        let mut m2 = m.clone();
        let x = Tensor::ones(&[1, 6]);
        let before = m.forward(&x).unwrap();
        // Mutate the clone's weights; original must be unaffected.
        m2.params_mut()[0].value.map_inplace(|w| w + 1.0);
        assert_eq!(m.forward(&x).unwrap(), before);
        assert_ne!(m2.forward(&x).unwrap(), before);
    }

    #[test]
    fn params_round_trip() {
        let mut m = model();
        assert_eq!(m.params().len(), 4); // 2 dense layers × (weight, bias)
        assert_eq!(m.param_count(), 6 * 8 + 8 + 8 * 3 + 3);
        m.zero_grad();
        assert!(m.params().iter().all(|p| p.grad.norm_l2() == 0.0));
    }

    #[test]
    fn clip_grad_norm_scales_down_not_up() {
        let mut m = model();
        let mut rng = TensorRng::seed_from_u64(6);
        let x = rng.uniform(&[2, 6], -1.0, 1.0);
        let y = m.forward_train(&x).unwrap();
        m.backward(&Tensor::full(y.dims(), 100.0)).unwrap();
        let before = m.clip_grad_norm(1.0);
        assert!(before > 1.0, "test needs a large gradient, got {before}");
        // After clipping the global norm is exactly the cap.
        let after: f32 = m
            .params()
            .iter()
            .map(|p| p.grad.norm_l2_squared())
            .sum::<f32>()
            .sqrt();
        assert!((after - 1.0).abs() < 1e-4, "clipped norm {after}");
        // A norm already below the cap is untouched.
        let small_before = m.clip_grad_norm(10.0);
        let untouched: f32 = m
            .params()
            .iter()
            .map(|p| p.grad.norm_l2_squared())
            .sum::<f32>()
            .sqrt();
        assert!((untouched - small_before).abs() < 1e-5);
    }

    #[test]
    fn summary_mentions_layers() {
        let m = Sequential::new().push(Flatten::new());
        let s = m.summary();
        assert!(s.contains("flatten"));
        assert!(s.contains("total params"));
    }

    #[test]
    fn collects_and_extends_from_boxed_layers() {
        let mut rng = TensorRng::seed_from_u64(7);
        let layers: Vec<Box<dyn Layer>> =
            vec![Box::new(Dense::new(4, 8, &mut rng)), Box::new(Relu::new())];
        let mut m: Sequential = layers.into_iter().collect();
        assert_eq!(m.len(), 2);
        m.extend(std::iter::once(
            Box::new(Dense::new(8, 2, &mut rng)) as Box<dyn Layer>
        ));
        assert_eq!(m.len(), 3);
        assert_eq!(m.forward(&Tensor::zeros(&[1, 4])).unwrap().dims(), &[1, 2]);
    }

    #[test]
    fn model_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Sequential>();
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", model()).is_empty());
    }
}
