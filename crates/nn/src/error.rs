use std::error::Error;
use std::fmt;

use fademl_tensor::TensorError;

/// Error type for network construction, training and inference.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape error).
    Tensor(TensorError),
    /// A layer was asked to run backward before any forward pass cached
    /// its activations.
    NoForwardCache {
        /// The layer that was misused.
        layer: &'static str,
    },
    /// Model architecture disagreed with provided data (e.g. label count
    /// vs batch size, or weight file vs parameter shapes).
    ArchMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
    /// A configuration value was invalid (e.g. zero epochs, empty model).
    InvalidConfig {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// Weight (de)serialization failed.
    Io(std::io::Error),
    /// A persisted artifact (weight file, checkpoint) failed an
    /// integrity check: bad magic, truncated body, or CRC mismatch. The
    /// file must not be loaded — its numbers cannot be trusted.
    Corrupt {
        /// Human-readable description of what failed to verify.
        reason: String,
    },
    /// Training diverged (non-finite or spiking loss) and the
    /// divergence guard ran out of rollback budget or had no intact
    /// checkpoint to roll back to.
    Diverged {
        /// The epoch (0-based) at which divergence was detected.
        epoch: usize,
        /// The offending loss value.
        loss: f32,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called on `{layer}` before forward_train")
            }
            NnError::ArchMismatch { reason } => write!(f, "architecture mismatch: {reason}"),
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::Io(e) => write!(f, "i/o error: {e}"),
            NnError::Corrupt { reason } => write!(f, "corrupt artifact: {reason}"),
            NnError::Diverged { epoch, loss } => {
                write!(f, "training diverged at epoch {epoch} (loss {loss})")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::EmptyTensor { op: "argmax" });
        assert!(e.to_string().contains("argmax"));
        assert!(e.source().is_some());
        let e = NnError::NoForwardCache { layer: "conv2d" };
        assert!(e.to_string().contains("conv2d"));
        assert!(e.source().is_none());
    }

    #[test]
    fn corruption_and_divergence_display() {
        let e = NnError::Corrupt {
            reason: "CRC mismatch".into(),
        };
        assert!(e.to_string().contains("CRC mismatch"));
        assert!(e.source().is_none());
        let e = NnError::Diverged {
            epoch: 4,
            loss: f32::NAN,
        };
        assert!(e.to_string().contains("epoch 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
