use std::error::Error;
use std::fmt;

use fademl_tensor::TensorError;

/// Error type for network construction, training and inference.
#[derive(Debug)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed (usually a shape error).
    Tensor(TensorError),
    /// A layer was asked to run backward before any forward pass cached
    /// its activations.
    NoForwardCache {
        /// The layer that was misused.
        layer: &'static str,
    },
    /// Model architecture disagreed with provided data (e.g. label count
    /// vs batch size, or weight file vs parameter shapes).
    ArchMismatch {
        /// Human-readable description of the disagreement.
        reason: String,
    },
    /// A configuration value was invalid (e.g. zero epochs, empty model).
    InvalidConfig {
        /// Human-readable description of the invalid value.
        reason: String,
    },
    /// Weight (de)serialization failed.
    Io(std::io::Error),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::NoForwardCache { layer } => {
                write!(f, "backward called on `{layer}` before forward_train")
            }
            NnError::ArchMismatch { reason } => write!(f, "architecture mismatch: {reason}"),
            NnError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            NnError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            NnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = NnError::from(TensorError::EmptyTensor { op: "argmax" });
        assert!(e.to_string().contains("argmax"));
        assert!(e.source().is_some());
        let e = NnError::NoForwardCache { layer: "conv2d" };
        assert!(e.to_string().contains("conv2d"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
