//! Evaluation metrics in the paper's reporting vocabulary: top-1 / top-5
//! accuracy and per-prediction confidence.

use fademl_tensor::Tensor;

use crate::{NnError, Result, Sequential};

/// A single sample's prediction: ranked classes with probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Class indices ranked by descending probability (top-k, k ≤ classes).
    pub top_classes: Vec<usize>,
    /// Probabilities corresponding to `top_classes`.
    pub top_probs: Vec<f32>,
}

impl Prediction {
    /// The winning class.
    pub fn class(&self) -> usize {
        self.top_classes[0]
    }

    /// The winning class's probability — the paper's "confidence".
    pub fn confidence(&self) -> f32 {
        self.top_probs[0]
    }

    /// Whether `label` appears within the top-k ranks.
    pub fn contains_in_top(&self, label: usize, k: usize) -> bool {
        self.top_classes.iter().take(k).any(|&c| c == label)
    }
}

/// Computes top-`k` ranked predictions for a batch of inputs.
///
/// # Errors
///
/// Propagates model forward errors.
pub fn predict_top_k(model: &Sequential, inputs: &Tensor, k: usize) -> Result<Vec<Prediction>> {
    let probs = model.predict_proba(inputs)?;
    let n = probs.dims()[0];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let row = probs.row(i)?;
        let top_classes = row.top_k(k);
        let top_probs = top_classes.iter().map(|&c| row.as_slice()[c]).collect();
        out.push(Prediction {
            top_classes,
            top_probs,
        });
    }
    Ok(out)
}

/// Fraction of samples whose true label is the top-1 prediction.
///
/// # Errors
///
/// Returns [`NnError::ArchMismatch`] if label/batch counts differ, plus
/// any model forward error.
pub fn top1_accuracy(model: &Sequential, inputs: &Tensor, labels: &[usize]) -> Result<f32> {
    top_k_accuracy(model, inputs, labels, 1)
}

/// Fraction of samples whose true label appears in the top-5 ranked
/// predictions — the headline metric of the paper's Figs. 6, 7 and 9.
///
/// # Errors
///
/// Returns [`NnError::ArchMismatch`] if label/batch counts differ, plus
/// any model forward error.
pub fn top5_accuracy(model: &Sequential, inputs: &Tensor, labels: &[usize]) -> Result<f32> {
    top_k_accuracy(model, inputs, labels, 5)
}

/// Fraction of samples whose true label appears in the top-`k`
/// predictions.
///
/// # Errors
///
/// Returns [`NnError::ArchMismatch`] if label/batch counts differ or `k`
/// is zero, plus any model forward error.
pub fn top_k_accuracy(
    model: &Sequential,
    inputs: &Tensor,
    labels: &[usize],
    k: usize,
) -> Result<f32> {
    if k == 0 {
        return Err(NnError::InvalidConfig {
            reason: "k must be positive".into(),
        });
    }
    if inputs.dims().first().copied().unwrap_or(0) != labels.len() {
        return Err(NnError::ArchMismatch {
            reason: format!(
                "{} labels for a batch of {:?}",
                labels.len(),
                inputs.dims().first()
            ),
        });
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let preds = predict_top_k(model, inputs, k)?;
    let hits = preds
        .iter()
        .zip(labels)
        .filter(|(p, &l)| p.contains_in_top(l, k))
        .count();
    Ok(hits as f32 / labels.len() as f32)
}

/// Per-class top-1 accuracy: entry `c` is the fraction of samples of
/// true class `c` predicted correctly, or `None` when the batch has no
/// samples of that class. Useful for spotting which sign classes a
/// victim confuses (and which scenario sources are soft targets).
///
/// # Errors
///
/// Returns [`NnError::ArchMismatch`] if any label is `>= classes` or
/// the label/batch counts differ.
pub fn per_class_accuracy(
    model: &Sequential,
    inputs: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Result<Vec<Option<f32>>> {
    if inputs.dims().first().copied().unwrap_or(0) != labels.len() {
        return Err(NnError::ArchMismatch {
            reason: "label count does not match batch".into(),
        });
    }
    let preds = model.predict(inputs)?;
    let mut hits = vec![0usize; classes];
    let mut totals = vec![0usize; classes];
    for (&t, &p) in labels.iter().zip(&preds) {
        if t >= classes {
            return Err(NnError::ArchMismatch {
                reason: format!("label {t} out of range {classes}"),
            });
        }
        totals[t] += 1;
        if p == t {
            hits[t] += 1;
        }
    }
    Ok(hits
        .iter()
        .zip(&totals)
        .map(|(&h, &n)| {
            if n == 0 {
                None
            } else {
                Some(h as f32 / n as f32)
            }
        })
        .collect())
}

/// Confusion counts between true and predicted labels for a batch.
///
/// Entry `[t][p]` counts samples of true class `t` predicted as `p`.
///
/// # Errors
///
/// Returns [`NnError::ArchMismatch`] if any label is `>= classes` or the
/// label/batch counts differ.
pub fn confusion_matrix(
    model: &Sequential,
    inputs: &Tensor,
    labels: &[usize],
    classes: usize,
) -> Result<Vec<Vec<usize>>> {
    if inputs.dims().first().copied().unwrap_or(0) != labels.len() {
        return Err(NnError::ArchMismatch {
            reason: "label count does not match batch".into(),
        });
    }
    let preds = model.predict(inputs)?;
    let mut matrix = vec![vec![0usize; classes]; classes];
    for (&t, &p) in labels.iter().zip(&preds) {
        if t >= classes || p >= classes {
            return Err(NnError::ArchMismatch {
                reason: format!("label {t} or prediction {p} out of range {classes}"),
            });
        }
        matrix[t][p] += 1;
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Layer, Sequential};
    use fademl_tensor::{Shape, TensorRng};

    /// A "model" whose logits equal its input (identity dense layer).
    fn identity_model(classes: usize) -> Sequential {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut fc = Dense::new(classes, classes, &mut rng);
        let mut eye = Tensor::zeros(&[classes, classes]);
        for i in 0..classes {
            eye.set(&[i, i], 1.0).unwrap();
        }
        fc.params_mut()[0].value = eye;
        fc.params_mut()[1].value = Tensor::zeros(&[classes]);
        Sequential::new().push(fc)
    }

    fn batch(rows: &[&[f32]]) -> Tensor {
        let cols = rows[0].len();
        let data: Vec<f32> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Tensor::from_vec(data, Shape::new(vec![rows.len(), cols])).unwrap()
    }

    #[test]
    fn top1_counts_exact_hits() {
        let m = identity_model(3);
        let x = batch(&[&[5.0, 0.0, 0.0], &[0.0, 0.0, 5.0]]);
        assert_eq!(top1_accuracy(&m, &x, &[0, 2]).unwrap(), 1.0);
        assert_eq!(top1_accuracy(&m, &x, &[1, 2]).unwrap(), 0.5);
    }

    #[test]
    fn top5_more_forgiving_than_top1() {
        let m = identity_model(6);
        // True class ranks 2nd.
        let x = batch(&[&[1.0, 5.0, 0.0, 0.0, 0.0, 0.0]]);
        assert_eq!(top1_accuracy(&m, &x, &[0]).unwrap(), 0.0);
        assert_eq!(top5_accuracy(&m, &x, &[0]).unwrap(), 1.0);
    }

    #[test]
    fn top_k_at_class_count_is_total() {
        let m = identity_model(3);
        let x = batch(&[&[0.0, 1.0, 2.0]]);
        assert_eq!(top_k_accuracy(&m, &x, &[0], 3).unwrap(), 1.0);
    }

    #[test]
    fn predictions_ranked_descending() {
        let m = identity_model(4);
        let x = batch(&[&[0.1, 3.0, 1.0, 2.0]]);
        let p = &predict_top_k(&m, &x, 4).unwrap()[0];
        assert_eq!(p.top_classes, vec![1, 3, 2, 0]);
        assert_eq!(p.class(), 1);
        assert!(p.confidence() > 0.25);
        for w in p.top_probs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn confidence_is_probability() {
        let m = identity_model(3);
        let x = batch(&[&[100.0, 0.0, 0.0]]);
        let p = &predict_top_k(&m, &x, 1).unwrap()[0];
        assert!(p.confidence() > 0.99 && p.confidence() <= 1.0);
    }

    #[test]
    fn validation_errors() {
        let m = identity_model(3);
        let x = batch(&[&[1.0, 0.0, 0.0]]);
        assert!(top1_accuracy(&m, &x, &[0, 1]).is_err()); // label count
        assert!(top_k_accuracy(&m, &x, &[0], 0).is_err()); // k = 0
    }

    #[test]
    fn per_class_accuracy_splits_by_class() {
        let m = identity_model(3);
        let x = batch(&[
            &[5.0, 0.0, 0.0], // true 0, pred 0 ✓
            &[5.0, 0.0, 0.0], // true 0, pred 0 ✓
            &[5.0, 0.0, 0.0], // true 1, pred 0 ✗
        ]);
        let acc = per_class_accuracy(&m, &x, &[0, 0, 1], 3).unwrap();
        assert_eq!(acc[0], Some(1.0));
        assert_eq!(acc[1], Some(0.0));
        assert_eq!(acc[2], None); // no samples of class 2
        assert!(per_class_accuracy(&m, &x, &[0, 0, 9], 3).is_err());
        assert!(per_class_accuracy(&m, &x, &[0, 0], 3).is_err());
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = identity_model(3);
        let x = batch(&[&[5.0, 0.0, 0.0], &[5.0, 0.0, 0.0], &[0.0, 0.0, 5.0]]);
        let cm = confusion_matrix(&m, &x, &[0, 1, 2], 3).unwrap();
        assert_eq!(cm[0][0], 1); // true 0 → pred 0
        assert_eq!(cm[1][0], 1); // true 1 → pred 0 (misclassified)
        assert_eq!(cm[2][2], 1);
        assert!(confusion_matrix(&m, &x, &[0, 1, 9], 3).is_err());
    }
}
