use fademl_tensor::{Tensor, TensorError};

use crate::dense::one_hot;
use crate::{NnError, Result};

/// The value of a loss together with its gradient w.r.t. the logits.
#[derive(Debug, Clone, PartialEq)]
pub struct LossValue {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shaped like the logits `[n, classes]`.
    pub grad: Tensor,
}

/// A differentiable training objective over logits and integer labels.
pub trait Loss: std::fmt::Debug {
    /// Computes the batch-mean loss and its gradient w.r.t. the logits.
    ///
    /// # Errors
    ///
    /// Returns an error if `logits` is not `[n, classes]` or any label is
    /// out of range.
    fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<LossValue>;
}

/// Softmax cross-entropy, the classification loss used to train the
/// paper's VGGNet and inside every attack objective.
///
/// The fused softmax+CE gradient is the numerically friendly
/// `(softmax(z) − onehot(y)) / n`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        CrossEntropyLoss
    }
}

fn check_batch(logits: &Tensor, labels: &[usize]) -> Result<(usize, usize)> {
    if logits.rank() != 2 {
        return Err(NnError::Tensor(TensorError::RankMismatch {
            op: "loss",
            expected: 2,
            actual: logits.rank(),
        }));
    }
    let (n, k) = (logits.dims()[0], logits.dims()[1]);
    if labels.len() != n {
        return Err(NnError::ArchMismatch {
            reason: format!("{} labels for a batch of {n}", labels.len()),
        });
    }
    Ok((n, k))
}

impl Loss for CrossEntropyLoss {
    fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<LossValue> {
        let (n, k) = check_batch(logits, labels)?;
        let probs = logits.softmax_rows()?;
        let mut loss = 0.0f32;
        for (i, &label) in labels.iter().enumerate() {
            if label >= k {
                return Err(NnError::Tensor(TensorError::IndexOutOfBounds {
                    index: vec![label],
                    shape: vec![k],
                }));
            }
            // Clamp avoids -inf when a probability underflows to 0.
            loss -= probs.get(&[i, label])?.max(1e-12).ln();
        }
        let one_hot = one_hot(labels, k)?;
        let grad = probs.sub(&one_hot)?.scale(1.0 / n as f32);
        Ok(LossValue {
            loss: loss / n as f32,
            grad,
        })
    }
}

/// Mean squared error against one-hot targets. Included as a baseline
/// objective and for testing optimizer behaviour on a convex-ish loss.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates the loss.
    pub fn new() -> Self {
        MseLoss
    }
}

impl Loss for MseLoss {
    fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<LossValue> {
        let (n, k) = check_batch(logits, labels)?;
        let target = one_hot(labels, k)?;
        let diff = logits.sub(&target)?;
        let loss = diff.norm_l2_squared() / (n * k) as f32;
        let grad = diff.scale(2.0 / (n * k) as f32);
        Ok(LossValue { loss, grad })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::{Shape, TensorRng};

    fn logits(v: &[f32], n: usize, k: usize) -> Tensor {
        Tensor::from_vec(v.to_vec(), Shape::new(vec![n, k])).unwrap()
    }

    #[test]
    fn ce_is_low_for_confident_correct() {
        let good = logits(&[10.0, -10.0], 1, 2);
        let bad = logits(&[-10.0, 10.0], 1, 2);
        let ce = CrossEntropyLoss::new();
        assert!(ce.compute(&good, &[0]).unwrap().loss < 1e-3);
        assert!(ce.compute(&bad, &[0]).unwrap().loss > 10.0);
    }

    #[test]
    fn ce_uniform_is_log_k() {
        let ce = CrossEntropyLoss::new();
        let z = Tensor::zeros(&[1, 4]);
        let lv = ce.compute(&z, &[2]).unwrap();
        assert!((lv.loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let ce = CrossEntropyLoss::new();
        let mut rng = TensorRng::seed_from_u64(1);
        let z = rng.uniform(&[2, 5], -2.0, 2.0);
        let labels = [3usize, 1];
        let lv = ce.compute(&z, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..10 {
            let mut plus = z.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = z.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (ce.compute(&plus, &labels).unwrap().loss
                - ce.compute(&minus, &labels).unwrap().loss)
                / (2.0 * eps);
            let analytic = lv.grad.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "idx {idx}: {numeric} vs {analytic}"
            );
        }
    }

    #[test]
    fn ce_grad_rows_sum_to_zero() {
        // softmax − onehot sums to zero per row.
        let ce = CrossEntropyLoss::new();
        let mut rng = TensorRng::seed_from_u64(2);
        let z = rng.uniform(&[3, 4], -1.0, 1.0);
        let lv = ce.compute(&z, &[0, 1, 2]).unwrap();
        for r in 0..3 {
            let s: f32 = lv.grad.row(r).unwrap().as_slice().iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn ce_handles_extreme_logits() {
        let ce = CrossEntropyLoss::new();
        let z = logits(&[1000.0, -1000.0], 1, 2);
        let lv = ce.compute(&z, &[1]).unwrap();
        assert!(lv.loss.is_finite());
        assert!(!lv.grad.has_non_finite());
    }

    #[test]
    fn mse_zero_at_target() {
        let mse = MseLoss::new();
        let z = logits(&[1.0, 0.0, 0.0, 1.0], 2, 2);
        let lv = mse.compute(&z, &[0, 1]).unwrap();
        assert!(lv.loss.abs() < 1e-9);
        assert!(lv.grad.norm_l2() < 1e-9);
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let mse = MseLoss::new();
        let mut rng = TensorRng::seed_from_u64(3);
        let z = rng.uniform(&[2, 3], -1.0, 1.0);
        let labels = [2usize, 0];
        let lv = mse.compute(&z, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut plus = z.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = z.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (mse.compute(&plus, &labels).unwrap().loss
                - mse.compute(&minus, &labels).unwrap().loss)
                / (2.0 * eps);
            assert!((numeric - lv.grad.as_slice()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let ce = CrossEntropyLoss::new();
        assert!(ce.compute(&Tensor::zeros(&[4]), &[0]).is_err());
        assert!(ce.compute(&Tensor::zeros(&[2, 3]), &[0]).is_err()); // wrong label count
        assert!(ce.compute(&Tensor::zeros(&[1, 3]), &[3]).is_err()); // label out of range
    }
}
