use fademl_tensor::{max_pool2d, max_pool2d_backward, PoolSpec, Shape, Tensor};

use crate::{Layer, NnError, Result};

/// A 2-D max-pooling layer over NCHW input.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    spec: PoolSpec,
    cache: Option<(Vec<usize>, Shape)>,
}

impl MaxPool2d {
    /// Creates a max-pool layer with the given geometry.
    pub fn new(spec: PoolSpec) -> Self {
        MaxPool2d { spec, cache: None }
    }

    /// The conventional 2×2 stride-2 pool.
    pub fn half() -> Self {
        MaxPool2d::new(PoolSpec::half())
    }

    /// The layer's geometry.
    pub fn spec(&self) -> &PoolSpec {
        &self.spec
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "max_pool2d"
    }

    fn forward(&self, input: &Tensor) -> Result<Tensor> {
        Ok(max_pool2d(input, &self.spec)?.output)
    }

    fn forward_train(&mut self, input: &Tensor) -> Result<Tensor> {
        let pooled = max_pool2d(input, &self.spec)?;
        self.cache = Some((pooled.argmax, input.shape().clone()));
        Ok(pooled.output)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let (argmax, in_shape) = self.cache.as_ref().ok_or(NnError::NoForwardCache {
            layer: "max_pool2d",
        })?;
        Ok(max_pool2d_backward(grad_out, argmax, in_shape)?)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::TensorRng;

    #[test]
    fn halves_spatial_dims() {
        let pool = MaxPool2d::half();
        let out = pool.forward(&Tensor::zeros(&[1, 2, 8, 8])).unwrap();
        assert_eq!(out.dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn backward_shape_matches_input() {
        let mut pool = MaxPool2d::half();
        let mut rng = TensorRng::seed_from_u64(1);
        let x = rng.uniform(&[2, 3, 6, 6], -1.0, 1.0);
        let y = pool.forward_train(&x).unwrap();
        let gin = pool.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gin.dims(), x.dims());
        // Gradient mass is conserved: one unit per output element.
        assert!((gin.sum() - y.numel() as f32).abs() < 1e-4);
    }

    #[test]
    fn backward_requires_forward() {
        let mut pool = MaxPool2d::half();
        assert!(matches!(
            pool.backward(&Tensor::zeros(&[1, 1, 2, 2])),
            Err(NnError::NoForwardCache { .. })
        ));
    }

    #[test]
    fn stateless_inference() {
        let pool = MaxPool2d::half();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        assert_eq!(pool.forward(&x).unwrap(), pool.forward(&x).unwrap());
        assert_eq!(pool.param_count(), 0);
    }
}
