use fademl_tensor::Tensor;

use crate::{NnError, Param, Result};

/// A complete, serializable snapshot of an optimizer's mutable state
/// (momentum buffers / Adam moments plus the hyper-parameters needed to
/// continue the run), captured by checkpoints and restored on resume so
/// a resumed run steps *identically* to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptimizerState {
    /// [`Sgd`] state.
    Sgd {
        /// Learning rate at capture time (includes any decay applied).
        lr: f32,
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
        /// Per-parameter velocity buffers (empty before the first
        /// momentum step).
        velocity: Vec<Tensor>,
    },
    /// [`Adam`] state.
    Adam {
        /// Learning rate at capture time.
        lr: f32,
        /// β₁.
        beta1: f32,
        /// β₂.
        beta2: f32,
        /// ε.
        eps: f32,
        /// Step counter (drives bias correction).
        t: u32,
        /// First-moment estimates, one per parameter.
        m: Vec<Tensor>,
        /// Second-moment estimates, one per parameter.
        v: Vec<Tensor>,
    },
}

impl OptimizerState {
    /// Short kind label for error messages and checkpoint headers.
    pub fn kind(&self) -> &'static str {
        match self {
            OptimizerState::Sgd { .. } => "SGD",
            OptimizerState::Adam { .. } => "Adam",
        }
    }
}

/// A first-order optimizer stepping a list of parameters given their
/// accumulated gradients.
///
/// Implementations may keep per-parameter state (momentum buffers,
/// moment estimates) keyed by the *position* of the parameter in the
/// list, so callers must always pass the same parameter order — which
/// [`Sequential::params_mut`](crate::Sequential::params_mut) guarantees.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step. Does **not** zero gradients; call
    /// [`Sequential::zero_grad`](crate::Sequential::zero_grad) before the
    /// next backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if parameter/state shapes disagree (only possible
    /// if the parameter list changed between steps).
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Captures the optimizer's full mutable state for checkpointing.
    fn export_state(&self) -> OptimizerState;

    /// Restores state captured by [`Optimizer::export_state`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ArchMismatch`] when `state` belongs to a
    /// different optimizer kind.
    fn import_state(&mut self, state: OptimizerState) -> Result<()>;
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            momentum,
            ..Sgd::new(lr)
        }
    }

    /// Adds L2 weight decay (builder style).
    #[must_use]
    pub fn weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.momentum == 0.0 {
            for p in params.iter_mut() {
                if self.weight_decay > 0.0 {
                    let decay = p.value.scale(self.weight_decay);
                    p.grad.add_scaled_inplace(&decay, 1.0)?;
                }
                let grad = p.grad.clone();
                p.value.add_scaled_inplace(&grad, -self.lr)?;
            }
            return Ok(());
        }
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.weight_decay > 0.0 {
                let decay = p.value.scale(self.weight_decay);
                p.grad.add_scaled_inplace(&decay, 1.0)?;
            }
            // v ← μ·v + g ; θ ← θ − lr·v
            let mut new_v = v.scale(self.momentum);
            new_v.add_scaled_inplace(&p.grad, 1.0)?;
            p.value.add_scaled_inplace(&new_v, -self.lr)?;
            *v = new_v;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Sgd {
            lr: self.lr,
            momentum: self.momentum,
            weight_decay: self.weight_decay,
            velocity: self.velocity.clone(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<()> {
        match state {
            OptimizerState::Sgd {
                lr,
                momentum,
                weight_decay,
                velocity,
            } => {
                self.lr = lr;
                self.momentum = momentum;
                self.weight_decay = weight_decay;
                self.velocity = velocity;
                Ok(())
            }
            other => Err(NnError::ArchMismatch {
                reason: format!(
                    "cannot restore {} state into an SGD optimizer",
                    other.kind()
                ),
            }),
        }
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.as_slice();
            let value = p.value.as_mut_slice();
            for i in 0..g.len() {
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g[i];
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g[i] * g[i];
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn export_state(&self) -> OptimizerState {
        OptimizerState::Adam {
            lr: self.lr,
            beta1: self.beta1,
            beta2: self.beta2,
            eps: self.eps,
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    fn import_state(&mut self, state: OptimizerState) -> Result<()> {
        match state {
            OptimizerState::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
                m,
                v,
            } => {
                self.lr = lr;
                self.beta1 = beta1;
                self.beta2 = beta2;
                self.eps = eps;
                self.t = t;
                self.m = m;
                self.v = v;
                Ok(())
            }
            other => Err(NnError::ArchMismatch {
                reason: format!(
                    "cannot restore {} state into an Adam optimizer",
                    other.kind()
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One quadratic-bowl step: loss = ½‖θ‖², grad = θ.
    fn quad_step(opt: &mut dyn Optimizer, p: &mut Param) {
        p.grad = p.value.clone();
        opt.step(&mut [p]).unwrap();
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut p = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..80 {
            quad_step(&mut opt, &mut p);
        }
        assert!(p.value.norm_l2() < 1e-2, "norm {}", p.value.norm_l2());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.05);
        let mut momentum = Sgd::with_momentum(0.05, 0.9);
        let mut p1 = Param::new(Tensor::full(&[4], 1.0));
        let mut p2 = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..10 {
            quad_step(&mut plain, &mut p1);
            quad_step(&mut momentum, &mut p2);
        }
        assert!(p2.value.norm_l2() < p1.value.norm_l2());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        // Zero task gradient: decay alone should shrink the weight.
        p.grad = Tensor::zeros(&[2]);
        opt.step(&mut [&mut p]).unwrap();
        assert!(p.value.as_slice()[0] < 1.0);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..200 {
            quad_step(&mut opt, &mut p);
        }
        assert!(p.value.norm_l2() < 5e-2, "norm {}", p.value.norm_l2());
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        let mut opt = Adam::new(0.01);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::from_vec(vec![1.0, 0.0], [2].into()).unwrap();
        opt.step(&mut [&mut p]).unwrap();
        // Only the first coordinate moves.
        assert!(p.value.as_slice()[0] < 1.0);
        assert_eq!(p.value.as_slice()[1], 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.3);
        assert_eq!(opt.learning_rate(), 0.3);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        let mut adam = Adam::new(0.2);
        adam.set_learning_rate(0.05);
        assert_eq!(adam.learning_rate(), 0.05);
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        // Two optimizers on identical parameters: run A for 5 steps,
        // snapshot, pour the state into B, then both must produce
        // byte-identical trajectories.
        for make in [
            || Box::new(Sgd::with_momentum(0.05, 0.9)) as Box<dyn Optimizer>,
            || Box::new(Adam::new(0.05)) as Box<dyn Optimizer>,
        ] {
            let mut a = make();
            let mut pa = Param::new(Tensor::full(&[4], 1.0));
            for _ in 0..5 {
                quad_step(a.as_mut(), &mut pa);
            }
            let mut b = make();
            let mut pb = Param::new(pa.value.clone());
            b.import_state(a.export_state()).unwrap();
            for _ in 0..5 {
                quad_step(a.as_mut(), &mut pa);
                quad_step(b.as_mut(), &mut pb);
            }
            assert_eq!(pa.value, pb.value);
        }
    }

    #[test]
    fn import_rejects_wrong_kind() {
        let sgd = Sgd::new(0.1);
        let mut adam = Adam::new(0.1);
        assert!(matches!(
            adam.import_state(sgd.export_state()),
            Err(NnError::ArchMismatch { .. })
        ));
        let mut sgd = Sgd::new(0.1);
        assert!(sgd.import_state(Adam::new(0.2).export_state()).is_err());
        assert_eq!(sgd.export_state().kind(), "SGD");
    }

    #[test]
    fn step_does_not_zero_grads() {
        let mut opt = Sgd::new(0.1);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::ones(&[2]);
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(p.grad, Tensor::ones(&[2]));
    }
}
