use fademl_tensor::Tensor;

use crate::{Param, Result};

/// A first-order optimizer stepping a list of parameters given their
/// accumulated gradients.
///
/// Implementations may keep per-parameter state (momentum buffers,
/// moment estimates) keyed by the *position* of the parameter in the
/// list, so callers must always pass the same parameter order — which
/// [`Sequential::params_mut`](crate::Sequential::params_mut) guarantees.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step. Does **not** zero gradients; call
    /// [`Sequential::zero_grad`](crate::Sequential::zero_grad) before the
    /// next backward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if parameter/state shapes disagree (only possible
    /// if the parameter list changed between steps).
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()>;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum and weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            momentum,
            ..Sgd::new(lr)
        }
    }

    /// Adds L2 weight decay (builder style).
    #[must_use]
    pub fn weight_decay(mut self, decay: f32) -> Self {
        self.weight_decay = decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.momentum == 0.0 {
            for p in params.iter_mut() {
                if self.weight_decay > 0.0 {
                    let decay = p.value.scale(self.weight_decay);
                    p.grad.add_scaled_inplace(&decay, 1.0)?;
                }
                let grad = p.grad.clone();
                p.value.add_scaled_inplace(&grad, -self.lr)?;
            }
            return Ok(());
        }
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            if self.weight_decay > 0.0 {
                let decay = p.value.scale(self.weight_decay);
                p.grad.add_scaled_inplace(&decay, 1.0)?;
            }
            // v ← μ·v + g ; θ ← θ − lr·v
            let mut new_v = v.scale(self.momentum);
            new_v.add_scaled_inplace(&p.grad, 1.0)?;
            p.value.add_scaled_inplace(&new_v, -self.lr)?;
            *v = new_v;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias-corrected moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) -> Result<()> {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros_like(&p.value))
                .collect();
            self.t = 0;
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.as_slice();
            let value = p.value.as_mut_slice();
            for i in 0..g.len() {
                let mi = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * g[i];
                let vi = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * g[i] * g[i];
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                value[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One quadratic-bowl step: loss = ½‖θ‖², grad = θ.
    fn quad_step(opt: &mut dyn Optimizer, p: &mut Param) {
        p.grad = p.value.clone();
        opt.step(&mut [p]).unwrap();
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut p = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..80 {
            quad_step(&mut opt, &mut p);
        }
        assert!(p.value.norm_l2() < 1e-2, "norm {}", p.value.norm_l2());
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.05);
        let mut momentum = Sgd::with_momentum(0.05, 0.9);
        let mut p1 = Param::new(Tensor::full(&[4], 1.0));
        let mut p2 = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..10 {
            quad_step(&mut plain, &mut p1);
            quad_step(&mut momentum, &mut p2);
        }
        assert!(p2.value.norm_l2() < p1.value.norm_l2());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        // Zero task gradient: decay alone should shrink the weight.
        p.grad = Tensor::zeros(&[2]);
        opt.step(&mut [&mut p]).unwrap();
        assert!(p.value.as_slice()[0] < 1.0);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::full(&[4], 1.0));
        for _ in 0..200 {
            quad_step(&mut opt, &mut p);
        }
        assert!(p.value.norm_l2() < 5e-2, "norm {}", p.value.norm_l2());
    }

    #[test]
    fn adam_handles_sparse_gradients() {
        let mut opt = Adam::new(0.01);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::from_vec(vec![1.0, 0.0], [2].into()).unwrap();
        opt.step(&mut [&mut p]).unwrap();
        // Only the first coordinate moves.
        assert!(p.value.as_slice()[0] < 1.0);
        assert_eq!(p.value.as_slice()[1], 1.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.3);
        assert_eq!(opt.learning_rate(), 0.3);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        let mut adam = Adam::new(0.2);
        adam.set_learning_rate(0.05);
        assert_eq!(adam.learning_rate(), 0.05);
    }

    #[test]
    fn step_does_not_zero_grads() {
        let mut opt = Sgd::new(0.1);
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad = Tensor::ones(&[2]);
        opt.step(&mut [&mut p]).unwrap();
        assert_eq!(p.grad, Tensor::ones(&[2]));
    }
}
