//! The paper's victim model: a VGG-style CNN (Fig. 4 — five
//! convolutional stages followed by one fully-connected classifier).
//!
//! The original VGGNet channel plan (64/128/256/512/512) is available as
//! [`VggProfile::Paper`]; the experiments default to the
//! [`VggProfile::Compact`] plan, which keeps the same topology at a size
//! a pure-Rust CPU build can train in seconds (see DESIGN.md §4 for the
//! substitution rationale).

use fademl_tensor::{ConvSpec, TensorRng};
use serde::{Deserialize, Serialize};

use crate::{Conv2d, Dense, Flatten, MaxPool2d, NnError, Relu, Result, Sequential};

/// Predefined channel plans for the five convolutional stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum VggProfile {
    /// The channel plan from the paper's Fig. 4: 64/128/256/512/512.
    Paper,
    /// Same 5-stage topology at 8/16/32/48/64 channels (experiment default).
    Compact,
    /// Two stages at 4/8 channels — for fast unit tests.
    Tiny,
}

impl VggProfile {
    /// The per-stage output channel counts.
    pub fn stage_channels(self) -> Vec<usize> {
        match self {
            VggProfile::Paper => vec![64, 128, 256, 512, 512],
            VggProfile::Compact => vec![8, 16, 32, 48, 64],
            VggProfile::Tiny => vec![4, 8],
        }
    }
}

/// Configuration for building a VGG-style [`Sequential`] model.
///
/// # Example
///
/// ```
/// use fademl_nn::vgg::{VggConfig, VggProfile};
/// use fademl_tensor::TensorRng;
///
/// # fn main() -> Result<(), fademl_nn::NnError> {
/// let mut rng = TensorRng::seed_from_u64(0);
/// let config = VggConfig::new(VggProfile::Compact, 3, 32, 43);
/// let model = config.build(&mut rng)?;
/// assert!(model.param_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VggConfig {
    /// Per-stage output channel counts (one conv per stage).
    pub stage_channels: Vec<usize>,
    /// Input channel count (3 for RGB traffic signs).
    pub in_channels: usize,
    /// Input spatial size (square images).
    pub input_size: usize,
    /// Number of output classes (43 for GTSRB).
    pub classes: usize,
    /// Insert a [`BatchNorm2d`](crate::BatchNorm2d) after every
    /// convolution (a modernization the original VGG lacks; used by the
    /// ablation benches).
    pub batch_norm: bool,
    /// Dropout probability applied before the classification head
    /// (`None` disables it).
    pub dropout: Option<f32>,
}

impl VggConfig {
    /// A config using one of the predefined profiles.
    pub fn new(profile: VggProfile, in_channels: usize, input_size: usize, classes: usize) -> Self {
        VggConfig {
            stage_channels: profile.stage_channels(),
            in_channels,
            input_size,
            classes,
            batch_norm: false,
            dropout: None,
        }
    }

    /// Enables batch normalization after every convolution (builder
    /// style).
    #[must_use]
    pub fn with_batch_norm(mut self) -> Self {
        self.batch_norm = true;
        self
    }

    /// Enables dropout with probability `p` before the classification
    /// head (builder style).
    #[must_use]
    pub fn with_dropout(mut self, p: f32) -> Self {
        self.dropout = Some(p);
        self
    }

    /// The test-sized two-stage network.
    pub fn tiny(in_channels: usize, input_size: usize, classes: usize) -> Self {
        VggConfig::new(VggProfile::Tiny, in_channels, input_size, classes)
    }

    /// Spatial size after all pooling stages, and whether each stage pools.
    fn plan(&self) -> Result<(usize, Vec<bool>)> {
        if self.stage_channels.is_empty() {
            return Err(NnError::InvalidConfig {
                reason: "at least one convolutional stage is required".into(),
            });
        }
        if self.input_size == 0 || self.in_channels == 0 || self.classes == 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "input_size ({}), in_channels ({}) and classes ({}) must be positive",
                    self.input_size, self.in_channels, self.classes
                ),
            });
        }
        let mut size = self.input_size;
        let mut pools = Vec::with_capacity(self.stage_channels.len());
        for _ in &self.stage_channels {
            // Pool whenever the feature map can still be halved.
            let pool = size >= 2;
            if pool {
                size /= 2;
            }
            pools.push(pool);
        }
        Ok((size, pools))
    }

    /// Spatial size of the final feature map.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate configurations.
    pub fn final_spatial(&self) -> Result<usize> {
        Ok(self.plan()?.0)
    }

    /// Builds the model: per stage `conv3x3(pad 1) → ReLU → maxpool2`,
    /// then `flatten → dense(classes)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for degenerate configurations
    /// (no stages, zero classes, or an input too small for the stage count).
    pub fn build(&self, rng: &mut TensorRng) -> Result<Sequential> {
        let (final_size, pools) = self.plan()?;
        if final_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: format!(
                    "input size {} collapses to zero after {} pooling stages",
                    self.input_size,
                    self.stage_channels.len()
                ),
            });
        }
        let mut model = Sequential::new();
        let mut in_ch = self.in_channels;
        for (&out_ch, &pool) in self.stage_channels.iter().zip(&pools) {
            model.push_boxed(Box::new(Conv2d::new(
                ConvSpec::new(in_ch, out_ch, 3, 1, 1),
                rng,
            )));
            if self.batch_norm {
                model.push_boxed(Box::new(crate::BatchNorm2d::new(out_ch)?));
            }
            model.push_boxed(Box::new(Relu::new()));
            if pool {
                model.push_boxed(Box::new(MaxPool2d::half()));
            }
            in_ch = out_ch;
        }
        model.push_boxed(Box::new(Flatten::new()));
        if let Some(p) = self.dropout {
            model.push_boxed(Box::new(crate::Dropout::new(p, 0x000d_1007)?));
        }
        let features = in_ch * final_size * final_size;
        model.push_boxed(Box::new(Dense::new(features, self.classes, rng)));
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl_tensor::Tensor;

    #[test]
    fn compact_profile_shapes() {
        let mut rng = TensorRng::seed_from_u64(0);
        let config = VggConfig::new(VggProfile::Compact, 3, 32, 43);
        let model = config.build(&mut rng).unwrap();
        let logits = model.forward(&Tensor::zeros(&[2, 3, 32, 32])).unwrap();
        assert_eq!(logits.dims(), &[2, 43]);
        // 5 stages × (conv, relu, pool) + flatten + dense
        assert_eq!(model.len(), 5 * 3 + 2);
    }

    #[test]
    fn paper_profile_matches_fig4() {
        let config = VggConfig::new(VggProfile::Paper, 3, 32, 43);
        assert_eq!(config.stage_channels, vec![64, 128, 256, 512, 512]);
        let mut rng = TensorRng::seed_from_u64(0);
        let model = config.build(&mut rng).unwrap();
        // Shape-check only (the Paper profile is too slow to train in tests).
        let logits = model.forward(&Tensor::zeros(&[1, 3, 32, 32])).unwrap();
        assert_eq!(logits.dims(), &[1, 43]);
        // Conv1 weight: [64, 3, 3, 3].
        assert_eq!(model.params()[0].value.dims(), &[64, 3, 3, 3]);
    }

    #[test]
    fn tiny_profile_small() {
        let mut rng = TensorRng::seed_from_u64(0);
        let model = VggConfig::tiny(3, 16, 4).build(&mut rng).unwrap();
        let logits = model.forward(&Tensor::zeros(&[1, 3, 16, 16])).unwrap();
        assert_eq!(logits.dims(), &[1, 4]);
    }

    #[test]
    fn final_spatial_math() {
        assert_eq!(
            VggConfig::new(VggProfile::Compact, 3, 32, 43)
                .final_spatial()
                .unwrap(),
            1
        );
        assert_eq!(VggConfig::tiny(3, 16, 4).final_spatial().unwrap(), 4);
    }

    #[test]
    fn degenerate_configs_rejected() {
        let mut rng = TensorRng::seed_from_u64(0);
        let empty = VggConfig {
            stage_channels: vec![],
            ..VggConfig::tiny(3, 32, 10)
        };
        assert!(empty.build(&mut rng).is_err());
        let zero_classes = VggConfig {
            classes: 0,
            ..VggConfig::tiny(3, 16, 4)
        };
        assert!(zero_classes.build(&mut rng).is_err());
        let zero_input = VggConfig {
            input_size: 0,
            ..VggConfig::tiny(3, 16, 4)
        };
        assert!(zero_input.build(&mut rng).is_err());
    }

    #[test]
    fn odd_input_size_still_builds() {
        // 30 → 15 → 7 → 3 → 1 → (no pool on last stage).
        let mut rng = TensorRng::seed_from_u64(0);
        let config = VggConfig::new(VggProfile::Compact, 3, 30, 10);
        let model = config.build(&mut rng).unwrap();
        let logits = model.forward(&Tensor::zeros(&[1, 3, 30, 30])).unwrap();
        assert_eq!(logits.dims(), &[1, 10]);
    }

    #[test]
    fn batch_norm_variant_inserts_layers() {
        let mut rng = TensorRng::seed_from_u64(0);
        let plain = VggConfig::tiny(3, 16, 4).build(&mut rng).unwrap();
        let mut rng = TensorRng::seed_from_u64(0);
        let bn = VggConfig::tiny(3, 16, 4)
            .with_batch_norm()
            .build(&mut rng)
            .unwrap();
        assert_eq!(bn.len(), plain.len() + 2); // one BN per conv stage
        let logits = bn.forward(&Tensor::zeros(&[2, 3, 16, 16])).unwrap();
        assert_eq!(logits.dims(), &[2, 4]);
    }

    #[test]
    fn dropout_variant_trains_and_infers() {
        let mut rng = TensorRng::seed_from_u64(0);
        let mut model = VggConfig::tiny(3, 16, 4)
            .with_dropout(0.3)
            .build(&mut rng)
            .unwrap();
        let x = Tensor::ones(&[2, 3, 16, 16]);
        // Inference is deterministic even with dropout present.
        assert_eq!(model.forward(&x).unwrap(), model.forward(&x).unwrap());
        // Training pass runs end to end.
        let y = model.forward_train(&x).unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        let gin = model
            .backward(&fademl_tensor::Tensor::ones(y.dims()))
            .unwrap();
        assert_eq!(gin.dims(), x.dims());
        // Invalid dropout probability is rejected at build time.
        let mut rng = TensorRng::seed_from_u64(0);
        assert!(VggConfig::tiny(3, 16, 4)
            .with_dropout(1.5)
            .build(&mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_build_from_seed() {
        let config = VggConfig::tiny(3, 16, 4);
        let mut r1 = TensorRng::seed_from_u64(7);
        let mut r2 = TensorRng::seed_from_u64(7);
        let m1 = config.build(&mut r1).unwrap();
        let m2 = config.build(&mut r2).unwrap();
        let x = Tensor::ones(&[1, 3, 16, 16]);
        assert_eq!(m1.forward(&x).unwrap(), m2.forward(&x).unwrap());
    }
}
