//! Model weight persistence.
//!
//! Weights are stored in a small self-describing binary format (magic +
//! per-parameter shape and little-endian `f32` payload) so a trained
//! victim model can be reused across experiment binaries without
//! pulling a serialization-format dependency into the workspace.
//!
//! Loading is *state-dict style*: the architecture is rebuilt in code and
//! the weights are poured into it positionally, with every shape checked
//! against the target model **before** any tensor data is allocated.
//!
//! Two format versions exist:
//!
//! - `FADEMLW2` (current): the body is followed by a CRC-32 trailer, so
//!   truncation, torn writes and bit-flips are detected before a single
//!   weight is interpreted. Writers always produce this version, and
//!   [`save_weights_to_path`] writes it atomically (temp file + rename).
//! - `FADEMLW1` (legacy): no trailer. Still readable; corruption in a
//!   v1 file is only caught by the shape checks.

use std::io::{Read, Write};
use std::path::Path;

use fademl_tensor::io::{atomic_write, crc32, read_artifact, ByteReader, ByteWriter};
use fademl_tensor::{Shape, Tensor};

use crate::{NnError, Result, Sequential};

const MAGIC_V1: &[u8; 8] = b"FADEMLW1";
const MAGIC_V2: &[u8; 8] = b"FADEMLW2";

/// Parsing cap: no real model in this workspace has parameters beyond
/// rank 4, so anything larger is corruption, not data. Checked before
/// the dims vector is allocated.
const MAX_RANK: usize = 8;

fn corrupt(reason: impl Into<String>) -> NnError {
    NnError::Corrupt {
        reason: reason.into(),
    }
}

/// Serializes all model parameters to the current (`FADEMLW2`) format.
pub fn encode_weights(model: &Sequential) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let params = model.params();
    w.put_u32(params.len() as u32);
    for p in params {
        let dims = p.value.dims();
        w.put_u32(dims.len() as u32);
        for &d in dims {
            w.put_u64(d as u64);
        }
        for &x in p.value.as_slice() {
            w.put_f32(x);
        }
    }
    let body = w.into_bytes();
    let mut out = Vec::with_capacity(MAGIC_V2.len() + body.len() + 4);
    out.extend_from_slice(MAGIC_V2);
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

/// Writes all model parameters to `writer` in the `FADEMLW2` format.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_weights<W: Write>(model: &Sequential, mut writer: W) -> Result<()> {
    writer.write_all(&encode_weights(model))?;
    writer.flush()?;
    Ok(())
}

/// Atomically writes all model parameters to a file path: the bytes are
/// staged in a same-directory temp file, synced, and renamed over the
/// destination, so a crash mid-write leaves either the old file or the
/// new one — never a torn hybrid.
///
/// # Errors
///
/// Returns [`NnError::Io`] on create/write/rename failure.
pub fn save_weights_to_path<P: AsRef<Path>>(model: &Sequential, path: P) -> Result<()> {
    atomic_write(path.as_ref(), &encode_weights(model))?;
    Ok(())
}

/// Parses a weight file (either version) into an existing model. The
/// model must have been built with the same architecture — parameter
/// count and every shape are verified against the model before any
/// tensor data is allocated.
///
/// # Errors
///
/// Returns [`NnError::Corrupt`] for bad magic, truncation or a CRC
/// mismatch, and [`NnError::ArchMismatch`] when an intact file does not
/// match the model's parameter list.
pub fn decode_weights(bytes: &[u8], model: &mut Sequential) -> Result<()> {
    if bytes.len() < MAGIC_V2.len() {
        return Err(corrupt(format!(
            "file too small for a weight file ({} bytes)",
            bytes.len()
        )));
    }
    let (magic, rest) = bytes.split_at(MAGIC_V2.len());
    if magic == MAGIC_V2 {
        if rest.len() < 4 {
            return Err(corrupt("missing CRC trailer"));
        }
        let (body, trailer) = rest.split_at(rest.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        let actual = crc32(body);
        if stored != actual {
            return Err(corrupt(format!(
                "CRC mismatch: trailer {stored:#010x}, computed {actual:#010x}"
            )));
        }
        parse_params(body, model, true)
    } else if magic == MAGIC_V1 {
        // Legacy files have no trailer; shape checks are the only guard.
        parse_params(rest, model, false)
    } else {
        Err(corrupt("not a FAdeML weight file (bad magic)"))
    }
}

/// Parses the parameter records shared by both format versions.
/// `verified` marks a CRC-checked body, where any structural surprise
/// is corruption the CRC somehow missed (reported as such) rather than
/// an I/O condition.
fn parse_params(body: &[u8], model: &mut Sequential, verified: bool) -> Result<()> {
    let rd = |e: std::io::Error| {
        if verified {
            corrupt(e.to_string())
        } else {
            NnError::Io(e)
        }
    };
    let mut r = ByteReader::new(body);
    let count = r.get_u32().map_err(rd)? as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(NnError::ArchMismatch {
            reason: format!(
                "weight file has {count} parameters, model has {}",
                params.len()
            ),
        });
    }
    // First pass: staged values, so a failure mid-file never leaves the
    // model half-overwritten.
    let mut staged: Vec<Tensor> = Vec::with_capacity(count);
    for (i, p) in params.iter().enumerate() {
        let rank = r.get_u32().map_err(rd)? as usize;
        if rank > MAX_RANK {
            return Err(corrupt(format!(
                "parameter {i}: implausible tensor rank {rank}"
            )));
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.get_u64().map_err(rd)? as usize);
        }
        if dims != p.value.dims() {
            return Err(NnError::ArchMismatch {
                reason: format!(
                    "parameter {i}: file shape {dims:?} vs model shape {:?}",
                    p.value.dims()
                ),
            });
        }
        // The shape matched the live model, so the element count is
        // bounded by the model itself — safe to allocate.
        let numel: usize = dims.iter().product();
        let byte_len = numel
            .checked_mul(4)
            .ok_or_else(|| corrupt("tensor byte length overflows"))?;
        let raw = r.get_bytes(byte_len).map_err(rd)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        staged.push(Tensor::from_vec(data, Shape::new(dims))?);
    }
    if verified && r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the weight records",
            r.remaining()
        )));
    }
    for (p, value) in params.iter_mut().zip(staged) {
        p.value = value;
    }
    Ok(())
}

/// Reads weights from `reader` into an existing model.
///
/// # Errors
///
/// Returns [`NnError::Io`] on read failure, plus the conditions of
/// [`decode_weights`].
pub fn load_weights<R: Read>(model: &mut Sequential, mut reader: R) -> Result<()> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode_weights(&bytes, model)
}

/// Reads weights from a file path into an existing model. Refuses
/// leftover staging files from interrupted atomic writes.
///
/// # Errors
///
/// Same conditions as [`load_weights`].
pub fn load_weights_from_path<P: AsRef<Path>>(model: &mut Sequential, path: P) -> Result<()> {
    let bytes = read_artifact(path.as_ref())?;
    decode_weights(&bytes, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use fademl_tensor::TensorRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(4, 6, &mut rng))
            .push(Relu::new())
            .push(Dense::new(6, 3, &mut rng))
    }

    /// Handcrafts a legacy `FADEMLW1` file (no CRC trailer).
    fn encode_v1(model: &Sequential) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        let params = model.params();
        buf.extend_from_slice(&(params.len() as u32).to_le_bytes());
        for p in params {
            let dims = p.value.dims();
            buf.extend_from_slice(&(dims.len() as u32).to_le_bytes());
            for &d in dims {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in p.value.as_slice() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();

        let mut target = model(2); // different init
        let x = Tensor::ones(&[2, 4]);
        assert_ne!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
        load_weights(&mut target, buf.as_slice()).unwrap();
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
    }

    #[test]
    fn legacy_v1_files_still_load() {
        let source = model(1);
        let v1 = encode_v1(&source);
        let mut target = model(2);
        load_weights(&mut target, v1.as_slice()).unwrap();
        let x = Tensor::ones(&[2, 4]);
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load_weights(&mut m, &b"NOTMAGIC\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, NnError::Corrupt { .. }));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();
        // A model with different layer widths must refuse the file.
        let mut rng = TensorRng::seed_from_u64(3);
        let mut other = Sequential::new().push(Dense::new(4, 5, &mut rng));
        assert!(load_weights(&mut other, buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut target = model(2);
        // Truncation breaks the CRC trailer: typed corruption, not I/O.
        assert!(matches!(
            load_weights(&mut target, buf.as_slice()),
            Err(NnError::Corrupt { .. })
        ));
    }

    #[test]
    fn bit_flips_anywhere_are_detected() {
        let source = model(1);
        let clean = encode_weights(&source);
        for at in (0..clean.len()).step_by(41) {
            let mut bad = clean.clone();
            bad[at] ^= 0x10;
            let mut target = model(2);
            assert!(
                matches!(
                    decode_weights(&bad, &mut target),
                    Err(NnError::Corrupt { .. })
                ),
                "flip at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn failed_load_leaves_model_untouched() {
        let source = model(1);
        let mut buf = encode_v1(&source);
        // Chop mid-payload: the v1 path fails partway through parsing.
        buf.truncate(buf.len() - 10);
        let mut target = model(2);
        let x = Tensor::ones(&[2, 4]);
        let before = target.forward(&x).unwrap();
        assert!(load_weights(&mut target, buf.as_slice()).is_err());
        assert_eq!(
            target.forward(&x).unwrap(),
            before,
            "failed load must not half-overwrite the model"
        );
    }

    #[test]
    fn legacy_rank_bomb_is_rejected_before_allocating() {
        // A v1 header claiming a rank in the millions used to drive a
        // speculative allocation; now it is a typed corruption error.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.extend_from_slice(&4u32.to_le_bytes()); // matches model param count
        buf.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd rank
        let mut m = model(1);
        assert!(matches!(
            load_weights(&mut m, buf.as_slice()),
            Err(NnError::Corrupt { .. })
        ));
    }

    #[test]
    fn file_round_trip_is_atomic_and_refuses_staging_files() {
        let dir = std::env::temp_dir().join("fademl_weight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let source = model(1);
        save_weights_to_path(&source, &path).unwrap();
        let mut target = model(2);
        load_weights_from_path(&mut target, &path).unwrap();
        let x = Tensor::ones(&[1, 4]);
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());

        // A leftover staging file is never loadable.
        let staged = dir.join(".weights.bin.tmp.123");
        std::fs::write(&staged, encode_weights(&source)).unwrap();
        assert!(load_weights_from_path(&mut target, &staged).is_err());
        std::fs::remove_file(&staged).ok();
        std::fs::remove_file(&path).ok();
    }
}
