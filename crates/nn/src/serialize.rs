//! Model weight persistence.
//!
//! Weights are stored in a small self-describing binary format (magic +
//! version + per-parameter shape and little-endian `f32` payload) so a
//! trained victim model can be reused across experiment binaries without
//! pulling a serialization-format dependency into the workspace.
//!
//! Loading is *state-dict style*: the architecture is rebuilt in code and
//! the weights are poured into it positionally, with every shape checked.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use fademl_tensor::{Shape, Tensor};

use crate::{NnError, Result, Sequential};

const MAGIC: &[u8; 8] = b"FADEMLW1";

/// Writes all model parameters to `writer`.
///
/// # Errors
///
/// Returns [`NnError::Io`] on write failure.
pub fn save_weights<W: Write>(model: &Sequential, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let params = model.params();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let dims = p.value.dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &x in p.value.as_slice() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Writes all model parameters to a file path.
///
/// A mut reference can be passed for the writer in [`save_weights`]; this
/// helper simply opens the file for you.
///
/// # Errors
///
/// Returns [`NnError::Io`] on create/write failure.
pub fn save_weights_to_path<P: AsRef<Path>>(model: &Sequential, path: P) -> Result<()> {
    save_weights(model, File::create(path)?)
}

/// Reads weights from `reader` into an existing model. The model must
/// have been built with the same architecture (parameter order and
/// shapes are verified).
///
/// # Errors
///
/// Returns [`NnError::Io`] on read failure and
/// [`NnError::ArchMismatch`] when the stream does not match the model's
/// parameter list.
pub fn load_weights<R: Read>(model: &mut Sequential, reader: R) -> Result<()> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NnError::ArchMismatch {
            reason: "not a FAdeML weight file (bad magic)".into(),
        });
    }
    let mut u32_buf = [0u8; 4];
    r.read_exact(&mut u32_buf)?;
    let count = u32::from_le_bytes(u32_buf) as usize;
    let mut params = model.params_mut();
    if count != params.len() {
        return Err(NnError::ArchMismatch {
            reason: format!(
                "weight file has {count} parameters, model has {}",
                params.len()
            ),
        });
    }
    let mut u64_buf = [0u8; 8];
    for (i, p) in params.iter_mut().enumerate() {
        r.read_exact(&mut u32_buf)?;
        let rank = u32::from_le_bytes(u32_buf) as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64_buf)?;
            dims.push(u64::from_le_bytes(u64_buf) as usize);
        }
        if dims != p.value.dims() {
            return Err(NnError::ArchMismatch {
                reason: format!(
                    "parameter {i}: file shape {dims:?} vs model shape {:?}",
                    p.value.dims()
                ),
            });
        }
        let numel: usize = dims.iter().product();
        let mut data = vec![0.0f32; numel];
        for x in &mut data {
            r.read_exact(&mut u32_buf)?;
            *x = f32::from_le_bytes(u32_buf);
        }
        p.value = Tensor::from_vec(data, Shape::new(dims))?;
    }
    Ok(())
}

/// Reads weights from a file path into an existing model.
///
/// # Errors
///
/// Same conditions as [`load_weights`].
pub fn load_weights_from_path<P: AsRef<Path>>(model: &mut Sequential, path: P) -> Result<()> {
    load_weights(model, File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use fademl_tensor::TensorRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = TensorRng::seed_from_u64(seed);
        Sequential::new()
            .push(Dense::new(4, 6, &mut rng))
            .push(Relu::new())
            .push(Dense::new(6, 3, &mut rng))
    }

    #[test]
    fn round_trip_preserves_outputs() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();

        let mut target = model(2); // different init
        let x = Tensor::ones(&[2, 4]);
        assert_ne!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
        load_weights(&mut target, buf.as_slice()).unwrap();
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let err = load_weights(&mut m, &b"NOTMAGIC\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, NnError::ArchMismatch { .. }));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();
        // A model with different layer widths must refuse the file.
        let mut rng = TensorRng::seed_from_u64(3);
        let mut other = Sequential::new().push(Dense::new(4, 5, &mut rng));
        assert!(load_weights(&mut other, buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_stream() {
        let source = model(1);
        let mut buf = Vec::new();
        save_weights(&source, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut target = model(2);
        assert!(matches!(
            load_weights(&mut target, buf.as_slice()),
            Err(NnError::Io(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("fademl_weight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let source = model(1);
        save_weights_to_path(&source, &path).unwrap();
        let mut target = model(2);
        load_weights_from_path(&mut target, &path).unwrap();
        let x = Tensor::ones(&[1, 4]);
        assert_eq!(source.forward(&x).unwrap(), target.forward(&x).unwrap());
        std::fs::remove_file(&path).ok();
    }
}
