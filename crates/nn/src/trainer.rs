use fademl_tensor::{Tensor, TensorRng};

use crate::checkpoint::{CheckpointConfig, CheckpointStore, TrainState};
use crate::metrics::top1_accuracy;
use crate::{Adam, CrossEntropyLoss, Loss, NnError, Optimizer, Result, Sequential, Sgd};

/// Which optimizer the [`Trainer`] should construct.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum OptimizerKind {
    /// SGD with momentum 0.9.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with default betas.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Seed for shuffling.
    pub seed: u64,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// If `true`, prints one progress line per epoch to stderr.
    pub verbose: bool,
    /// Early stopping: stop when training accuracy has not improved for
    /// this many consecutive epochs (`None` disables it).
    pub patience: Option<usize>,
    /// Divergence guard for [`Trainer::fit_durable`]: roll back to the
    /// last intact checkpoint with a reduced learning rate instead of
    /// aborting when the loss goes non-finite or spikes (`None`
    /// disables it; ignored by plain [`Trainer::fit`]).
    pub divergence: Option<DivergenceGuard>,
    /// Compute threads for the parallel tensor kernels during this fit.
    /// `0` (the default) leaves the process-wide setting untouched
    /// (`FADEML_THREADS` or auto-detection); a positive value installs
    /// a [`fademl_tensor::par::set_threads`] override at fit entry.
    /// Kernel results are bit-exact for every thread count, so this
    /// knob never changes trained weights.
    pub compute_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            optimizer: OptimizerKind::Adam { lr: 1e-3 },
            seed: 0,
            lr_decay: 1.0,
            verbose: false,
            patience: None,
            divergence: None,
            compute_threads: 0,
        }
    }
}

/// Policy for detecting and surviving training divergence in
/// [`Trainer::fit_durable`].
///
/// An epoch counts as diverged when its mean loss is non-finite or
/// exceeds `spike_factor` × the previous epoch's loss. On divergence
/// the trainer restores the last intact checkpoint (or the run-start
/// state when none exists yet), multiplies the learning rate by
/// `lr_backoff` — compounding across consecutive rollbacks — and
/// retries. After `max_rollbacks` rollbacks the run fails with
/// [`NnError::Diverged`].
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceGuard {
    /// Loss-spike threshold relative to the previous epoch (> 1.0).
    pub spike_factor: f32,
    /// Absolute loss ceiling: any epoch loss above this counts as
    /// divergence even with no previous epoch to compare against
    /// (`f32::INFINITY` disables the ceiling).
    pub max_loss: f32,
    /// Learning-rate multiplier applied on each rollback (in (0, 1)).
    pub lr_backoff: f32,
    /// Rollback budget before giving up.
    pub max_rollbacks: usize,
}

impl Default for DivergenceGuard {
    fn default() -> Self {
        DivergenceGuard {
            spike_factor: 4.0,
            max_loss: f32::INFINITY,
            lr_backoff: 0.5,
            max_rollbacks: 3,
        }
    }
}

/// Observer verdict after each completed epoch of
/// [`Trainer::fit_durable_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainSignal {
    /// Keep training.
    Continue,
    /// Stop *now*, without writing any further checkpoint — simulates a
    /// crash at this boundary. The returned [`FitReport`] has
    /// `completed == false`.
    Halt,
}

/// Outcome of a durable training run.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Per-epoch statistics, including epochs replayed from a resumed
    /// checkpoint's history.
    pub history: TrainHistory,
    /// The checkpoint generation this run resumed from, if any.
    pub resumed_from_epoch: Option<u64>,
    /// `true` when training ran to its configured end (or stopped
    /// early via patience); `false` when the observer halted it.
    pub completed: bool,
    /// Number of divergence rollbacks performed.
    pub rollbacks: usize,
    /// Number of checkpoint generations written by this run.
    pub checkpoints_written: usize,
}

/// Statistics for one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over all minibatches.
    pub loss: f32,
    /// Top-1 accuracy on the training set after the epoch.
    pub train_accuracy: f32,
}

/// Per-epoch training history returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainHistory {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// The final epoch's training accuracy (0.0 before any training).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }
}

/// Minibatch training loop: shuffles, batches, runs
/// forward/backward/step, and records per-epoch statistics.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    loss: CrossEntropyLoss,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            loss: CrossEntropyLoss::new(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `images` (`[n, c, h, w]`) with integer `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero epochs/batch size,
    /// [`NnError::ArchMismatch`] when labels and batch disagree, and
    /// propagates any forward/backward error.
    pub fn fit(
        &mut self,
        model: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<TrainHistory> {
        if self.config.epochs == 0 || self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: "epochs and batch_size must be positive".into(),
            });
        }
        if self.config.compute_threads > 0 {
            fademl_tensor::par::set_threads(self.config.compute_threads);
        }
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() || n == 0 {
            return Err(NnError::ArchMismatch {
                reason: format!("{} labels for {} images", labels.len(), n),
            });
        }

        let mut optimizer: Box<dyn Optimizer> = match self.config.optimizer {
            OptimizerKind::SgdMomentum { lr } => Box::new(Sgd::with_momentum(lr, 0.9)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        };
        let mut rng = TensorRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = TrainHistory::default();
        let mut best_accuracy = 0.0f32;
        let mut stale_epochs = 0usize;

        for epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch_images: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| images.index_batch(i))
                    .collect::<std::result::Result<_, _>>()?;
                let batch = Tensor::stack(&batch_images)?;
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

                model.zero_grad();
                let logits = model.forward_train(&batch)?;
                let lv = self.loss.compute(&logits, &batch_labels)?;
                model.backward(&lv.grad)?;
                optimizer.step(&mut model.params_mut())?;

                epoch_loss += lv.loss;
                batches += 1;
            }
            let train_accuracy = top1_accuracy(model, images, labels)?;
            let stats = EpochStats {
                loss: epoch_loss / batches.max(1) as f32,
                train_accuracy,
            };
            if self.config.verbose {
                eprintln!(
                    "epoch {:>3}: loss {:.4}  train acc {:.1}%",
                    epoch + 1,
                    stats.loss,
                    stats.train_accuracy * 100.0
                );
            }
            history.epochs.push(stats);
            if let Some(patience) = self.config.patience {
                if train_accuracy > best_accuracy + 1e-6 {
                    best_accuracy = train_accuracy;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= patience {
                        if self.config.verbose {
                            eprintln!(
                                "early stop after {} epochs ({} without improvement)",
                                epoch + 1,
                                stale_epochs
                            );
                        }
                        break;
                    }
                }
            }
            let lr = optimizer.learning_rate() * self.config.lr_decay;
            optimizer.set_learning_rate(lr);
        }
        Ok(history)
    }

    /// [`Trainer::fit_durable_with`] without an observer: trains to the
    /// configured epoch count, checkpointing periodically and resuming
    /// automatically from the newest intact generation in `ckpt.dir`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Trainer::fit_durable_with`].
    pub fn fit_durable(
        &mut self,
        model: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
        ckpt: &CheckpointConfig,
    ) -> Result<FitReport> {
        self.fit_durable_with(model, images, labels, ckpt, |_, _| TrainSignal::Continue)
    }

    /// Durable training loop: periodic checkpoints, crash resume, and
    /// divergence rollback.
    ///
    /// On entry the newest intact checkpoint generation in `ckpt.dir`
    /// (if any) is restored — model weights, optimizer state, learning
    /// rate, RNG stream position and history — and training continues
    /// from that epoch. Because the full random state round-trips, a
    /// run interrupted at a checkpoint boundary and resumed produces
    /// **byte-identical final weights** to an uninterrupted run with
    /// the same seed.
    ///
    /// `observe` runs after every completed epoch (after any checkpoint
    /// for that epoch was written); returning [`TrainSignal::Halt`]
    /// stops immediately *without* writing anything further, which is
    /// how the tests and the demo simulate a crash.
    ///
    /// When [`TrainConfig::divergence`] is set, a non-finite or spiking
    /// epoch loss triggers a rollback to the last intact checkpoint (or
    /// the run-start state) with a compounding learning-rate backoff
    /// instead of poisoning the run; the rollback budget is bounded by
    /// [`DivergenceGuard::max_rollbacks`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero epochs, batch size
    /// or checkpoint period, [`NnError::ArchMismatch`] when a resumed
    /// checkpoint does not fit `model`, [`NnError::Diverged`] when the
    /// rollback budget is exhausted, and propagates checkpoint IO
    /// failures as [`NnError::Io`].
    pub fn fit_durable_with<F>(
        &mut self,
        model: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
        ckpt: &CheckpointConfig,
        mut observe: F,
    ) -> Result<FitReport>
    where
        F: FnMut(usize, &EpochStats) -> TrainSignal,
    {
        if self.config.epochs == 0 || self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: "epochs and batch_size must be positive".into(),
            });
        }
        if ckpt.every_epochs == 0 {
            return Err(NnError::InvalidConfig {
                reason: "checkpoint period must be positive".into(),
            });
        }
        if self.config.compute_threads > 0 {
            fademl_tensor::par::set_threads(self.config.compute_threads);
        }
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() || n == 0 {
            return Err(NnError::ArchMismatch {
                reason: format!("{} labels for {} images", labels.len(), n),
            });
        }

        let store = CheckpointStore::open(&ckpt.dir, ckpt.retain)?;
        let mut optimizer: Box<dyn Optimizer> = match self.config.optimizer {
            OptimizerKind::SgdMomentum { lr } => Box::new(Sgd::with_momentum(lr, 0.9)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        };

        let mut resumed_from_epoch = None;
        let (mut rng, mut history, mut epochs_done);
        if let Some((gen, state)) = store.latest_intact()? {
            state.apply_to(model)?;
            optimizer.import_state(state.optimizer.clone())?;
            rng = state.resume_rng();
            history = state.history.clone();
            epochs_done = state.epochs_done as usize;
            resumed_from_epoch = Some(gen);
            if self.config.verbose {
                eprintln!("resumed from checkpoint generation {gen}");
            }
        } else {
            rng = TensorRng::seed_from_u64(self.config.seed);
            history = TrainHistory::default();
            epochs_done = 0;
        }
        // Rollback target of last resort, before any checkpoint exists.
        let anchor = TrainState::capture(
            model,
            optimizer.as_ref(),
            &rng,
            &history,
            epochs_done as u64,
        );

        let mut rollbacks = 0usize;
        let mut lr_scale = 1.0f32;
        let mut checkpoints_written = 0usize;
        let mut last_saved = resumed_from_epoch;
        let mut prev_loss = history.epochs.last().map(|e| e.loss);
        let (mut best_accuracy, mut stale_epochs) = replay_patience(&history);

        while epochs_done < self.config.epochs {
            let stats = self.run_epoch(model, images, labels, optimizer.as_mut(), &mut rng, n)?;

            if let Some(guard) = self.config.divergence.clone() {
                let spiked = prev_loss
                    .map(|p| stats.loss > guard.spike_factor * p.max(f32::MIN_POSITIVE))
                    .unwrap_or(false);
                if !stats.loss.is_finite() || stats.loss > guard.max_loss || spiked {
                    rollbacks += 1;
                    if rollbacks > guard.max_rollbacks {
                        return Err(NnError::Diverged {
                            epoch: epochs_done,
                            loss: stats.loss,
                        });
                    }
                    let diverged_epoch = epochs_done + 1;
                    let state = match store.latest_intact()? {
                        Some((_, state)) => state,
                        None => anchor.clone(),
                    };
                    state.apply_to(model)?;
                    optimizer.import_state(state.optimizer.clone())?;
                    lr_scale *= guard.lr_backoff;
                    optimizer.set_learning_rate(state.learning_rate * lr_scale);
                    rng = state.resume_rng();
                    history = state.history.clone();
                    epochs_done = state.epochs_done as usize;
                    prev_loss = history.epochs.last().map(|e| e.loss);
                    (best_accuracy, stale_epochs) = replay_patience(&history);
                    if self.config.verbose {
                        eprintln!(
                            "divergence at epoch {diverged_epoch} (loss {}): rolled back to epoch {epochs_done}, lr scale {lr_scale}",
                            stats.loss
                        );
                    }
                    continue;
                }
            }

            if self.config.verbose {
                eprintln!(
                    "epoch {:>3}: loss {:.4}  train acc {:.1}%",
                    epochs_done + 1,
                    stats.loss,
                    stats.train_accuracy * 100.0
                );
            }
            prev_loss = Some(stats.loss);
            history.epochs.push(stats.clone());
            epochs_done += 1;
            let lr = optimizer.learning_rate() * self.config.lr_decay;
            optimizer.set_learning_rate(lr);

            let mut stop_early = false;
            if let Some(patience) = self.config.patience {
                if stats.train_accuracy > best_accuracy + 1e-6 {
                    best_accuracy = stats.train_accuracy;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    stop_early = stale_epochs >= patience;
                }
            }

            let boundary = epochs_done % ckpt.every_epochs == 0;
            if boundary || epochs_done == self.config.epochs || stop_early {
                let state = TrainState::capture(
                    model,
                    optimizer.as_ref(),
                    &rng,
                    &history,
                    epochs_done as u64,
                );
                store.save(&state)?;
                checkpoints_written += 1;
                last_saved = Some(epochs_done as u64);
            }

            if observe(epochs_done, &stats) == TrainSignal::Halt {
                return Ok(FitReport {
                    history,
                    resumed_from_epoch,
                    completed: false,
                    rollbacks,
                    checkpoints_written,
                });
            }
            if stop_early {
                if self.config.verbose {
                    eprintln!("early stop after {epochs_done} epochs ({stale_epochs} without improvement)");
                }
                break;
            }
        }

        if last_saved != Some(epochs_done as u64) {
            let state = TrainState::capture(
                model,
                optimizer.as_ref(),
                &rng,
                &history,
                epochs_done as u64,
            );
            store.save(&state)?;
            checkpoints_written += 1;
        }
        Ok(FitReport {
            history,
            resumed_from_epoch,
            completed: true,
            rollbacks,
            checkpoints_written,
        })
    }

    /// One shuffled pass over the data. Unlike [`Trainer::fit`], the
    /// visit order is re-derived from the RNG alone each epoch (not
    /// carried over from the previous shuffle), so an epoch is a pure
    /// function of the captured RNG state — the property checkpoint
    /// resume depends on.
    fn run_epoch(
        &mut self,
        model: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
        rng: &mut TensorRng,
        n: usize,
    ) -> Result<EpochStats> {
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(self.config.batch_size) {
            let batch_images: Vec<Tensor> = chunk
                .iter()
                .map(|&i| images.index_batch(i))
                .collect::<std::result::Result<_, _>>()?;
            let batch = Tensor::stack(&batch_images)?;
            let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

            model.zero_grad();
            let logits = model.forward_train(&batch)?;
            let lv = self.loss.compute(&logits, &batch_labels)?;
            model.backward(&lv.grad)?;
            optimizer.step(&mut model.params_mut())?;

            epoch_loss += lv.loss;
            batches += 1;
        }
        let train_accuracy = top1_accuracy(model, images, labels)?;
        Ok(EpochStats {
            loss: epoch_loss / batches.max(1) as f32,
            train_accuracy,
        })
    }
}

/// Reconstructs the early-stopping counters from a (possibly resumed)
/// history, applying the same update rule [`Trainer::fit`] uses, so
/// patience state never needs to live in the checkpoint.
fn replay_patience(history: &TrainHistory) -> (f32, usize) {
    let mut best_accuracy = 0.0f32;
    let mut stale_epochs = 0usize;
    for e in &history.epochs {
        if e.train_accuracy > best_accuracy + 1e-6 {
            best_accuracy = e.train_accuracy;
            stale_epochs = 0;
        } else {
            stale_epochs += 1;
        }
    }
    (best_accuracy, stale_epochs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use fademl_tensor::Shape;

    /// A linearly separable 2-class toy problem.
    fn toy_data() -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::seed_from_u64(42);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            rows.push(center + rng.uniform_scalar(-0.5, 0.5));
            rows.push(center + rng.uniform_scalar(-0.5, 0.5));
            labels.push(class);
        }
        (
            Tensor::from_vec(rows, Shape::new(vec![40, 2])).unwrap(),
            labels,
        )
    }

    fn mlp() -> Sequential {
        let mut rng = TensorRng::seed_from_u64(1);
        Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = toy_data();
        let mut model = mlp();
        // 100 epochs: Adam at the default 1e-3 needs the extra steps to
        // climb out of this seed's small-weight init on the toy net.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 100,
            batch_size: 8,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert_eq!(history.epochs.len(), 100);
        assert!(
            history.final_accuracy() > 0.95,
            "final acc {}",
            history.final_accuracy()
        );
        // Loss decreased overall.
        assert!(history.epochs.last().unwrap().loss < history.epochs[0].loss);
    }

    #[test]
    fn sgd_also_learns() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 8,
            optimizer: OptimizerKind::SgdMomentum { lr: 0.05 },
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(history.final_accuracy() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = toy_data();
        let run = || {
            let mut model = mlp();
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 8,
                seed: 9,
                ..TrainConfig::default()
            });
            trainer.fit(&mut model, &x, &y).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_bad_configs() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut t = Trainer::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
        assert!(t.fit(&mut model, &x, &y).is_err());
        let mut t = Trainer::new(TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        });
        assert!(t.fit(&mut model, &x, &y).is_err());
        let mut t = Trainer::new(TrainConfig::default());
        assert!(t.fit(&mut model, &x, &y[..5]).is_err());
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let (x, y) = toy_data();
        let mut model = mlp();
        // The toy problem saturates at 100% within a few epochs, so with
        // patience 2 the run must stop well before the 100-epoch cap.
        // 100 epochs: Adam at the default 1e-3 needs the extra steps to
        // climb out of this seed's small-weight init on the toy net.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 100,
            batch_size: 8,
            patience: Some(5),
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(
            history.epochs.len() < 100,
            "ran all {} epochs despite patience",
            history.epochs.len()
        );
        // Training still made progress before stopping.
        assert!(history.final_accuracy() >= history.epochs[0].train_accuracy);
    }

    #[test]
    fn patience_none_runs_all_epochs() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 12,
            batch_size: 8,
            patience: None,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert_eq!(history.epochs.len(), 12);
    }

    #[test]
    fn lr_decay_applies() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            lr_decay: 0.5,
            ..TrainConfig::default()
        });
        // Smoke test: decaying LR must not break training.
        assert!(trainer.fit(&mut model, &x, &y).is_ok());
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fademl_fit_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn weights(model: &Sequential) -> Vec<Tensor> {
        model.params().iter().map(|p| p.value.clone()).collect()
    }

    #[test]
    fn durable_run_writes_generations_and_reports() {
        let (x, y) = toy_data();
        let dir = ckpt_dir("fresh");
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 8,
            lr_decay: 0.9,
            ..TrainConfig::default()
        });
        let ckpt = crate::CheckpointConfig::new(&dir).every(2).retain(2);
        let report = trainer.fit_durable(&mut model, &x, &y, &ckpt).unwrap();
        assert!(report.completed);
        assert_eq!(report.resumed_from_epoch, None);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.history.epochs.len(), 6);
        // Epochs 2, 4 and 6 were checkpointed; retention keeps 4 and 6.
        assert_eq!(report.checkpoints_written, 3);
        let store = crate::CheckpointStore::open(&dir, 2).unwrap();
        let gens: Vec<u64> = store
            .generations()
            .unwrap()
            .into_iter()
            .map(|(g, _)| g)
            .collect();
        assert_eq!(gens, vec![4, 6]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_resume_is_byte_identical_to_uninterrupted() {
        let (x, y) = toy_data();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 8,
            seed: 11,
            lr_decay: 0.9,
            ..TrainConfig::default()
        };

        // Reference: one uninterrupted durable run.
        let dir_a = ckpt_dir("uninterrupted");
        let mut model_a = mlp();
        let report_a = Trainer::new(config.clone())
            .fit_durable(
                &mut model_a,
                &x,
                &y,
                &crate::CheckpointConfig::new(&dir_a).every(2),
            )
            .unwrap();

        // Crash-and-resume: halt right after the epoch-4 checkpoint
        // (simulating a kill at a checkpoint boundary), then resume.
        let dir_b = ckpt_dir("resumed");
        let ckpt_b = crate::CheckpointConfig::new(&dir_b).every(2);
        let mut model_b = mlp();
        let crashed = Trainer::new(config.clone())
            .fit_durable_with(&mut model_b, &x, &y, &ckpt_b, |epoch, _| {
                if epoch == 4 {
                    TrainSignal::Halt
                } else {
                    TrainSignal::Continue
                }
            })
            .unwrap();
        assert!(!crashed.completed);
        assert_eq!(crashed.history.epochs.len(), 4);

        // Resume into a FRESH model: everything must come from disk.
        let mut model_b = mlp();
        let report_b = Trainer::new(config)
            .fit_durable(&mut model_b, &x, &y, &ckpt_b)
            .unwrap();
        assert_eq!(report_b.resumed_from_epoch, Some(4));
        assert!(report_b.completed);

        assert_eq!(
            weights(&model_a),
            weights(&model_b),
            "resumed run must reproduce the uninterrupted run bit-for-bit"
        );
        assert_eq!(report_a.history, report_b.history);
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn parallel_training_is_deterministic_and_matches_serial() {
        let (x, y) = toy_data();
        let run = |threads: usize, tag: &str| {
            let dir = ckpt_dir(tag);
            let mut model = mlp();
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 4,
                batch_size: 8,
                seed: 23,
                compute_threads: threads,
                ..TrainConfig::default()
            });
            let report = trainer
                .fit_durable(&mut model, &x, &y, &crate::CheckpointConfig::new(&dir))
                .unwrap();
            assert!(report.completed);
            let _ = std::fs::remove_dir_all(&dir);
            (weights(&model), report.history)
        };
        // Two pooled runs agree with each other AND with a serial run:
        // the par kernels are bit-exact, so the thread count can never
        // leak into the weights.
        let (w_par_a, h_par_a) = run(4, "par_a");
        let (w_par_b, h_par_b) = run(4, "par_b");
        let (w_serial, h_serial) = run(1, "serial");
        assert_eq!(w_par_a, w_par_b, "two 4-thread runs must be byte-identical");
        assert_eq!(
            w_par_a, w_serial,
            "4-thread weights must match the serial run bit-for-bit"
        );
        assert_eq!(h_par_a, h_par_b);
        assert_eq!(h_par_a, h_serial);
        fademl_tensor::par::set_threads(1);
    }

    #[test]
    fn divergence_guard_rolls_back_and_recovers() {
        let (x, y) = toy_data();
        let dir = ckpt_dir("diverge");
        let mut model = mlp();
        // An absurd learning rate blows the loss up immediately; the
        // guard must roll back and shrink it until training survives.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 8,
            optimizer: OptimizerKind::SgdMomentum { lr: 1e5 },
            divergence: Some(DivergenceGuard {
                spike_factor: 4.0,
                max_loss: 10.0,
                lr_backoff: 1e-3,
                max_rollbacks: 5,
            }),
            ..TrainConfig::default()
        });
        let ckpt = crate::CheckpointConfig::new(&dir);
        let report = trainer.fit_durable(&mut model, &x, &y, &ckpt).unwrap();
        assert!(report.completed);
        assert!(report.rollbacks >= 1, "guard never fired");
        assert_eq!(report.history.epochs.len(), 4);
        for e in &report.history.epochs {
            assert!(e.loss.is_finite(), "diverged loss leaked into history");
        }
        for w in weights(&model) {
            assert!(
                w.as_slice().iter().all(|v| v.is_finite()),
                "non-finite weights survived the rollback"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_rollback_budget_is_a_typed_error() {
        let (x, y) = toy_data();
        let dir = ckpt_dir("budget");
        let mut model = mlp();
        // Backoff of 1.0 never fixes anything, so the budget runs out.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 8,
            optimizer: OptimizerKind::SgdMomentum { lr: 1e5 },
            divergence: Some(DivergenceGuard {
                spike_factor: 4.0,
                max_loss: 10.0,
                lr_backoff: 1.0,
                max_rollbacks: 2,
            }),
            ..TrainConfig::default()
        });
        let ckpt = crate::CheckpointConfig::new(&dir);
        assert!(matches!(
            trainer.fit_durable(&mut model, &x, &y, &ckpt),
            Err(NnError::Diverged { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_rejects_zero_checkpoint_period() {
        let (x, y) = toy_data();
        let dir = ckpt_dir("zeroperiod");
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig::default());
        let ckpt = crate::CheckpointConfig::new(&dir).every(0);
        assert!(matches!(
            trainer.fit_durable(&mut model, &x, &y, &ckpt),
            Err(NnError::InvalidConfig { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_early_stop_checkpoints_final_state() {
        let (x, y) = toy_data();
        let dir = ckpt_dir("earlystop");
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 100,
            batch_size: 8,
            patience: Some(5),
            ..TrainConfig::default()
        });
        // Long period: the early-stop epoch itself must still be saved.
        let ckpt = crate::CheckpointConfig::new(&dir).every(1000);
        let report = trainer.fit_durable(&mut model, &x, &y, &ckpt).unwrap();
        assert!(report.completed);
        assert!(report.history.epochs.len() < 100);
        let store = crate::CheckpointStore::open(&dir, 2).unwrap();
        let (gen, state) = store.latest_intact().unwrap().unwrap();
        assert_eq!(gen as usize, report.history.epochs.len());
        assert_eq!(state.history, report.history);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
