use fademl_tensor::{Tensor, TensorRng};

use crate::metrics::top1_accuracy;
use crate::{Adam, CrossEntropyLoss, Loss, NnError, Optimizer, Result, Sequential, Sgd};

/// Which optimizer the [`Trainer`] should construct.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum OptimizerKind {
    /// SGD with momentum 0.9.
    SgdMomentum {
        /// Learning rate.
        lr: f32,
    },
    /// Adam with default betas.
    Adam {
        /// Learning rate.
        lr: f32,
    },
}

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Seed for shuffling.
    pub seed: u64,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// If `true`, prints one progress line per epoch to stderr.
    pub verbose: bool,
    /// Early stopping: stop when training accuracy has not improved for
    /// this many consecutive epochs (`None` disables it).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            optimizer: OptimizerKind::Adam { lr: 1e-3 },
            seed: 0,
            lr_decay: 1.0,
            verbose: false,
            patience: None,
        }
    }
}

/// Statistics for one training epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over all minibatches.
    pub loss: f32,
    /// Top-1 accuracy on the training set after the epoch.
    pub train_accuracy: f32,
}

/// Per-epoch training history returned by [`Trainer::fit`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainHistory {
    /// One entry per epoch, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// The final epoch's training accuracy (0.0 before any training).
    pub fn final_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }
}

/// Minibatch training loop: shuffles, batches, runs
/// forward/backward/step, and records per-epoch statistics.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    loss: CrossEntropyLoss,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            loss: CrossEntropyLoss::new(),
        }
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `images` (`[n, c, h, w]`) with integer `labels`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero epochs/batch size,
    /// [`NnError::ArchMismatch`] when labels and batch disagree, and
    /// propagates any forward/backward error.
    pub fn fit(
        &mut self,
        model: &mut Sequential,
        images: &Tensor,
        labels: &[usize],
    ) -> Result<TrainHistory> {
        if self.config.epochs == 0 || self.config.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                reason: "epochs and batch_size must be positive".into(),
            });
        }
        let n = images.dims().first().copied().unwrap_or(0);
        if n != labels.len() || n == 0 {
            return Err(NnError::ArchMismatch {
                reason: format!("{} labels for {} images", labels.len(), n),
            });
        }

        let mut optimizer: Box<dyn Optimizer> = match self.config.optimizer {
            OptimizerKind::SgdMomentum { lr } => Box::new(Sgd::with_momentum(lr, 0.9)),
            OptimizerKind::Adam { lr } => Box::new(Adam::new(lr)),
        };
        let mut rng = TensorRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let mut history = TrainHistory::default();
        let mut best_accuracy = 0.0f32;
        let mut stale_epochs = 0usize;

        for epoch in 0..self.config.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size) {
                let batch_images: Vec<Tensor> = chunk
                    .iter()
                    .map(|&i| images.index_batch(i))
                    .collect::<std::result::Result<_, _>>()?;
                let batch = Tensor::stack(&batch_images)?;
                let batch_labels: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();

                model.zero_grad();
                let logits = model.forward_train(&batch)?;
                let lv = self.loss.compute(&logits, &batch_labels)?;
                model.backward(&lv.grad)?;
                optimizer.step(&mut model.params_mut())?;

                epoch_loss += lv.loss;
                batches += 1;
            }
            let train_accuracy = top1_accuracy(model, images, labels)?;
            let stats = EpochStats {
                loss: epoch_loss / batches.max(1) as f32,
                train_accuracy,
            };
            if self.config.verbose {
                eprintln!(
                    "epoch {:>3}: loss {:.4}  train acc {:.1}%",
                    epoch + 1,
                    stats.loss,
                    stats.train_accuracy * 100.0
                );
            }
            history.epochs.push(stats);
            if let Some(patience) = self.config.patience {
                if train_accuracy > best_accuracy + 1e-6 {
                    best_accuracy = train_accuracy;
                    stale_epochs = 0;
                } else {
                    stale_epochs += 1;
                    if stale_epochs >= patience {
                        if self.config.verbose {
                            eprintln!(
                                "early stop after {} epochs ({} without improvement)",
                                epoch + 1,
                                stale_epochs
                            );
                        }
                        break;
                    }
                }
            }
            let lr = optimizer.learning_rate() * self.config.lr_decay;
            optimizer.set_learning_rate(lr);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dense, Relu};
    use fademl_tensor::Shape;

    /// A linearly separable 2-class toy problem.
    fn toy_data() -> (Tensor, Vec<usize>) {
        let mut rng = TensorRng::seed_from_u64(42);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let class = i % 2;
            let center = if class == 0 { -2.0 } else { 2.0 };
            rows.push(center + rng.uniform_scalar(-0.5, 0.5));
            rows.push(center + rng.uniform_scalar(-0.5, 0.5));
            labels.push(class);
        }
        (
            Tensor::from_vec(rows, Shape::new(vec![40, 2])).unwrap(),
            labels,
        )
    }

    fn mlp() -> Sequential {
        let mut rng = TensorRng::seed_from_u64(1);
        Sequential::new()
            .push(Dense::new(2, 8, &mut rng))
            .push(Relu::new())
            .push(Dense::new(8, 2, &mut rng))
    }

    #[test]
    fn learns_separable_problem() {
        let (x, y) = toy_data();
        let mut model = mlp();
        // 100 epochs: Adam at the default 1e-3 needs the extra steps to
        // climb out of this seed's small-weight init on the toy net.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 100,
            batch_size: 8,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert_eq!(history.epochs.len(), 100);
        assert!(
            history.final_accuracy() > 0.95,
            "final acc {}",
            history.final_accuracy()
        );
        // Loss decreased overall.
        assert!(history.epochs.last().unwrap().loss < history.epochs[0].loss);
    }

    #[test]
    fn sgd_also_learns() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 40,
            batch_size: 8,
            optimizer: OptimizerKind::SgdMomentum { lr: 0.05 },
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(history.final_accuracy() > 0.9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = toy_data();
        let run = || {
            let mut model = mlp();
            let mut trainer = Trainer::new(TrainConfig {
                epochs: 3,
                batch_size: 8,
                seed: 9,
                ..TrainConfig::default()
            });
            trainer.fit(&mut model, &x, &y).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rejects_bad_configs() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut t = Trainer::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
        assert!(t.fit(&mut model, &x, &y).is_err());
        let mut t = Trainer::new(TrainConfig {
            batch_size: 0,
            ..TrainConfig::default()
        });
        assert!(t.fit(&mut model, &x, &y).is_err());
        let mut t = Trainer::new(TrainConfig::default());
        assert!(t.fit(&mut model, &x, &y[..5]).is_err());
    }

    #[test]
    fn early_stopping_cuts_training_short() {
        let (x, y) = toy_data();
        let mut model = mlp();
        // The toy problem saturates at 100% within a few epochs, so with
        // patience 2 the run must stop well before the 100-epoch cap.
        // 100 epochs: Adam at the default 1e-3 needs the extra steps to
        // climb out of this seed's small-weight init on the toy net.
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 100,
            batch_size: 8,
            patience: Some(5),
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(
            history.epochs.len() < 100,
            "ran all {} epochs despite patience",
            history.epochs.len()
        );
        // Training still made progress before stopping.
        assert!(history.final_accuracy() >= history.epochs[0].train_accuracy);
    }

    #[test]
    fn patience_none_runs_all_epochs() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 12,
            batch_size: 8,
            patience: None,
            ..TrainConfig::default()
        });
        let history = trainer.fit(&mut model, &x, &y).unwrap();
        assert_eq!(history.epochs.len(), 12);
    }

    #[test]
    fn lr_decay_applies() {
        let (x, y) = toy_data();
        let mut model = mlp();
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 2,
            lr_decay: 0.5,
            ..TrainConfig::default()
        });
        // Smoke test: decaying LR must not break training.
        assert!(trainer.fit(&mut model, &x, &y).is_ok());
    }
}
