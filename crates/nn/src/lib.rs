//! Neural-network building blocks for the FAdeML reproduction.
//!
//! This crate implements everything the paper's victim model needs,
//! from scratch on top of [`fademl_tensor`]:
//!
//! - [`Layer`] — the layer abstraction with explicit forward/backward
//!   passes. Backward returns the gradient with respect to the layer
//!   *input*, which is the quantity adversarial attacks consume.
//! - Concrete layers: [`Conv2d`], [`MaxPool2d`], [`Dense`], [`Relu`],
//!   [`Flatten`].
//! - [`Sequential`] — an ordered stack of layers with whole-model
//!   forward, backward and input-gradient entry points.
//! - [`CrossEntropyLoss`] / [`MseLoss`] — losses with analytic gradients.
//! - [`Sgd`] / [`Adam`] — optimizers.
//! - [`vgg`] — the paper's "VGGNet" (5 conv stages + 1 fully-connected
//!   head, Fig. 4) in three size profiles.
//! - [`metrics`] — top-1 / top-5 accuracy and confidence, the paper's
//!   reporting vocabulary.
//! - [`Trainer`] — minibatch SGD training loop.
//!
//! # Example: train a tiny classifier
//!
//! ```
//! use fademl_nn::{vgg, Trainer, TrainConfig};
//! use fademl_tensor::TensorRng;
//!
//! # fn main() -> Result<(), fademl_nn::NnError> {
//! let mut rng = TensorRng::seed_from_u64(0);
//! let config = vgg::VggConfig::tiny(3, 16, 4); // 3x16x16 input, 4 classes
//! let mut model = config.build(&mut rng)?;
//! let images = rng.uniform(&[8, 3, 16, 16], 0.0, 1.0);
//! let labels = vec![0, 1, 2, 3, 0, 1, 2, 3];
//! let mut trainer = Trainer::new(TrainConfig { epochs: 1, ..TrainConfig::default() });
//! let history = trainer.fit(&mut model, &images, &labels)?;
//! assert_eq!(history.epochs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod activation;
mod batchnorm;
pub mod checkpoint;
mod conv;
mod dense;
mod dropout;
mod error;
mod flatten;
mod layer;
mod loss;
pub mod metrics;
mod optimizer;
mod pool;
mod sequential;
pub mod serialize;
mod trainer;
pub mod vgg;

pub use activation::{LeakyRelu, Relu, Sigmoid, Tanh};
pub use batchnorm::BatchNorm2d;
pub use checkpoint::{CheckpointConfig, CheckpointStore, TrainState};
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use error::NnError;
pub use flatten::Flatten;
pub use layer::{Layer, Param};
pub use loss::{CrossEntropyLoss, Loss, LossValue, MseLoss};
pub use optimizer::{Adam, Optimizer, OptimizerState, Sgd};
pub use pool::MaxPool2d;
pub use sequential::Sequential;
pub use trainer::{
    DivergenceGuard, EpochStats, FitReport, OptimizerKind, TrainConfig, TrainHistory, TrainSignal,
    Trainer,
};

/// Convenient result alias for fallible network operations.
pub type Result<T> = std::result::Result<T, NnError>;
