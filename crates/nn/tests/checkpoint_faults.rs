//! Chaos tests: scripted IO faults against the checkpoint subsystem.
//!
//! Each test arms a deterministic [`IoFaultPlan`] (short write, torn
//! rename, bit flip) and asserts the durability contract: a wounded
//! write either propagates a typed error or leaves a file that *fails
//! verification* — a load never yields garbage weights — and recovery
//! always finds the newest intact generation.
//!
//! Requires `--features faults`; `ci.sh` runs this as its checkpoint
//! chaos step.

use std::fs;
use std::path::PathBuf;

use fademl_nn::{
    Adam, CheckpointConfig, CheckpointStore, Dense, NnError, Relu, Sequential, TrainConfig,
    TrainHistory, TrainState, Trainer,
};
use fademl_tensor::io::faults::{arm, disarm, IoFaultPlan, INJECTED};
use fademl_tensor::io::is_staging_file;
use fademl_tensor::{Shape, Tensor, TensorRng};

fn chaos_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fademl_chaos_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn mlp(seed: u64) -> Sequential {
    let mut rng = TensorRng::seed_from_u64(seed);
    Sequential::new()
        .push(Dense::new(2, 8, &mut rng))
        .push(Relu::new())
        .push(Dense::new(8, 2, &mut rng))
}

fn sample_state(epochs_done: u64) -> TrainState {
    let model = mlp(epochs_done + 10);
    let opt = Adam::new(1e-3);
    let rng = TensorRng::seed_from_u64(epochs_done);
    TrainState::capture(&model, &opt, &rng, &TrainHistory::default(), epochs_done)
}

fn toy_data() -> (Tensor, Vec<usize>) {
    let mut rng = TensorRng::seed_from_u64(42);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..40 {
        let class = i % 2;
        let center = if class == 0 { -2.0 } else { 2.0 };
        rows.push(center + rng.uniform_scalar(-0.5, 0.5));
        rows.push(center + rng.uniform_scalar(-0.5, 0.5));
        labels.push(class);
    }
    (
        Tensor::from_vec(rows, Shape::new(vec![40, 2])).expect("toy tensor"),
        labels,
    )
}

/// A short write crashes while staging: the destination is never
/// touched, only an orphan `.tmp` file appears, and recovery still
/// finds the previous generation.
#[test]
fn short_write_never_touches_the_destination() {
    let dir = chaos_dir("short");
    let store = CheckpointStore::open(&dir, 3).expect("open store");
    arm(IoFaultPlan::new().short_write_on(2));
    store.save(&sample_state(1)).expect("write 1 is clean");
    let err = store
        .save(&sample_state(2))
        .expect_err("write 2 is wounded");
    disarm();

    assert!(matches!(err, NnError::Io(_)), "unexpected error: {err:?}");
    assert!(format!("{err}").contains(INJECTED));
    assert!(
        !dir.join("ckpt-00000002.fckpt").exists(),
        "short write must not create the destination"
    );
    let orphans: Vec<_> = fs::read_dir(&dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .filter(|e| is_staging_file(&e.path()))
        .collect();
    assert_eq!(orphans.len(), 1, "expected exactly one orphan staging file");

    // Recovery skips the orphan and lands on generation 1.
    let (gen, state) = store
        .latest_intact()
        .expect("scan")
        .expect("generation 1 survives");
    assert_eq!(gen, 1);
    assert_eq!(state, sample_state(1));
    let _ = fs::remove_dir_all(&dir);
}

/// A torn rename leaves a truncated prefix at the destination: loading
/// it is a typed corruption error (the CRC trailer is gone), and
/// recovery falls back to the previous intact generation.
#[test]
fn torn_rename_is_detected_and_recovery_falls_back() {
    for keep_bytes in [0usize, 1, 8, 12, 64, 200] {
        let dir = chaos_dir(&format!("torn{keep_bytes}"));
        let store = CheckpointStore::open(&dir, 3).expect("open store");
        arm(IoFaultPlan::new().torn_rename_on(2, keep_bytes));
        store.save(&sample_state(1)).expect("write 1 is clean");
        let err = store.save(&sample_state(2)).expect_err("write 2 tears");
        disarm();
        assert!(format!("{err}").contains(INJECTED));

        let torn = dir.join("ckpt-00000002.fckpt");
        assert!(torn.exists(), "torn rename leaves a destination file");
        match CheckpointStore::load(&torn) {
            Err(NnError::Corrupt { .. }) => {}
            other => panic!("torn file (keep {keep_bytes}) must be Corrupt, got {other:?}"),
        }
        let (gen, _) = store
            .latest_intact()
            .expect("scan")
            .expect("generation 1 survives");
        assert_eq!(gen, 1, "recovery must fall back past the torn file");
        let _ = fs::remove_dir_all(&dir);
    }
}

/// A silent bit flip after a successful write: the store must refuse
/// the rotted generation and recover the previous one.
#[test]
fn bit_flip_is_caught_by_the_crc() {
    for offset in [0usize, 7, 11, 100, 5000] {
        let dir = chaos_dir(&format!("flip{offset}"));
        let store = CheckpointStore::open(&dir, 3).expect("open store");
        arm(IoFaultPlan::new().bit_flip_on(2, offset));
        store.save(&sample_state(1)).expect("write 1 is clean");
        // The wounded write itself reports success — the corruption is
        // silent, exactly like media rot.
        store.save(&sample_state(2)).expect("write 2 'succeeds'");
        disarm();

        let rotten = dir.join("ckpt-00000002.fckpt");
        match CheckpointStore::load(&rotten) {
            Err(NnError::Corrupt { .. }) => {}
            other => panic!("flipped bit at {offset} must be Corrupt, got {other:?}"),
        }
        let (gen, state) = store
            .latest_intact()
            .expect("scan")
            .expect("generation 1 survives");
        assert_eq!(gen, 1);
        assert_eq!(state, sample_state(1));
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Sweep: under any of the scripted faults, every generation on disk
/// either loads as exactly what was saved or fails with a typed error —
/// never garbage in between.
#[test]
fn loads_are_all_or_nothing_under_chaos() {
    let plans: Vec<(&str, IoFaultPlan)> = vec![
        ("short3", IoFaultPlan::new().short_write_on(3)),
        ("torn2", IoFaultPlan::new().torn_rename_on(2, 40)),
        ("flip1", IoFaultPlan::new().bit_flip_on(1, 21)),
        (
            "multi",
            IoFaultPlan::new()
                .short_write_on(2)
                .bit_flip_on(3, 9)
                .torn_rename_on(4, 100),
        ),
    ];
    for (tag, plan) in plans {
        let dir = chaos_dir(&format!("sweep_{tag}"));
        let store = CheckpointStore::open(&dir, 10).expect("open store");
        arm(plan);
        for epoch in 1..=4u64 {
            // Wounded saves error (crash) or silently rot; both are fine
            // here — the contract under test is on the *load* side.
            let _ = store.save(&sample_state(epoch));
        }
        disarm();
        for (gen, path) in store.generations().expect("list generations") {
            match CheckpointStore::load(&path) {
                Ok(state) => {
                    assert_eq!(state.epochs_done, gen, "[{tag}] filename/content mismatch");
                    // A load that succeeds must be byte-exactly what was
                    // saved — "reported success" (bit flip) is not enough.
                    assert_eq!(
                        state,
                        sample_state(gen),
                        "[{tag}] generation {gen} loaded but differs from what was saved"
                    );
                }
                Err(NnError::Corrupt { .. }) | Err(NnError::Io(_)) => {}
                Err(other) => panic!("[{tag}] generation {gen}: unexpected error {other:?}"),
            }
        }
        // Recovery, if it returns anything, returns an intact state.
        if let Some((gen, state)) = store.latest_intact().expect("scan") {
            assert_eq!(
                state,
                sample_state(gen),
                "[{tag}] recovery returned garbage"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// Trainer level: a checkpoint save that dies mid-run surfaces as a
/// typed error, and a disarmed rerun resumes from the last intact
/// generation and reproduces the uninterrupted run bit-for-bit.
#[test]
fn trainer_survives_an_injected_crash_and_resumes_exactly() {
    let (x, y) = toy_data();
    let config = TrainConfig {
        epochs: 6,
        batch_size: 8,
        seed: 11,
        ..TrainConfig::default()
    };

    // Clean reference run.
    let dir_a = chaos_dir("trainer_ref");
    let mut model_a = mlp(1);
    Trainer::new(config.clone())
        .fit_durable(
            &mut model_a,
            &x,
            &y,
            &CheckpointConfig::new(&dir_a).every(2),
        )
        .expect("reference run");

    // Faulted run: the epoch-4 checkpoint (second write) dies short.
    let dir_b = chaos_dir("trainer_hurt");
    let ckpt_b = CheckpointConfig::new(&dir_b).every(2);
    let mut model_b = mlp(1);
    arm(IoFaultPlan::new().short_write_on(2));
    let err = Trainer::new(config.clone())
        .fit_durable(&mut model_b, &x, &y, &ckpt_b)
        .expect_err("wounded save must propagate");
    disarm();
    assert!(format!("{err}").contains(INJECTED), "got: {err}");

    // Rerun with a fresh model: resume from epoch 2 and finish.
    let mut model_b = mlp(1);
    let report = Trainer::new(config)
        .fit_durable(&mut model_b, &x, &y, &ckpt_b)
        .expect("resumed run");
    assert_eq!(report.resumed_from_epoch, Some(2));
    assert!(report.completed);

    let weights =
        |m: &Sequential| -> Vec<Tensor> { m.params().iter().map(|p| p.value.clone()).collect() };
    assert_eq!(
        weights(&model_a),
        weights(&model_b),
        "crash + resume must match the uninterrupted run bit-for-bit"
    );
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}
