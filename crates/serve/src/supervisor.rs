//! Detector supervision: background refits from the serving reservoir,
//! candidate validation on a held-out slice, and generation-tracked hot
//! swaps.
//!
//! The refit loop closes the adaptive-detection feedback circle. The
//! triage stage samples served-clean feature vectors into a bounded
//! reservoir ([`fademl_detect::FeatureReservoir`]); at each interval
//! the supervisor snapshots that reservoir, trains a candidate forest
//! *off the serving path*, and scores both the candidate and the
//! incumbent on a held-out validation slice. The candidate deploys only
//! if its AUC does not regress past the configured margin — a refit can
//! drift the detector toward current traffic, but it can never silently
//! trade away separation the incumbent still has. Every outcome is
//! typed ([`RefitOutcome`]) and counted
//! ([`crate::MetricsReport`]`::detection`), including refit panics,
//! which are contained by `catch_unwind` exactly like worker panics:
//! the incumbent keeps serving, the loop keeps running.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fademl_detect::{holdout_auc, DetectorConfig};

use crate::error::{Result, ServeError};
use crate::metrics::ServerMetrics;
use crate::server::{fault_on_refit, spawn_thread, FaultHandle};
use crate::triage::TriageRuntime;

/// Held-out feature vectors the supervisor validates candidates on.
/// Both sides are scored with [`fademl_detect::holdout_auc`]; the slice
/// never enters the reservoir, so a candidate cannot be validated on
/// its own training data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ValidationSet {
    /// Feature vectors of known-clean frames.
    pub clean: Vec<Vec<f32>>,
    /// Feature vectors of known-adversarial frames.
    pub adversarial: Vec<Vec<f32>>,
}

/// Knobs for the refit supervisor.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Wall-clock spacing between background refits.
    /// [`Duration::ZERO`] disables the background thread: refits then
    /// run only when
    /// [`InferenceServer::refit_detector`](crate::InferenceServer::refit_detector)
    /// is called.
    pub interval: Duration,
    /// Reservoir rows required before a refit is attempted; colder
    /// reservoirs resolve to [`RefitOutcome::SkippedCold`].
    pub min_samples: usize,
    /// Tolerated AUC regression: a candidate scoring below
    /// `incumbent_auc - auc_margin` is rejected.
    pub auc_margin: f32,
    /// Forest geometry candidates are trained with. Its `scales` must
    /// match the serving detector's, or every refit fails the
    /// reservoir's dimension check. The seed is rotated by detector
    /// generation so successive refits do not train identical forests.
    pub refit_detector: DetectorConfig,
    /// The held-out validation slice.
    pub validation: ValidationSet,
    /// Where to persist the reservoir (`FADEMLR1`, atomic write) after
    /// each refit attempt, so a restart resumes the sampled stream
    /// instead of starting cold. `None` disables persistence.
    pub reservoir_path: Option<PathBuf>,
}

impl SupervisorConfig {
    /// Validates the supervisor knobs.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        if self.min_samples < 2 {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "supervisor min_samples must be at least 2, got {}",
                    self.min_samples
                ),
            });
        }
        if !self.auc_margin.is_finite() || !(0.0..=1.0).contains(&self.auc_margin) {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "supervisor auc_margin must be in [0, 1], got {}",
                    self.auc_margin
                ),
            });
        }
        self.refit_detector
            .validate()
            .map_err(|err| ServeError::InvalidConfig {
                reason: format!("supervisor refit_detector: {err}"),
            })?;
        if self.validation.clean.is_empty() || self.validation.adversarial.is_empty() {
            return Err(ServeError::InvalidConfig {
                reason: "supervisor validation set needs clean and adversarial examples".into(),
            });
        }
        Ok(())
    }
}

/// How one refit attempt resolved. Every variant is also counted in the
/// server's detection metrics, so operators see the refit history
/// without holding these values.
#[derive(Debug, Clone, PartialEq)]
pub enum RefitOutcome {
    /// The candidate validated and was hot-swapped in.
    Swapped {
        /// Detector generation after the swap.
        generation: u64,
        /// Candidate AUC on the held-out slice.
        candidate_auc: f32,
        /// Incumbent AUC on the same slice.
        incumbent_auc: f32,
    },
    /// The candidate regressed past the margin; the incumbent keeps
    /// serving.
    Rejected {
        /// Candidate AUC on the held-out slice.
        candidate_auc: f32,
        /// Incumbent AUC on the same slice.
        incumbent_auc: f32,
    },
    /// The reservoir has not yet collected `min_samples` rows.
    SkippedCold {
        /// Rows the reservoir held at snapshot time.
        samples: usize,
    },
    /// Training or validation returned a typed error.
    Failed {
        /// What went wrong.
        reason: String,
    },
    /// Training panicked; the panic was contained and the incumbent
    /// keeps serving.
    Panicked,
}

/// Result of one refit attempt: the outcome plus whether persisting the
/// reservoir failed (persistence is best-effort and never blocks a
/// swap — a torn disk must not stop the detector from adapting).
#[derive(Debug, Clone, PartialEq)]
pub struct RefitReport {
    /// How the refit resolved.
    pub outcome: RefitOutcome,
    /// Error text if the post-refit reservoir persist failed.
    pub persist_error: Option<String>,
}

/// Runs one refit attempt end to end. Never panics and never touches
/// the serving path beyond a reservoir snapshot and (on success) the
/// detector pointer flip.
pub(crate) fn run_refit(
    triage: &TriageRuntime,
    metrics: &ServerMetrics,
    config: &SupervisorConfig,
    faults: &FaultHandle,
) -> RefitReport {
    let Some(reservoir) = triage.reservoir_snapshot() else {
        return RefitReport {
            outcome: RefitOutcome::Failed {
                reason: "refit on a server without adaptive triage state".into(),
            },
            persist_error: None,
        };
    };
    let outcome = attempt_refit(triage, metrics, config, faults, &reservoir);
    // Persist after the attempt so a restart resumes the exact sampled
    // stream. Best-effort by design: a failed write is reported, never
    // allowed to block the swap that already happened.
    let persist_error = config
        .reservoir_path
        .as_deref()
        .and_then(|path| reservoir.save(path).err())
        .map(|err| err.to_string());
    RefitReport {
        outcome,
        persist_error,
    }
}

/// Train → validate → swap, with each failure mode mapped to its
/// [`RefitOutcome`] and metric.
fn attempt_refit(
    triage: &TriageRuntime,
    metrics: &ServerMetrics,
    config: &SupervisorConfig,
    faults: &FaultHandle,
    reservoir: &fademl_detect::FeatureReservoir,
) -> RefitOutcome {
    if reservoir.len() < config.min_samples {
        return RefitOutcome::SkippedCold {
            samples: reservoir.len(),
        };
    }
    // Rotate the training seed by generation: successive refits explore
    // different forests over the (evolving) reservoir instead of
    // re-deriving the same one.
    let mut detector_config = config.refit_detector;
    detector_config.seed = detector_config
        .seed
        .wrapping_add(metrics.detector_generation().wrapping_add(1));
    let trained = catch_unwind(AssertUnwindSafe(|| {
        fault_on_refit(faults);
        reservoir.refit(&detector_config)
    }));
    let candidate = match trained {
        Err(_) => {
            metrics.record_refit_panic();
            return RefitOutcome::Panicked;
        }
        Ok(Err(err)) => {
            metrics.record_refit_failed();
            return RefitOutcome::Failed {
                reason: err.to_string(),
            };
        }
        Ok(Ok(candidate)) => candidate,
    };
    let incumbent = triage.detector_snapshot();
    let aucs = holdout_auc(
        &candidate,
        &config.validation.clean,
        &config.validation.adversarial,
    )
    .and_then(|cand| {
        holdout_auc(
            &incumbent,
            &config.validation.clean,
            &config.validation.adversarial,
        )
        .map(|inc| (cand, inc))
    });
    let (candidate_auc, incumbent_auc) = match aucs {
        Ok(aucs) => aucs,
        Err(err) => {
            metrics.record_refit_failed();
            return RefitOutcome::Failed {
                reason: format!("validation: {err}"),
            };
        }
    };
    if candidate_auc < incumbent_auc - config.auc_margin {
        metrics.record_refit_rejected();
        return RefitOutcome::Rejected {
            candidate_auc,
            incumbent_auc,
        };
    }
    match triage.swap_detector(candidate, metrics) {
        Ok(generation) => {
            metrics.record_refit_swapped();
            RefitOutcome::Swapped {
                generation,
                candidate_auc,
                incumbent_auc,
            }
        }
        Err(err) => {
            metrics.record_refit_failed();
            RefitOutcome::Failed {
                reason: err.to_string(),
            }
        }
    }
}

/// Spawns the background refit loop. The loop sleeps in short slices so
/// shutdown joins promptly, and runs one refit per elapsed interval;
/// reports are dropped because every outcome is already counted in the
/// metrics.
pub(crate) fn spawn_refit_loop(
    triage: Arc<TriageRuntime>,
    metrics: Arc<ServerMetrics>,
    config: Arc<SupervisorConfig>,
    shutting_down: Arc<AtomicBool>,
    faults: FaultHandle,
) -> Result<JoinHandle<()>> {
    spawn_thread("fademl-serve-refit".into(), move || {
        let slice = Duration::from_millis(5);
        let mut next_refit = Instant::now() + config.interval;
        while !shutting_down.load(Ordering::Acquire) {
            if Instant::now() >= next_refit {
                run_refit(&triage, &metrics, &config, &faults);
                next_refit = Instant::now() + config.interval;
            }
            std::thread::sleep(slice);
        }
    })
}
