//! Server observability: lock-free counters on the hot path, a compact
//! latency reservoir, and a serde-serializable snapshot for reports.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Cap on the latency reservoir; beyond this the recorder degrades to
/// overwrite-oldest so long-running servers stay bounded in memory.
const LATENCY_RESERVOIR: usize = 65_536;

/// Live counters shared by the submission path, the batcher and the
/// workers. All hot-path updates are single atomic ops; only latency
/// recording takes a (short) lock.
#[derive(Debug)]
pub struct ServerMetrics {
    requests_submitted: AtomicU64,
    requests_rejected: AtomicU64,
    requests_completed: AtomicU64,
    requests_failed: AtomicU64,
    batches_dispatched: AtomicU64,
    batched_images: AtomicU64,
    max_batch_seen: AtomicUsize,
    queue_depth: AtomicUsize,
    /// Count of dispatched batches per size; index 0 holds size 1.
    batch_size_counts: Vec<AtomicU64>,
    /// End-to-end latencies in microseconds (submit → verdict ready).
    latencies_us: Mutex<LatencyReservoir>,
}

#[derive(Debug, Default)]
struct LatencyReservoir {
    samples: Vec<u64>,
    next: usize,
}

impl ServerMetrics {
    /// Metrics sized for batches up to `max_batch_size`.
    pub fn new(max_batch_size: usize) -> Self {
        ServerMetrics {
            requests_submitted: AtomicU64::new(0),
            requests_rejected: AtomicU64::new(0),
            requests_completed: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            batched_images: AtomicU64::new(0),
            max_batch_seen: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            batch_size_counts: (0..max_batch_size).map(|_| AtomicU64::new(0)).collect(),
            latencies_us: Mutex::new(LatencyReservoir::default()),
        }
    }

    /// Reserves a queue slot in the depth gauge. Call *before* the
    /// request can reach the batcher: if the gauge were bumped after
    /// enqueueing, the batcher's decrement could land first, saturate
    /// at zero, and leave the gauge permanently inflated.
    pub fn record_enqueue_attempt(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted submission (slot already reserved by
    /// [`record_enqueue_attempt`](Self::record_enqueue_attempt)).
    pub fn record_submitted(&self) {
        self.requests_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a load-shed (queue-full) rejection, releasing the slot
    /// reserved by the enqueue attempt.
    pub fn record_rejected(&self) {
        self.requests_rejected.fetch_add(1, Ordering::Relaxed);
        self.release_queue_slot();
    }

    /// Records a request leaving the submission queue for a bucket.
    pub fn record_dequeued(&self) {
        self.release_queue_slot();
    }

    /// Releases a reserved queue slot without recording anything else
    /// (e.g. an enqueue that failed because the server is stopping).
    pub fn release_queue_slot(&self) {
        // Saturating: a racing reader must never see usize::MAX depth.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Records one dispatched batch of `size` images.
    pub fn record_batch(&self, size: usize) {
        debug_assert!(size > 0);
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.batched_images
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch_seen.fetch_max(size, Ordering::Relaxed);
        if let Some(slot) = self.batch_size_counts.get(size.saturating_sub(1)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one successfully answered request and its end-to-end
    /// latency.
    pub fn record_completed(&self, latency_us: u64) {
        self.requests_completed.fetch_add(1, Ordering::Relaxed);
        let mut reservoir = self.latencies_us.lock();
        if reservoir.samples.len() < LATENCY_RESERVOIR {
            reservoir.samples.push(latency_us);
        } else {
            let at = reservoir.next % LATENCY_RESERVOIR;
            reservoir.samples[at] = latency_us;
            reservoir.next = at + 1;
        }
    }

    /// Records one request answered with an error.
    pub fn record_failed(&self) {
        self.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Current submission-queue depth (requests accepted but not yet
    /// pulled into a batch bucket).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot for reporting. Counters are
    /// read individually (relaxed), so totals can be off by in-flight
    /// requests — fine for observability, never for control flow.
    pub fn report(&self) -> MetricsReport {
        let latencies = {
            let mut snapshot = self.latencies_us.lock().samples.clone();
            snapshot.sort_unstable();
            snapshot
        };
        let percentile = |p: f64| -> u64 {
            if latencies.is_empty() {
                return 0;
            }
            let rank = ((latencies.len() as f64 - 1.0) * p).round() as usize;
            latencies[rank.min(latencies.len() - 1)]
        };
        let batches = self.batches_dispatched.load(Ordering::Relaxed);
        let images = self.batched_images.load(Ordering::Relaxed);
        MetricsReport {
            requests_submitted: self.requests_submitted.load(Ordering::Relaxed),
            requests_rejected: self.requests_rejected.load(Ordering::Relaxed),
            requests_completed: self.requests_completed.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            batches_dispatched: batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                images as f64 / batches as f64
            },
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed) as u64,
            batch_size_counts: self
                .batch_size_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_depth: self.queue_depth() as u64,
            latency_mean_us: if latencies.is_empty() {
                0
            } else {
                latencies.iter().sum::<u64>() / latencies.len() as u64
            },
            latency_p50_us: percentile(0.50),
            latency_p90_us: percentile(0.90),
            latency_p99_us: percentile(0.99),
        }
    }
}

/// Point-in-time snapshot of [`ServerMetrics`], ready for JSON or text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub requests_submitted: u64,
    /// Requests shed because the queue was full.
    pub requests_rejected: u64,
    /// Requests answered with a verdict.
    pub requests_completed: u64,
    /// Requests answered with an error.
    pub requests_failed: u64,
    /// Batches handed to the worker pool.
    pub batches_dispatched: u64,
    /// Mean images per dispatched batch.
    pub mean_batch_size: f64,
    /// Largest batch dispatched.
    pub max_batch_seen: u64,
    /// Batches dispatched per size (index 0 = size 1).
    pub batch_size_counts: Vec<u64>,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Mean end-to-end latency (µs).
    pub latency_mean_us: u64,
    /// Median end-to-end latency (µs).
    pub latency_p50_us: u64,
    /// 90th-percentile end-to-end latency (µs).
    pub latency_p90_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub latency_p99_us: u64,
}

impl MetricsReport {
    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Human-readable multi-line rendering for logs and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serving metrics\n");
        out.push_str(&format!(
            "  requests: {} submitted, {} completed, {} failed, {} rejected (queue depth {})\n",
            self.requests_submitted,
            self.requests_completed,
            self.requests_failed,
            self.requests_rejected,
            self.queue_depth,
        ));
        out.push_str(&format!(
            "  batches:  {} dispatched, mean size {:.2}, max size {}\n",
            self.batches_dispatched, self.mean_batch_size, self.max_batch_seen,
        ));
        let histogram: Vec<String> = self
            .batch_size_counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, count)| format!("{}×{count}", i + 1))
            .collect();
        out.push_str(&format!(
            "  batch size histogram: [{}]\n",
            histogram.join(", ")
        ));
        out.push_str(&format!(
            "  latency:  mean {}µs, p50 {}µs, p90 {}µs, p99 {}µs\n",
            self.latency_mean_us, self.latency_p50_us, self.latency_p90_us, self.latency_p99_us,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new(8);
        m.record_enqueue_attempt();
        m.record_submitted();
        m.record_enqueue_attempt();
        m.record_submitted();
        m.record_enqueue_attempt();
        m.record_rejected();
        m.record_dequeued();
        m.record_batch(2);
        m.record_completed(100);
        m.record_completed(300);
        m.record_failed();
        let r = m.report();
        assert_eq!(r.requests_submitted, 2);
        assert_eq!(r.requests_rejected, 1);
        assert_eq!(r.requests_completed, 2);
        assert_eq!(r.requests_failed, 1);
        assert_eq!(r.batches_dispatched, 1);
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.max_batch_seen, 2);
        assert_eq!(r.batch_size_counts[1], 1);
        assert!((r.mean_batch_size - 2.0).abs() < 1e-9);
        assert_eq!(r.latency_mean_us, 200);
        assert_eq!(r.latency_p50_us, 300); // nearest-rank on 2 samples
    }

    #[test]
    fn queue_depth_never_underflows() {
        let m = ServerMetrics::new(4);
        m.record_dequeued();
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn percentiles_on_spread() {
        let m = ServerMetrics::new(4);
        for us in 1..=100u64 {
            m.record_completed(us);
        }
        let r = m.report();
        assert_eq!(r.latency_p50_us, 51);
        assert_eq!(r.latency_p90_us, 90);
        assert_eq!(r.latency_p99_us, 99);
    }

    #[test]
    fn report_serde_round_trip() {
        let m = ServerMetrics::new(4);
        m.record_submitted();
        m.record_batch(3);
        m.record_completed(42);
        let report = m.report();
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn render_mentions_key_numbers() {
        let m = ServerMetrics::new(4);
        m.record_batch(4);
        m.record_batch(4);
        let text = m.report().render();
        assert!(text.contains("2 dispatched"));
        assert!(text.contains("4×2"));
    }
}
