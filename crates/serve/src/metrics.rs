//! Server observability: lock-free counters on the hot path, a compact
//! latency reservoir, and a serde-serializable snapshot for reports.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::DeadlineStage;
use crate::triage::FailOpenKind;

/// Cap on the latency reservoir; beyond this the recorder degrades to
/// overwrite-oldest so long-running servers stay bounded in memory.
const LATENCY_RESERVOIR: usize = 65_536;

/// Upper edges (µs) of the deadline-miss overshoot histogram buckets;
/// the last bucket is open-ended.
const OVERSHOOT_EDGES_US: [u64; 3] = [1_000, 10_000, 100_000];

/// Live counters shared by the submission path, the batcher and the
/// workers. All hot-path updates are single atomic ops; only latency
/// recording takes a (short) lock.
#[derive(Debug)]
pub struct ServerMetrics {
    requests_submitted: AtomicU64,
    requests_rejected: AtomicU64,
    requests_invalid: AtomicU64,
    requests_completed: AtomicU64,
    requests_failed: AtomicU64,
    batches_dispatched: AtomicU64,
    batched_images: AtomicU64,
    max_batch_seen: AtomicUsize,
    queue_depth: AtomicUsize,
    /// Count of dispatched batches per size; index 0 holds size 1.
    batch_size_counts: Vec<AtomicU64>,
    /// End-to-end latencies in microseconds (submit → verdict ready).
    latencies_us: Mutex<LatencyReservoir>,
    // Fault-tolerance counters.
    worker_panics: AtomicU64,
    workers_respawned: AtomicU64,
    batches_failed: AtomicU64,
    deadline_missed_queue: AtomicU64,
    deadline_missed_batch: AtomicU64,
    /// Deadline-miss overshoot histogram: <1 ms, <10 ms, <100 ms, rest.
    deadline_overshoot_buckets: [AtomicU64; 4],
    degraded_entered: AtomicU64,
    degraded_exited: AtomicU64,
    degraded_now: AtomicBool,
    single_image_fallbacks: AtomicU64,
    /// Completed hot weight swaps. Monotone: a reader observing
    /// generation `g` knows every batch started after the swap ran on
    /// weights of generation ≥ `g`.
    swap_generation: AtomicU64,
    // Adversarial-triage counters (all zero when triage is disabled;
    // the report's `detection` section materializes only once any of
    // them moves, so non-triage reports stay schema-identical).
    triage_clean: AtomicU64,
    triage_flagged: AtomicU64,
    triage_fail_open_panics: AtomicU64,
    triage_fail_open_timeouts: AtomicU64,
    triage_fail_open_errors: AtomicU64,
    /// Total microseconds spent scoring (mean overhead = total / scored).
    triage_score_time_us: AtomicU64,
    /// Anomaly scores in integer basis points (0..=10 000).
    triage_scores_bp: Mutex<LatencyReservoir>,
    hardened_served: AtomicU64,
    /// End-to-end latencies of hardened-path requests, kept separately
    /// so the hardened/normal latency split is visible.
    hardened_latencies_us: Mutex<LatencyReservoir>,
    // Adaptive-detection counters (zero on static-triage servers).
    /// Flagged requests shed because the hardened path was already at
    /// its per-window budget cap (the anti-flooding rail).
    triage_shed: AtomicU64,
    /// Completed detector hot swaps; doubles as the detector
    /// generation, mirroring `swap_generation` for weights.
    detector_generation: AtomicU64,
    refits_swapped: AtomicU64,
    refits_rejected: AtomicU64,
    refits_failed: AtomicU64,
    refit_panics: AtomicU64,
    /// Current effective triage threshold in basis points (gauge).
    threshold_bp: AtomicU64,
    /// Tenants currently tracked by the baseline table (gauge).
    tenants_tracked: AtomicU64,
}

#[derive(Debug, Default)]
struct LatencyReservoir {
    samples: Vec<u64>,
    next: usize,
}

impl LatencyReservoir {
    /// Records one sample, degrading to overwrite-oldest at the cap.
    fn record(&mut self, value: u64) {
        if self.samples.len() < LATENCY_RESERVOIR {
            self.samples.push(value);
        } else {
            let at = self.next % LATENCY_RESERVOIR;
            if let Some(slot) = self.samples.get_mut(at) {
                *slot = value;
            }
            self.next = at + 1;
        }
    }

    /// Sorted snapshot for percentile extraction.
    fn sorted(&self) -> Vec<u64> {
        let mut snapshot = self.samples.clone();
        snapshot.sort_unstable();
        snapshot
    }
}

/// Nearest-rank percentile (`p_bp` in basis points) over a sorted
/// sample set: no float rounding, no unchecked indexing, and NaN
/// cannot exist because samples never leave integer space.
fn percentile(sorted: &[u64], p_bp: u64) -> u64 {
    let Some(last) = sorted.len().checked_sub(1) else {
        return 0;
    };
    let rank = (last as u64 * p_bp + 5_000) / 10_000;
    usize::try_from(rank)
        .ok()
        .and_then(|r| sorted.get(r))
        .copied()
        .unwrap_or(0)
}

impl ServerMetrics {
    /// Metrics sized for batches up to `max_batch_size`.
    pub fn new(max_batch_size: usize) -> Self {
        ServerMetrics {
            requests_submitted: AtomicU64::new(0),
            requests_rejected: AtomicU64::new(0),
            requests_invalid: AtomicU64::new(0),
            requests_completed: AtomicU64::new(0),
            requests_failed: AtomicU64::new(0),
            batches_dispatched: AtomicU64::new(0),
            batched_images: AtomicU64::new(0),
            max_batch_seen: AtomicUsize::new(0),
            queue_depth: AtomicUsize::new(0),
            batch_size_counts: (0..max_batch_size).map(|_| AtomicU64::new(0)).collect(),
            latencies_us: Mutex::new(LatencyReservoir::default()),
            worker_panics: AtomicU64::new(0),
            workers_respawned: AtomicU64::new(0),
            batches_failed: AtomicU64::new(0),
            deadline_missed_queue: AtomicU64::new(0),
            deadline_missed_batch: AtomicU64::new(0),
            deadline_overshoot_buckets: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            degraded_entered: AtomicU64::new(0),
            degraded_exited: AtomicU64::new(0),
            degraded_now: AtomicBool::new(false),
            single_image_fallbacks: AtomicU64::new(0),
            swap_generation: AtomicU64::new(0),
            triage_clean: AtomicU64::new(0),
            triage_flagged: AtomicU64::new(0),
            triage_fail_open_panics: AtomicU64::new(0),
            triage_fail_open_timeouts: AtomicU64::new(0),
            triage_fail_open_errors: AtomicU64::new(0),
            triage_score_time_us: AtomicU64::new(0),
            triage_scores_bp: Mutex::new(LatencyReservoir::default()),
            hardened_served: AtomicU64::new(0),
            hardened_latencies_us: Mutex::new(LatencyReservoir::default()),
            triage_shed: AtomicU64::new(0),
            detector_generation: AtomicU64::new(0),
            refits_swapped: AtomicU64::new(0),
            refits_rejected: AtomicU64::new(0),
            refits_failed: AtomicU64::new(0),
            refit_panics: AtomicU64::new(0),
            threshold_bp: AtomicU64::new(0),
            tenants_tracked: AtomicU64::new(0),
        }
    }

    /// Reserves a queue slot in the depth gauge. Call *before* the
    /// request can reach the batcher: if the gauge were bumped after
    /// enqueueing, the batcher's decrement could land first, saturate
    /// at zero, and leave the gauge permanently inflated.
    pub fn record_enqueue_attempt(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an accepted submission (slot already reserved by
    /// [`record_enqueue_attempt`](Self::record_enqueue_attempt)).
    pub fn record_submitted(&self) {
        self.requests_submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a load-shed (queue-full) rejection, releasing the slot
    /// reserved by the enqueue attempt.
    pub fn record_rejected(&self) {
        self.requests_rejected.fetch_add(1, Ordering::Relaxed);
        self.release_queue_slot();
    }

    /// Records a request refused by admission-time input validation
    /// (it never reached the queue, so no slot is released).
    pub fn record_invalid(&self) {
        self.requests_invalid.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request leaving the submission queue for a bucket.
    pub fn record_dequeued(&self) {
        self.release_queue_slot();
    }

    /// Releases a reserved queue slot without recording anything else
    /// (e.g. an enqueue that failed because the server is stopping).
    pub fn release_queue_slot(&self) {
        // Saturating: a racing reader must never see usize::MAX depth.
        // best-effort: Err only means the depth was already zero.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Records one dispatched batch of `size` images.
    pub fn record_batch(&self, size: usize) {
        debug_assert!(size > 0);
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.batched_images
            .fetch_add(size as u64, Ordering::Relaxed);
        self.max_batch_seen.fetch_max(size, Ordering::Relaxed);
        if let Some(slot) = self.batch_size_counts.get(size.saturating_sub(1)) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one successfully answered request and its end-to-end
    /// latency.
    pub fn record_completed(&self, latency_us: u64) {
        self.requests_completed.fetch_add(1, Ordering::Relaxed);
        self.latencies_us.lock().record(latency_us);
    }

    /// Records one request answered with an error.
    pub fn record_failed(&self) {
        self.requests_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker panic caught (or rethrown) while executing a
    /// batch or a single image.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one worker thread replaced after dying mid-flight.
    pub fn record_worker_respawn(&self) {
        self.workers_respawned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one batch whose every request was answered with an
    /// error (panic or whole-batch pipeline failure).
    pub fn record_batch_failed(&self) {
        self.batches_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request answered with `DeadlineExceeded`, caught at
    /// `stage`, `overshoot` past its deadline.
    pub fn record_deadline_miss(&self, stage: DeadlineStage, overshoot: Duration) {
        match stage {
            DeadlineStage::Queue => &self.deadline_missed_queue,
            DeadlineStage::Batch => &self.deadline_missed_batch,
        }
        .fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(overshoot.as_micros()).unwrap_or(u64::MAX);
        let bucket = OVERSHOOT_EDGES_US
            .iter()
            .position(|&edge| us < edge)
            .unwrap_or(OVERSHOOT_EDGES_US.len());
        if let Some(counter) = self.deadline_overshoot_buckets.get(bucket) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the circuit breaker opening (entering degraded mode).
    pub fn record_degraded_enter(&self) {
        self.degraded_entered.fetch_add(1, Ordering::Relaxed);
        self.degraded_now.store(true, Ordering::Release);
    }

    /// Records a successful probe batch closing the circuit breaker.
    pub fn record_degraded_exit(&self) {
        self.degraded_exited.fetch_add(1, Ordering::Relaxed);
        self.degraded_now.store(false, Ordering::Release);
    }

    /// Records one request served by isolated per-image classification
    /// (degraded mode or a mixed-shape batch).
    pub fn record_single_fallback(&self) {
        self.single_image_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one image triaged below the flagging threshold.
    pub fn record_triage_clean(&self, score_bp: u64, took_us: u64) {
        self.triage_clean.fetch_add(1, Ordering::Relaxed);
        self.triage_score_time_us
            .fetch_add(took_us, Ordering::Relaxed);
        self.triage_scores_bp.lock().record(score_bp);
    }

    /// Records one image flagged by the triage detector.
    pub fn record_triage_flagged(&self, score_bp: u64, took_us: u64) {
        self.triage_flagged.fetch_add(1, Ordering::Relaxed);
        self.triage_score_time_us
            .fetch_add(took_us, Ordering::Relaxed);
        self.triage_scores_bp.lock().record(score_bp);
    }

    /// Records one triage scoring attempt that failed open (the
    /// request was served unscored on the normal path).
    pub fn record_triage_fail_open(&self, kind: FailOpenKind) {
        match kind {
            FailOpenKind::Panic => &self.triage_fail_open_panics,
            FailOpenKind::Timeout => &self.triage_fail_open_timeouts,
            FailOpenKind::Error => &self.triage_fail_open_errors,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request completed on the hardened path and its
    /// end-to-end latency (also recorded in the overall reservoir by
    /// [`record_completed`](Self::record_completed)).
    pub fn record_hardened(&self, latency_us: u64) {
        self.hardened_served.fetch_add(1, Ordering::Relaxed);
        self.hardened_latencies_us.lock().record(latency_us);
    }

    /// Records one flagged request shed because the hardened path hit
    /// its per-window budget cap.
    pub fn record_triage_shed(&self) {
        self.triage_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed detector hot swap, returning the new
    /// detector generation (1-based; 0 = the detector the server
    /// started with). Monotone under concurrent swaps, mirroring
    /// [`record_swap`](Self::record_swap) for weights.
    pub fn record_detector_swap(&self) -> u64 {
        self.detector_generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Generation of the currently deployed detector.
    pub fn detector_generation(&self) -> u64 {
        self.detector_generation.load(Ordering::Acquire)
    }

    /// Records one background refit that validated and was deployed.
    pub fn record_refit_swapped(&self) {
        self.refits_swapped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one refit rejected because the candidate's held-out AUC
    /// regressed against the incumbent's.
    pub fn record_refit_rejected(&self) {
        self.refits_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one refit that failed with a typed error (cold
    /// reservoir, training failure, validation scoring error).
    pub fn record_refit_failed(&self) {
        self.refits_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one refit attempt that panicked (caught; the incumbent
    /// keeps serving).
    pub fn record_refit_panic(&self) {
        self.refit_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the controller's current effective threshold (basis
    /// points) to the gauge.
    pub fn record_threshold_bp(&self, bp: u64) {
        self.threshold_bp.store(bp, Ordering::Relaxed);
    }

    /// Publishes the baseline table's tracked-tenant count to the gauge.
    pub fn record_tenants_tracked(&self, tenants: u64) {
        self.tenants_tracked.store(tenants, Ordering::Relaxed);
    }

    /// Records one completed hot weight swap, returning the new
    /// generation number (1-based).
    pub fn record_swap(&self) -> u64 {
        self.swap_generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Generation of the currently deployed weights (0 = as started).
    pub fn swap_generation(&self) -> u64 {
        self.swap_generation.load(Ordering::Acquire)
    }

    /// Whether the engine is currently in degraded (per-image) mode.
    pub fn degraded(&self) -> bool {
        self.degraded_now.load(Ordering::Acquire)
    }

    /// Current submission-queue depth (requests accepted but not yet
    /// pulled into a batch bucket).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot for reporting. Counters are
    /// read individually (relaxed), so totals can be off by in-flight
    /// requests — fine for observability, never for control flow.
    pub fn report(&self) -> MetricsReport {
        let latencies = self.latencies_us.lock().sorted();
        let batches = self.batches_dispatched.load(Ordering::Relaxed);
        let images = self.batched_images.load(Ordering::Relaxed);
        MetricsReport {
            requests_submitted: self.requests_submitted.load(Ordering::Relaxed),
            requests_rejected: self.requests_rejected.load(Ordering::Relaxed),
            requests_invalid: self.requests_invalid.load(Ordering::Relaxed),
            requests_completed: self.requests_completed.load(Ordering::Relaxed),
            requests_failed: self.requests_failed.load(Ordering::Relaxed),
            batches_dispatched: batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                images as f64 / batches as f64
            },
            max_batch_seen: self.max_batch_seen.load(Ordering::Relaxed) as u64,
            batch_size_counts: self
                .batch_size_counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            queue_depth: self.queue_depth() as u64,
            latency_mean_us: if latencies.is_empty() {
                0
            } else {
                latencies.iter().sum::<u64>() / latencies.len() as u64
            },
            latency_p50_us: percentile(&latencies, 5_000),
            latency_p90_us: percentile(&latencies, 9_000),
            latency_p99_us: percentile(&latencies, 9_900),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            workers_respawned: self.workers_respawned.load(Ordering::Relaxed),
            batches_failed: self.batches_failed.load(Ordering::Relaxed),
            deadline_missed_queue: self.deadline_missed_queue.load(Ordering::Relaxed),
            deadline_missed_batch: self.deadline_missed_batch.load(Ordering::Relaxed),
            deadline_overshoot_buckets: self
                .deadline_overshoot_buckets
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            degraded_entered: self.degraded_entered.load(Ordering::Relaxed),
            degraded_exited: self.degraded_exited.load(Ordering::Relaxed),
            degraded_now: self.degraded(),
            single_image_fallbacks: self.single_image_fallbacks.load(Ordering::Relaxed),
            swap_generation: self.swap_generation(),
            replicas: Vec::new(),
            detection: self.detection_report(),
            arena: ArenaReport::capture(),
        }
    }

    /// The `detection` report section, or `None` when triage never ran
    /// (so reports from servers without a detector stay byte-identical
    /// to the pre-triage schema).
    fn detection_report(&self) -> Option<DetectionReport> {
        let clean = self.triage_clean.load(Ordering::Relaxed);
        let flagged = self.triage_flagged.load(Ordering::Relaxed);
        let fail_open_panics = self.triage_fail_open_panics.load(Ordering::Relaxed);
        let fail_open_timeouts = self.triage_fail_open_timeouts.load(Ordering::Relaxed);
        let fail_open_errors = self.triage_fail_open_errors.load(Ordering::Relaxed);
        let hardened_served = self.hardened_served.load(Ordering::Relaxed);
        let shed = self.triage_shed.load(Ordering::Relaxed);
        let refits = self.refits_swapped.load(Ordering::Relaxed)
            + self.refits_rejected.load(Ordering::Relaxed)
            + self.refits_failed.load(Ordering::Relaxed)
            + self.refit_panics.load(Ordering::Relaxed);
        let activity = clean + flagged + fail_open_panics + fail_open_timeouts + fail_open_errors;
        if activity == 0 && hardened_served == 0 && shed == 0 && refits == 0 {
            return None;
        }
        let scored = clean + flagged;
        let scores = self.triage_scores_bp.lock().sorted();
        let hardened = self.hardened_latencies_us.lock().sorted();
        Some(DetectionReport {
            clean,
            flagged,
            fail_open_panics,
            fail_open_timeouts,
            fail_open_errors,
            mean_score_time_us: self
                .triage_score_time_us
                .load(Ordering::Relaxed)
                .checked_div(scored)
                .unwrap_or(0),
            score_p50_bp: percentile(&scores, 5_000),
            score_p90_bp: percentile(&scores, 9_000),
            score_p99_bp: percentile(&scores, 9_900),
            hardened_served,
            hardened_latency_p50_us: percentile(&hardened, 5_000),
            hardened_latency_p99_us: percentile(&hardened, 9_900),
            shed,
            detector_generation: self.detector_generation(),
            refits_swapped: self.refits_swapped.load(Ordering::Relaxed),
            refits_rejected: self.refits_rejected.load(Ordering::Relaxed),
            refits_failed: self.refits_failed.load(Ordering::Relaxed),
            refit_panics: self.refit_panics.load(Ordering::Relaxed),
            threshold_bp: self.threshold_bp.load(Ordering::Relaxed),
            tenants_tracked: self.tenants_tracked.load(Ordering::Relaxed),
        })
    }
}

/// The triage/hardened-path section of a [`MetricsReport`]. Present
/// only on servers that ran the detection stage; absent from (and
/// ignored in) legacy reports.
///
/// `Deserialize` is implemented by hand: the adaptive-detection fields
/// (`shed` onward) were added after the first triage reports shipped,
/// so reports from that era must keep parsing (absent fields default
/// to zero).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DetectionReport {
    /// Images scored below the flagging threshold.
    pub clean: u64,
    /// Images flagged and routed to the hardened path.
    pub flagged: u64,
    /// Scoring attempts that failed open because the detector panicked.
    pub fail_open_panics: u64,
    /// Scoring attempts that failed open past the latency budget.
    pub fail_open_timeouts: u64,
    /// Scoring attempts that failed open on a typed detector error.
    pub fail_open_errors: u64,
    /// Mean per-image triage overhead in microseconds.
    pub mean_score_time_us: u64,
    /// Median anomaly score in basis points (0..=10 000).
    pub score_p50_bp: u64,
    /// 90th-percentile anomaly score in basis points.
    pub score_p90_bp: u64,
    /// 99th-percentile anomaly score in basis points.
    pub score_p99_bp: u64,
    /// Requests completed on the hardened path.
    pub hardened_served: u64,
    /// Median end-to-end latency of hardened-path requests (µs).
    pub hardened_latency_p50_us: u64,
    /// 99th-percentile end-to-end latency of hardened-path requests (µs).
    pub hardened_latency_p99_us: u64,
    /// Flagged requests shed because the hardened path hit its
    /// per-window budget cap.
    pub shed: u64,
    /// Generation of the deployed detector (0 = as started; bumped once
    /// per completed detector swap). Aggregated as the minimum across
    /// replicas, like `swap_generation`.
    pub detector_generation: u64,
    /// Background refits that validated and were deployed.
    pub refits_swapped: u64,
    /// Refits rejected because held-out AUC regressed.
    pub refits_rejected: u64,
    /// Refits that failed with a typed error.
    pub refits_failed: u64,
    /// Refit attempts that panicked (caught; incumbent kept serving).
    pub refit_panics: u64,
    /// Current effective triage threshold in basis points (gauge; the
    /// worst — highest — replica in an aggregated report).
    pub threshold_bp: u64,
    /// Tenants tracked by the baseline table (gauge; summed across
    /// replicas).
    pub tenants_tracked: u64,
}

impl Deserialize for DetectionReport {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(DetectionReport {
            clean: req_field(value, "clean")?,
            flagged: req_field(value, "flagged")?,
            fail_open_panics: req_field(value, "fail_open_panics")?,
            fail_open_timeouts: req_field(value, "fail_open_timeouts")?,
            fail_open_errors: req_field(value, "fail_open_errors")?,
            mean_score_time_us: req_field(value, "mean_score_time_us")?,
            score_p50_bp: req_field(value, "score_p50_bp")?,
            score_p90_bp: req_field(value, "score_p90_bp")?,
            score_p99_bp: req_field(value, "score_p99_bp")?,
            hardened_served: req_field(value, "hardened_served")?,
            hardened_latency_p50_us: req_field(value, "hardened_latency_p50_us")?,
            hardened_latency_p99_us: req_field(value, "hardened_latency_p99_us")?,
            // Adaptive-era fields: absent in static-triage reports.
            shed: opt_field(value, "shed")?,
            detector_generation: opt_field(value, "detector_generation")?,
            refits_swapped: opt_field(value, "refits_swapped")?,
            refits_rejected: opt_field(value, "refits_rejected")?,
            refits_failed: opt_field(value, "refits_failed")?,
            refit_panics: opt_field(value, "refit_panics")?,
            threshold_bp: opt_field(value, "threshold_bp")?,
            tenants_tracked: opt_field(value, "tenants_tracked")?,
        })
    }
}

/// Point-in-time snapshot of [`ServerMetrics`], ready for JSON or text.
///
/// `Deserialize` is implemented by hand: reports written before the
/// router era lack the `swap_generation` and `replicas` fields, and
/// those must keep parsing (they default to `0` / empty).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsReport {
    /// Requests accepted into the queue.
    pub requests_submitted: u64,
    /// Requests shed because the queue was full.
    pub requests_rejected: u64,
    /// Requests refused by admission-time input validation.
    pub requests_invalid: u64,
    /// Requests answered with a verdict.
    pub requests_completed: u64,
    /// Requests answered with an error.
    pub requests_failed: u64,
    /// Batches handed to the worker pool.
    pub batches_dispatched: u64,
    /// Mean images per dispatched batch.
    pub mean_batch_size: f64,
    /// Largest batch dispatched.
    pub max_batch_seen: u64,
    /// Batches dispatched per size (index 0 = size 1).
    pub batch_size_counts: Vec<u64>,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
    /// Mean end-to-end latency (µs).
    pub latency_mean_us: u64,
    /// Median end-to-end latency (µs).
    pub latency_p50_us: u64,
    /// 90th-percentile end-to-end latency (µs).
    pub latency_p90_us: u64,
    /// 99th-percentile end-to-end latency (µs).
    pub latency_p99_us: u64,
    /// Worker panics caught while executing batches or single images.
    pub worker_panics: u64,
    /// Worker threads replaced after dying mid-flight.
    pub workers_respawned: u64,
    /// Batches whose every request was answered with an error.
    pub batches_failed: u64,
    /// Requests whose deadline expired before leaving the queue.
    pub deadline_missed_queue: u64,
    /// Requests whose deadline expired between dispatch and execution.
    pub deadline_missed_batch: u64,
    /// Deadline-miss overshoot histogram: <1 ms, <10 ms, <100 ms, rest.
    pub deadline_overshoot_buckets: Vec<u64>,
    /// Times the circuit breaker opened (entered degraded mode).
    pub degraded_entered: u64,
    /// Times a probe batch closed the breaker again.
    pub degraded_exited: u64,
    /// Whether the engine was degraded at snapshot time.
    pub degraded_now: bool,
    /// Requests served by isolated per-image classification.
    pub single_image_fallbacks: u64,
    /// Generation of the deployed weights (0 = the weights the server
    /// started with; bumped once per completed hot swap). In an
    /// aggregated router report this is the *minimum* across replicas —
    /// the generation every replica has provably reached.
    pub swap_generation: u64,
    /// Per-replica breakdown, populated only when this report was
    /// aggregated by a router; empty for a single in-process server.
    pub replicas: Vec<ReplicaReport>,
    /// Adversarial-triage section; `None` on servers that never ran
    /// the detection stage (including every pre-triage report).
    pub detection: Option<DetectionReport>,
    /// Compute-plan section (scratch arena + blueprint cache); `None`
    /// until the process has run a planned kernel (and in every
    /// pre-arena report).
    pub arena: Option<ArenaReport>,
}

/// The compute-plan section of a [`MetricsReport`]: process-wide
/// counters from the tensor crate's scratch arena and blueprint
/// selector. A healthy steady-state server shows `scratch_hits`
/// tracking `scratch_acquires` with `scratch_grows` flat — the
/// zero-allocation serving contract, observable in production.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ArenaReport {
    /// Scratch-buffer leases requested by kernels.
    pub scratch_acquires: u64,
    /// Leases served from a pooled buffer without heap growth.
    pub scratch_hits: u64,
    /// Leases that had to allocate or grow (cold path / warm-up).
    pub scratch_grows: u64,
    /// Buffers dropped on release because a thread's pool was full.
    pub scratch_evictions: u64,
    /// Kernel plans served from the blueprint cache.
    pub plan_hits: u64,
    /// Kernel plans built from scratch (one per shape key).
    pub plan_misses: u64,
    /// Blueprints currently cached (gauge; summed across replicas).
    pub plan_entries: u64,
}

impl ArenaReport {
    /// Snapshot of the process-wide arena and selector counters, or
    /// `None` if no planned kernel has run yet (keeps cold reports
    /// schema-identical to the pre-arena era).
    fn capture() -> Option<ArenaReport> {
        let arena = fademl_tensor::plan::alloc::stats();
        let plans = fademl_tensor::plan::selector::stats();
        if arena.acquires == 0 && plans.misses == 0 {
            return None;
        }
        Some(ArenaReport {
            scratch_acquires: arena.acquires,
            scratch_hits: arena.hits,
            scratch_grows: arena.grows,
            scratch_evictions: arena.evictions,
            plan_hits: plans.hits,
            plan_misses: plans.misses,
            plan_entries: plans.entries,
        })
    }
}

impl Deserialize for ArenaReport {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(ArenaReport {
            scratch_acquires: req_field(value, "scratch_acquires")?,
            scratch_hits: req_field(value, "scratch_hits")?,
            scratch_grows: req_field(value, "scratch_grows")?,
            scratch_evictions: req_field(value, "scratch_evictions")?,
            plan_hits: req_field(value, "plan_hits")?,
            plan_misses: req_field(value, "plan_misses")?,
            plan_entries: req_field(value, "plan_entries")?,
        })
    }
}

/// One replica's row in an aggregated router report: enough to see at
/// a glance which replica is shedding, degraded, or behind on a swap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaReport {
    /// Replica index within the router.
    pub replica: u64,
    /// Whether the router considered this replica routable at snapshot
    /// time (not breaker-open, not past its failure threshold).
    pub healthy: bool,
    /// Submission-queue depth at snapshot time.
    pub queue_depth: u64,
    /// Whether the replica's circuit breaker was open (degraded mode).
    pub degraded: bool,
    /// Weight generation this replica is serving.
    pub swap_generation: u64,
    /// Requests this replica shed with `Overloaded`.
    pub requests_rejected: u64,
    /// Requests this replica answered with a verdict.
    pub requests_completed: u64,
    /// Requests this replica answered with an error.
    pub requests_failed: u64,
}

impl ReplicaReport {
    /// Summarizes one replica's full report into its router-view row.
    pub fn from_report(replica: u64, healthy: bool, report: &MetricsReport) -> Self {
        ReplicaReport {
            replica,
            healthy,
            queue_depth: report.queue_depth,
            degraded: report.degraded_now,
            swap_generation: report.swap_generation,
            requests_rejected: report.requests_rejected,
            requests_completed: report.requests_completed,
            requests_failed: report.requests_failed,
        }
    }
}

impl MetricsReport {
    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Folds per-replica reports into one router-level report. Each
    /// part is `(replica index, healthy, report)`.
    ///
    /// Counters sum; histograms sum elementwise; the mean batch size is
    /// recomputed from totals; latency percentiles take the worst
    /// replica (a conservative tail estimate — exact merging would need
    /// the raw reservoirs); the mean latency is weighted by completed
    /// requests; `swap_generation` is the minimum across replicas, the
    /// generation every replica has provably reached.
    pub fn aggregate(parts: &[(u64, bool, MetricsReport)]) -> MetricsReport {
        let mut total = MetricsReport::empty();
        let mut latency_weight: u64 = 0;
        let mut latency_weighted_sum: u128 = 0;
        let mut score_time_weight: u64 = 0;
        let mut score_time_weighted_sum: u128 = 0;
        let mut batched_images = 0.0f64;
        for (replica, healthy, part) in parts {
            total.requests_submitted += part.requests_submitted;
            total.requests_rejected += part.requests_rejected;
            total.requests_invalid += part.requests_invalid;
            total.requests_completed += part.requests_completed;
            total.requests_failed += part.requests_failed;
            total.batches_dispatched += part.batches_dispatched;
            batched_images += part.mean_batch_size * part.batches_dispatched as f64;
            total.max_batch_seen = total.max_batch_seen.max(part.max_batch_seen);
            sum_into(&mut total.batch_size_counts, &part.batch_size_counts);
            total.queue_depth += part.queue_depth;
            latency_weight += part.requests_completed;
            latency_weighted_sum +=
                u128::from(part.latency_mean_us) * u128::from(part.requests_completed);
            total.latency_p50_us = total.latency_p50_us.max(part.latency_p50_us);
            total.latency_p90_us = total.latency_p90_us.max(part.latency_p90_us);
            total.latency_p99_us = total.latency_p99_us.max(part.latency_p99_us);
            total.worker_panics += part.worker_panics;
            total.workers_respawned += part.workers_respawned;
            total.batches_failed += part.batches_failed;
            total.deadline_missed_queue += part.deadline_missed_queue;
            total.deadline_missed_batch += part.deadline_missed_batch;
            sum_into(
                &mut total.deadline_overshoot_buckets,
                &part.deadline_overshoot_buckets,
            );
            total.degraded_entered += part.degraded_entered;
            total.degraded_exited += part.degraded_exited;
            total.degraded_now |= part.degraded_now;
            total.single_image_fallbacks += part.single_image_fallbacks;
            if let Some(detection) = &part.detection {
                let merged = total.detection.get_or_insert_with(DetectionReport::default);
                // Counters sum; the mean score time is re-weighted
                // below; percentiles take the worst replica (same
                // conservative tail estimate as latency percentiles).
                merged.clean += detection.clean;
                merged.flagged += detection.flagged;
                merged.fail_open_panics += detection.fail_open_panics;
                merged.fail_open_timeouts += detection.fail_open_timeouts;
                merged.fail_open_errors += detection.fail_open_errors;
                merged.score_p50_bp = merged.score_p50_bp.max(detection.score_p50_bp);
                merged.score_p90_bp = merged.score_p90_bp.max(detection.score_p90_bp);
                merged.score_p99_bp = merged.score_p99_bp.max(detection.score_p99_bp);
                merged.hardened_served += detection.hardened_served;
                merged.hardened_latency_p50_us = merged
                    .hardened_latency_p50_us
                    .max(detection.hardened_latency_p50_us);
                merged.hardened_latency_p99_us = merged
                    .hardened_latency_p99_us
                    .max(detection.hardened_latency_p99_us);
                merged.shed += detection.shed;
                merged.refits_swapped += detection.refits_swapped;
                merged.refits_rejected += detection.refits_rejected;
                merged.refits_failed += detection.refits_failed;
                merged.refit_panics += detection.refit_panics;
                // Highest threshold = the most defensive replica; the
                // fleet is at least this far from its floor.
                merged.threshold_bp = merged.threshold_bp.max(detection.threshold_bp);
                merged.tenants_tracked += detection.tenants_tracked;
                score_time_weight += detection.clean + detection.flagged;
                score_time_weighted_sum += u128::from(detection.mean_score_time_us)
                    * u128::from(detection.clean + detection.flagged);
            }
            if let Some(arena) = &part.arena {
                let merged = total.arena.get_or_insert_with(ArenaReport::default);
                merged.scratch_acquires += arena.scratch_acquires;
                merged.scratch_hits += arena.scratch_hits;
                merged.scratch_grows += arena.scratch_grows;
                merged.scratch_evictions += arena.scratch_evictions;
                merged.plan_hits += arena.plan_hits;
                merged.plan_misses += arena.plan_misses;
                merged.plan_entries += arena.plan_entries;
            }
            total
                .replicas
                .push(ReplicaReport::from_report(*replica, *healthy, part));
        }
        total.mean_batch_size = if total.batches_dispatched == 0 {
            0.0
        } else {
            batched_images / total.batches_dispatched as f64
        };
        total.latency_mean_us = if latency_weight == 0 {
            0
        } else {
            u64::try_from(latency_weighted_sum / u128::from(latency_weight)).unwrap_or(u64::MAX)
        };
        total.swap_generation = parts
            .iter()
            .map(|(_, _, part)| part.swap_generation)
            .min()
            .unwrap_or(0);
        if let Some(detection) = &mut total.detection {
            detection.mean_score_time_us = if score_time_weight == 0 {
                0
            } else {
                u64::try_from(score_time_weighted_sum / u128::from(score_time_weight))
                    .unwrap_or(u64::MAX)
            };
            // Minimum across the replicas that carry a detection
            // section — the detector generation the fleet has provably
            // reached, mirroring `swap_generation`.
            detection.detector_generation = parts
                .iter()
                .filter_map(|(_, _, part)| part.detection.as_ref())
                .map(|d| d.detector_generation)
                .min()
                .unwrap_or(0);
        }
        total
    }

    /// All-zero report, the identity element for [`aggregate`](Self::aggregate).
    fn empty() -> MetricsReport {
        MetricsReport {
            requests_submitted: 0,
            requests_rejected: 0,
            requests_invalid: 0,
            requests_completed: 0,
            requests_failed: 0,
            batches_dispatched: 0,
            mean_batch_size: 0.0,
            max_batch_seen: 0,
            batch_size_counts: Vec::new(),
            queue_depth: 0,
            latency_mean_us: 0,
            latency_p50_us: 0,
            latency_p90_us: 0,
            latency_p99_us: 0,
            worker_panics: 0,
            workers_respawned: 0,
            batches_failed: 0,
            deadline_missed_queue: 0,
            deadline_missed_batch: 0,
            deadline_overshoot_buckets: Vec::new(),
            degraded_entered: 0,
            degraded_exited: 0,
            degraded_now: false,
            single_image_fallbacks: 0,
            swap_generation: 0,
            replicas: Vec::new(),
            detection: None,
            arena: None,
        }
    }

    /// Human-readable multi-line rendering for logs and reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("serving metrics\n");
        out.push_str(&format!(
            "  requests: {} submitted, {} completed, {} failed, {} rejected, {} invalid (queue depth {})\n",
            self.requests_submitted,
            self.requests_completed,
            self.requests_failed,
            self.requests_rejected,
            self.requests_invalid,
            self.queue_depth,
        ));
        out.push_str(&format!(
            "  batches:  {} dispatched, mean size {:.2}, max size {}\n",
            self.batches_dispatched, self.mean_batch_size, self.max_batch_seen,
        ));
        let histogram: Vec<String> = self
            .batch_size_counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(i, count)| format!("{}×{count}", i + 1))
            .collect();
        out.push_str(&format!(
            "  batch size histogram: [{}]\n",
            histogram.join(", ")
        ));
        out.push_str(&format!(
            "  latency:  mean {}µs, p50 {}µs, p90 {}µs, p99 {}µs\n",
            self.latency_mean_us, self.latency_p50_us, self.latency_p90_us, self.latency_p99_us,
        ));
        out.push_str(&format!(
            "  faults:   {} worker panics, {} workers respawned, {} batches failed, {} single-image fallbacks\n",
            self.worker_panics,
            self.workers_respawned,
            self.batches_failed,
            self.single_image_fallbacks,
        ));
        out.push_str(&format!(
            "  degraded: entered {}, exited {}, currently {}\n",
            self.degraded_entered,
            self.degraded_exited,
            if self.degraded_now { "yes" } else { "no" },
        ));
        let buckets = &self.deadline_overshoot_buckets;
        out.push_str(&format!(
            "  deadline misses: {} in queue, {} in batch; overshoot [<1ms: {}, <10ms: {}, <100ms: {}, ≥100ms: {}]\n",
            self.deadline_missed_queue,
            self.deadline_missed_batch,
            buckets.first().copied().unwrap_or(0),
            buckets.get(1).copied().unwrap_or(0),
            buckets.get(2).copied().unwrap_or(0),
            buckets.get(3).copied().unwrap_or(0),
        ));
        out.push_str(&format!(
            "  weights:  generation {}\n",
            self.swap_generation
        ));
        if let Some(d) = &self.detection {
            out.push_str(&format!(
                "  triage:   {} clean, {} flagged, fail-open [{} panic, {} timeout, {} error], mean score time {}µs\n",
                d.clean,
                d.flagged,
                d.fail_open_panics,
                d.fail_open_timeouts,
                d.fail_open_errors,
                d.mean_score_time_us,
            ));
            out.push_str(&format!(
                "  scores:   p50 {}bp, p90 {}bp, p99 {}bp\n",
                d.score_p50_bp, d.score_p90_bp, d.score_p99_bp,
            ));
            out.push_str(&format!(
                "  hardened: {} served, {} shed, latency p50 {}µs, p99 {}µs\n",
                d.hardened_served, d.shed, d.hardened_latency_p50_us, d.hardened_latency_p99_us,
            ));
            out.push_str(&format!(
                "  adaptive: detector gen {}, refits [{} swapped, {} rejected, {} failed, {} panicked], threshold {}bp, {} tenants\n",
                d.detector_generation,
                d.refits_swapped,
                d.refits_rejected,
                d.refits_failed,
                d.refit_panics,
                d.threshold_bp,
                d.tenants_tracked,
            ));
        }
        if let Some(a) = &self.arena {
            out.push_str(&format!(
                "  compute:  scratch [{} acquires, {} hits, {} grows, {} evictions], plans [{} hits, {} misses, {} cached]\n",
                a.scratch_acquires,
                a.scratch_hits,
                a.scratch_grows,
                a.scratch_evictions,
                a.plan_hits,
                a.plan_misses,
                a.plan_entries,
            ));
        }
        for r in &self.replicas {
            out.push_str(&format!(
                "  replica {}: {}, gen {}, depth {}, {} done, {} failed, {} shed{}\n",
                r.replica,
                if r.healthy { "healthy" } else { "unhealthy" },
                r.swap_generation,
                r.queue_depth,
                r.requests_completed,
                r.requests_failed,
                r.requests_rejected,
                if r.degraded { ", degraded" } else { "" },
            ));
        }
        out
    }
}

/// Elementwise `lhs += rhs`, growing `lhs` if `rhs` is longer (replica
/// histograms can differ in length across configs).
fn sum_into(lhs: &mut Vec<u64>, rhs: &[u64]) {
    if lhs.len() < rhs.len() {
        lhs.resize(rhs.len(), 0);
    }
    for (slot, add) in lhs.iter_mut().zip(rhs) {
        *slot += add;
    }
}

/// Required-field lookup for the hand-written report deserializers.
fn req_field<T: Deserialize>(
    value: &serde::Value,
    name: &str,
) -> std::result::Result<T, serde::Error> {
    let field = value
        .get(name)
        .ok_or_else(|| serde::Error::custom(format!("missing field `{name}`")))?;
    T::from_value(field)
}

/// Optional-field lookup: fields added after a schema first shipped are
/// absent in old JSON and fall back to their zero value.
fn opt_field<T: Deserialize + Default>(
    value: &serde::Value,
    name: &str,
) -> std::result::Result<T, serde::Error> {
    match value.get(name) {
        Some(field) => T::from_value(field),
        None => Ok(T::default()),
    }
}

impl Deserialize for MetricsReport {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(MetricsReport {
            requests_submitted: req_field(value, "requests_submitted")?,
            requests_rejected: req_field(value, "requests_rejected")?,
            requests_invalid: req_field(value, "requests_invalid")?,
            requests_completed: req_field(value, "requests_completed")?,
            requests_failed: req_field(value, "requests_failed")?,
            batches_dispatched: req_field(value, "batches_dispatched")?,
            mean_batch_size: req_field(value, "mean_batch_size")?,
            max_batch_seen: req_field(value, "max_batch_seen")?,
            batch_size_counts: req_field(value, "batch_size_counts")?,
            queue_depth: req_field(value, "queue_depth")?,
            latency_mean_us: req_field(value, "latency_mean_us")?,
            latency_p50_us: req_field(value, "latency_p50_us")?,
            latency_p90_us: req_field(value, "latency_p90_us")?,
            latency_p99_us: req_field(value, "latency_p99_us")?,
            worker_panics: req_field(value, "worker_panics")?,
            workers_respawned: req_field(value, "workers_respawned")?,
            batches_failed: req_field(value, "batches_failed")?,
            deadline_missed_queue: req_field(value, "deadline_missed_queue")?,
            deadline_missed_batch: req_field(value, "deadline_missed_batch")?,
            deadline_overshoot_buckets: req_field(value, "deadline_overshoot_buckets")?,
            degraded_entered: req_field(value, "degraded_entered")?,
            degraded_exited: req_field(value, "degraded_exited")?,
            degraded_now: req_field(value, "degraded_now")?,
            single_image_fallbacks: req_field(value, "single_image_fallbacks")?,
            swap_generation: opt_field(value, "swap_generation")?,
            replicas: opt_field(value, "replicas")?,
            detection: opt_field(value, "detection")?,
            arena: opt_field(value, "arena")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServerMetrics::new(8);
        m.record_enqueue_attempt();
        m.record_submitted();
        m.record_enqueue_attempt();
        m.record_submitted();
        m.record_enqueue_attempt();
        m.record_rejected();
        m.record_dequeued();
        m.record_batch(2);
        m.record_completed(100);
        m.record_completed(300);
        m.record_failed();
        let r = m.report();
        assert_eq!(r.requests_submitted, 2);
        assert_eq!(r.requests_rejected, 1);
        assert_eq!(r.requests_completed, 2);
        assert_eq!(r.requests_failed, 1);
        assert_eq!(r.batches_dispatched, 1);
        assert_eq!(r.queue_depth, 1);
        assert_eq!(r.max_batch_seen, 2);
        assert_eq!(r.batch_size_counts[1], 1);
        assert!((r.mean_batch_size - 2.0).abs() < 1e-9);
        assert_eq!(r.latency_mean_us, 200);
        assert_eq!(r.latency_p50_us, 300); // nearest-rank on 2 samples
    }

    #[test]
    fn queue_depth_never_underflows() {
        let m = ServerMetrics::new(4);
        m.record_dequeued();
        assert_eq!(m.queue_depth(), 0);
    }

    #[test]
    fn percentiles_on_spread() {
        let m = ServerMetrics::new(4);
        for us in 1..=100u64 {
            m.record_completed(us);
        }
        let r = m.report();
        assert_eq!(r.latency_p50_us, 51);
        assert_eq!(r.latency_p90_us, 90);
        assert_eq!(r.latency_p99_us, 99);
    }

    #[test]
    fn fault_counters_accumulate() {
        let m = ServerMetrics::new(4);
        m.record_worker_panic();
        m.record_worker_panic();
        m.record_worker_respawn();
        m.record_batch_failed();
        m.record_invalid();
        m.record_single_fallback();
        m.record_degraded_enter();
        assert!(m.degraded());
        m.record_degraded_exit();
        assert!(!m.degraded());
        let r = m.report();
        assert_eq!(r.worker_panics, 2);
        assert_eq!(r.workers_respawned, 1);
        assert_eq!(r.batches_failed, 1);
        assert_eq!(r.requests_invalid, 1);
        assert_eq!(r.single_image_fallbacks, 1);
        assert_eq!(r.degraded_entered, 1);
        assert_eq!(r.degraded_exited, 1);
        assert!(!r.degraded_now);
    }

    #[test]
    fn deadline_misses_bucket_by_overshoot() {
        let m = ServerMetrics::new(4);
        m.record_deadline_miss(DeadlineStage::Queue, Duration::from_micros(500));
        m.record_deadline_miss(DeadlineStage::Queue, Duration::from_millis(5));
        m.record_deadline_miss(DeadlineStage::Batch, Duration::from_millis(50));
        m.record_deadline_miss(DeadlineStage::Batch, Duration::from_secs(1));
        let r = m.report();
        assert_eq!(r.deadline_missed_queue, 2);
        assert_eq!(r.deadline_missed_batch, 2);
        assert_eq!(r.deadline_overshoot_buckets, vec![1, 1, 1, 1]);
    }

    #[test]
    fn arena_section_appears_after_a_planned_kernel_and_round_trips() {
        // Run one planned kernel so the process-wide counters are live.
        let x = fademl_tensor::Tensor::zeros(&[4, 8]);
        let y = fademl_tensor::Tensor::zeros(&[8, 4]);
        let _ = x.matmul(&y).expect("matmul");
        let m = ServerMetrics::new(4);
        let report = m.report();
        let arena = report.arena.as_ref().expect("arena section after kernel");
        assert!(arena.scratch_acquires >= arena.scratch_hits);
        assert!(arena.plan_misses + arena.plan_hits > 0);
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back.arena, report.arena);
    }

    #[test]
    fn aggregate_sums_arena_sections_and_tolerates_absent_ones() {
        let with = |hits: u64| MetricsReport {
            arena: Some(ArenaReport {
                scratch_acquires: hits + 1,
                scratch_hits: hits,
                scratch_grows: 1,
                scratch_evictions: 0,
                plan_hits: hits,
                plan_misses: 2,
                plan_entries: 2,
            }),
            ..MetricsReport::empty()
        };
        let parts = vec![
            (0, true, with(10)),
            (1, true, MetricsReport::empty()),
            (2, true, with(5)),
        ];
        let total = MetricsReport::aggregate(&parts);
        let arena = total.arena.expect("merged arena section");
        assert_eq!(arena.scratch_hits, 15);
        assert_eq!(arena.scratch_acquires, 17);
        assert_eq!(arena.scratch_grows, 2);
        assert_eq!(arena.plan_entries, 4);
    }

    #[test]
    fn report_serde_round_trip() {
        let m = ServerMetrics::new(4);
        m.record_submitted();
        m.record_batch(3);
        m.record_completed(42);
        m.record_degraded_enter();
        m.record_deadline_miss(DeadlineStage::Batch, Duration::from_millis(2));
        let report = m.report();
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn swap_generation_is_monotone() {
        let m = ServerMetrics::new(4);
        assert_eq!(m.swap_generation(), 0);
        assert_eq!(m.record_swap(), 1);
        assert_eq!(m.record_swap(), 2);
        assert_eq!(m.swap_generation(), 2);
        assert_eq!(m.report().swap_generation, 2);
    }

    #[test]
    fn aggregate_sums_counters_and_takes_min_generation() {
        let a = ServerMetrics::new(4);
        a.record_enqueue_attempt();
        a.record_submitted();
        a.record_batch(2);
        a.record_completed(100);
        a.record_completed(100);
        a.record_swap();
        a.record_swap();
        let b = ServerMetrics::new(8);
        b.record_enqueue_attempt();
        b.record_submitted();
        b.record_enqueue_attempt();
        b.record_rejected();
        b.record_batch(4);
        b.record_completed(400);
        b.record_degraded_enter();
        b.record_swap();
        let merged = MetricsReport::aggregate(&[(0, true, a.report()), (1, false, b.report())]);
        assert_eq!(merged.requests_submitted, 2);
        assert_eq!(merged.requests_rejected, 1);
        assert_eq!(merged.requests_completed, 3);
        assert_eq!(merged.batches_dispatched, 2);
        // 2 images + 4 images over 2 batches.
        assert!((merged.mean_batch_size - 3.0).abs() < 1e-9);
        assert_eq!(merged.max_batch_seen, 4);
        // b's histogram is longer; merged must cover both.
        assert_eq!(merged.batch_size_counts.len(), 8);
        assert_eq!(merged.batch_size_counts[1], 1);
        assert_eq!(merged.batch_size_counts[3], 1);
        // Weighted mean: (100*2 + 400*1) / 3 = 200.
        assert_eq!(merged.latency_mean_us, 200);
        // Conservative tail: worst replica wins.
        assert_eq!(merged.latency_p99_us, 400);
        assert!(merged.degraded_now);
        // a reached gen 2, b only gen 1 → the fleet has proven gen 1.
        assert_eq!(merged.swap_generation, 1);
        assert_eq!(merged.replicas.len(), 2);
        assert!(merged.replicas[0].healthy);
        assert!(!merged.replicas[1].healthy);
        assert_eq!(merged.replicas[0].swap_generation, 2);
        assert_eq!(merged.replicas[1].requests_rejected, 1);
    }

    #[test]
    fn aggregate_of_nothing_is_empty() {
        let merged = MetricsReport::aggregate(&[]);
        assert_eq!(merged.requests_submitted, 0);
        assert_eq!(merged.swap_generation, 0);
        assert!(merged.replicas.is_empty());
    }

    #[test]
    fn legacy_report_without_router_fields_still_parses() {
        let m = ServerMetrics::new(4);
        m.record_submitted();
        m.record_swap();
        let report = m.report();
        // Simulate a pre-router report: strip the fields that did not
        // exist when the first schema shipped.
        let serde::Value::Map(fields) = report.to_value() else {
            panic!("report must serialize to a map");
        };
        let legacy: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(name, _)| name != "swap_generation" && name != "replicas")
            .collect();
        let back =
            MetricsReport::from_value(&serde::Value::Map(legacy)).expect("legacy schema parses");
        assert_eq!(back.swap_generation, 0);
        assert!(back.replicas.is_empty());
        assert_eq!(back.requests_submitted, report.requests_submitted);
    }

    #[test]
    fn detection_section_absent_until_triage_runs() {
        let m = ServerMetrics::new(4);
        m.record_submitted();
        m.record_completed(50);
        let report = m.report();
        assert!(report.detection.is_none());
        // Absent means absent on the wire too: the JSON must not even
        // mention the key with a null, so pre-triage consumers doing
        // strict schema checks see the exact legacy document... or at
        // worst a null, which `opt` also maps to `None`.
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert!(back.detection.is_none());
    }

    #[test]
    fn detection_counters_accumulate_and_round_trip() {
        let m = ServerMetrics::new(4);
        m.record_triage_clean(4_000, 30);
        m.record_triage_clean(4_500, 50);
        m.record_triage_flagged(8_000, 40);
        m.record_triage_fail_open(FailOpenKind::Panic);
        m.record_triage_fail_open(FailOpenKind::Timeout);
        m.record_triage_fail_open(FailOpenKind::Error);
        m.record_hardened(700);
        let report = m.report();
        let d = report.detection.as_ref().expect("triage ran");
        assert_eq!(d.clean, 2);
        assert_eq!(d.flagged, 1);
        assert_eq!(d.fail_open_panics, 1);
        assert_eq!(d.fail_open_timeouts, 1);
        assert_eq!(d.fail_open_errors, 1);
        assert_eq!(d.mean_score_time_us, 40); // (30 + 50 + 40) / 3
        assert_eq!(d.score_p50_bp, 4_500);
        assert_eq!(d.score_p99_bp, 8_000);
        assert_eq!(d.hardened_served, 1);
        assert_eq!(d.hardened_latency_p50_us, 700);
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn legacy_report_without_detection_field_still_parses() {
        let m = ServerMetrics::new(4);
        m.record_triage_flagged(9_000, 25);
        let report = m.report();
        assert!(report.detection.is_some());
        let serde::Value::Map(fields) = report.to_value() else {
            panic!("report must serialize to a map");
        };
        let legacy: Vec<(String, serde::Value)> = fields
            .into_iter()
            .filter(|(name, _)| name != "detection")
            .collect();
        let back = MetricsReport::from_value(&serde::Value::Map(legacy))
            .expect("pre-triage schema parses");
        assert!(back.detection.is_none());
        assert_eq!(back.requests_submitted, report.requests_submitted);
    }

    #[test]
    fn aggregate_merges_detection_sections() {
        let a = ServerMetrics::new(4);
        a.record_triage_clean(4_000, 10);
        a.record_triage_flagged(8_000, 30);
        a.record_hardened(500);
        let b = ServerMetrics::new(4);
        b.record_submitted(); // no triage on this replica
        let c = ServerMetrics::new(4);
        c.record_triage_clean(3_000, 50);
        c.record_triage_fail_open(FailOpenKind::Panic);
        let merged = MetricsReport::aggregate(&[
            (0, true, a.report()),
            (1, true, b.report()),
            (2, true, c.report()),
        ]);
        let d = merged.detection.as_ref().expect("two replicas triaged");
        assert_eq!(d.clean, 2);
        assert_eq!(d.flagged, 1);
        assert_eq!(d.fail_open_panics, 1);
        assert_eq!(d.hardened_served, 1);
        // Weighted mean: (20*2 + 50*1) / 3 = 30.
        assert_eq!(d.mean_score_time_us, 30);
        // Worst replica wins the score tail.
        assert_eq!(d.score_p99_bp, 8_000);
        // Replicas without triage leave the merged section untouched.
        let plain = MetricsReport::aggregate(&[(0, true, b.report())]);
        assert!(plain.detection.is_none());
    }

    #[test]
    fn adaptive_counters_accumulate_and_round_trip() {
        let m = ServerMetrics::new(4);
        m.record_triage_clean(4_000, 10);
        m.record_triage_shed();
        m.record_triage_shed();
        assert_eq!(m.record_detector_swap(), 1);
        assert_eq!(m.record_detector_swap(), 2);
        assert_eq!(m.detector_generation(), 2);
        m.record_refit_swapped();
        m.record_refit_swapped();
        m.record_refit_rejected();
        m.record_refit_failed();
        m.record_refit_panic();
        m.record_threshold_bp(6_200);
        m.record_tenants_tracked(3);
        let report = m.report();
        let d = report.detection.as_ref().expect("triage ran");
        assert_eq!(d.shed, 2);
        assert_eq!(d.detector_generation, 2);
        assert_eq!(d.refits_swapped, 2);
        assert_eq!(d.refits_rejected, 1);
        assert_eq!(d.refits_failed, 1);
        assert_eq!(d.refit_panics, 1);
        assert_eq!(d.threshold_bp, 6_200);
        assert_eq!(d.tenants_tracked, 3);
        let back: MetricsReport = serde::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn detection_section_materializes_on_refit_activity_alone() {
        // A freshly started adaptive server that has refitted but not
        // yet scored anything must still report the refit outcome.
        let m = ServerMetrics::new(4);
        m.record_refit_rejected();
        let d = m.report().detection.expect("refit activity reported");
        assert_eq!(d.refits_rejected, 1);
        assert_eq!(d.clean, 0);
    }

    #[test]
    fn static_triage_era_detection_section_still_parses() {
        // PR 7-era reports carry only the original twelve detection
        // fields. Strip the adaptive-era keys and the report must parse
        // with those fields at zero.
        let m = ServerMetrics::new(4);
        m.record_triage_clean(4_000, 10);
        m.record_triage_flagged(9_000, 20);
        m.record_hardened(800);
        m.record_detector_swap();
        m.record_refit_swapped();
        m.record_threshold_bp(6_000);
        let report = m.report();
        let serde::Value::Map(fields) = report.to_value() else {
            panic!("report must serialize to a map");
        };
        let adaptive_keys = [
            "shed",
            "detector_generation",
            "refits_swapped",
            "refits_rejected",
            "refits_failed",
            "refit_panics",
            "threshold_bp",
            "tenants_tracked",
        ];
        let legacy: Vec<(String, serde::Value)> = fields
            .into_iter()
            .map(|(name, value)| {
                if name == "detection" {
                    let serde::Value::Map(inner) = value else {
                        panic!("detection must serialize to a map");
                    };
                    let stripped: Vec<(String, serde::Value)> = inner
                        .into_iter()
                        .filter(|(key, _)| !adaptive_keys.contains(&key.as_str()))
                        .collect();
                    (name, serde::Value::Map(stripped))
                } else {
                    (name, value)
                }
            })
            .collect();
        let back = MetricsReport::from_value(&serde::Value::Map(legacy))
            .expect("static-triage-era schema parses");
        let d = back.detection.expect("detection section survives");
        // Original fields intact, adaptive fields defaulted.
        assert_eq!(d.clean, 1);
        assert_eq!(d.flagged, 1);
        assert_eq!(d.hardened_served, 1);
        assert_eq!(d.shed, 0);
        assert_eq!(d.detector_generation, 0);
        assert_eq!(d.refits_swapped, 0);
        assert_eq!(d.threshold_bp, 0);
        assert_eq!(d.tenants_tracked, 0);
    }

    #[test]
    fn aggregate_merges_adaptive_fields() {
        let a = ServerMetrics::new(4);
        a.record_triage_clean(4_000, 10);
        a.record_triage_shed();
        a.record_detector_swap();
        a.record_detector_swap();
        a.record_refit_swapped();
        a.record_threshold_bp(7_000);
        a.record_tenants_tracked(2);
        let b = ServerMetrics::new(4);
        b.record_triage_clean(3_000, 10);
        b.record_detector_swap();
        b.record_refit_rejected();
        b.record_threshold_bp(6_000);
        b.record_tenants_tracked(3);
        let merged = MetricsReport::aggregate(&[(0, true, a.report()), (1, true, b.report())]);
        let d = merged.detection.as_ref().expect("both replicas triaged");
        assert_eq!(d.shed, 1);
        // a reached gen 2, b only gen 1 → the fleet has proven gen 1.
        assert_eq!(d.detector_generation, 1);
        assert_eq!(d.refits_swapped, 1);
        assert_eq!(d.refits_rejected, 1);
        assert_eq!(d.threshold_bp, 7_000);
        assert_eq!(d.tenants_tracked, 5);
    }

    #[test]
    fn render_mentions_adaptive_numbers() {
        let m = ServerMetrics::new(4);
        m.record_triage_clean(4_000, 10);
        m.record_triage_shed();
        m.record_detector_swap();
        m.record_refit_swapped();
        m.record_threshold_bp(6_100);
        let text = m.report().render();
        assert!(text.contains("1 shed"));
        assert!(text.contains("detector gen 1"));
        assert!(text.contains("1 swapped"));
        assert!(text.contains("6100bp"));
    }

    #[test]
    fn render_mentions_detection_when_present() {
        let m = ServerMetrics::new(4);
        m.record_triage_clean(4_000, 10);
        m.record_triage_flagged(9_000, 20);
        m.record_hardened(800);
        let text = m.report().render();
        assert!(text.contains("1 clean, 1 flagged"));
        assert!(text.contains("1 served"));
        let plain = ServerMetrics::new(4);
        assert!(!plain.report().render().contains("triage"));
    }

    #[test]
    fn render_mentions_key_numbers() {
        let m = ServerMetrics::new(4);
        m.record_batch(4);
        m.record_batch(4);
        m.record_worker_panic();
        m.record_degraded_enter();
        let text = m.report().render();
        assert!(text.contains("2 dispatched"));
        assert!(text.contains("4×2"));
        assert!(text.contains("1 worker panics"));
        assert!(text.contains("currently yes"));
    }
}
