//! Deterministic fault injection for chaos-testing the serving engine.
//!
//! Compiled only with the `faults` cargo feature — production builds
//! carry zero injection hooks. A [`FaultPlan`] scripts *where* the
//! engine is wounded:
//!
//! - **panic-on-Nth-batch**: the worker executing the Nth batch panics
//!   mid-execution (caught by the engine's panic isolation);
//! - **kill-worker-on-Nth-batch**: the panic is rethrown past the
//!   worker loop so the whole worker thread dies (exercising the
//!   supervisor's respawn path);
//! - **delay-on-Nth-batch**: the worker sleeps before executing,
//!   forcing in-batch deadline expiry behind it;
//! - **stall-on-Nth-dequeue**: the batcher sleeps before handling a
//!   dequeued request, forcing in-queue deadline expiry and queue
//!   backpressure;
//! - **panic-on-Nth-score** / **delay-on-Nth-score**: the triage
//!   detector panics (or sleeps past its budget) while scoring the Nth
//!   admitted image, exercising the fail-open guarantees of the
//!   detection stage;
//! - **panic-on-Nth-refit**: the detector supervisor panics mid-refit,
//!   exercising refit containment — the incumbent detector must keep
//!   serving and the attempt must be counted as panicked.
//!
//! Batch and dequeue sequence numbers are 1-based and counted by the
//! plan itself (shared across clones), so a single-worker server is
//! fully deterministic. Chaos tests assert the engine's invariant:
//! *every submitted request's handle resolves* — with a verdict or a
//! typed error — no matter which plan is armed.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Duration;

/// A scripted set of faults, cloned into the batcher and every worker.
/// Clones share the sequence counters, so a plan describes one global
/// schedule regardless of how many threads consult it.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    panic_batches: Vec<u64>,
    kill_batches: Vec<u64>,
    batch_delays: Vec<(u64, Duration)>,
    dequeue_stalls: Vec<(u64, Duration)>,
    score_panics: Vec<u64>,
    score_delays: Vec<(u64, Duration)>,
    refit_panics: Vec<u64>,
    batch_seq: Arc<AtomicU64>,
    dequeue_seq: Arc<AtomicU64>,
    score_seq: Arc<AtomicU64>,
    refit_seq: Arc<AtomicU64>,
}

impl FaultPlan {
    /// An empty plan injecting nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The worker executing batch number `seq` (1-based, in arrival
    /// order at the pool) panics mid-execution.
    #[must_use]
    pub fn panic_on_batch(mut self, seq: u64) -> Self {
        self.panic_batches.push(seq);
        self
    }

    /// The worker executing batch number `seq` dies entirely: the
    /// injected panic is rethrown past the worker loop, so the thread
    /// exits uncleanly and the supervisor must respawn it.
    #[must_use]
    pub fn kill_worker_on_batch(mut self, seq: u64) -> Self {
        self.kill_batches.push(seq);
        self
    }

    /// The worker executing batch number `seq` sleeps for `delay`
    /// before touching the pipeline.
    #[must_use]
    pub fn delay_batch(mut self, seq: u64, delay: Duration) -> Self {
        self.batch_delays.push((seq, delay));
        self
    }

    /// The batcher sleeps for `stall` before handling dequeued request
    /// number `seq` (1-based), holding everything behind it in the
    /// queue.
    #[must_use]
    pub fn stall_dequeue(mut self, seq: u64, stall: Duration) -> Self {
        self.dequeue_stalls.push((seq, stall));
        self
    }

    /// The triage detector panics while scoring image number `seq`
    /// (1-based, in admission order). The engine must fail open: the
    /// request is served unscored, never failed.
    #[must_use]
    pub fn panic_on_score(mut self, seq: u64) -> Self {
        self.score_panics.push(seq);
        self
    }

    /// The triage detector sleeps for `delay` while scoring image
    /// number `seq`, blowing any configured scoring budget so the
    /// timeout fail-open path fires.
    #[must_use]
    pub fn delay_score(mut self, seq: u64, delay: Duration) -> Self {
        self.score_delays.push((seq, delay));
        self
    }

    /// The detector supervisor panics during refit attempt number `seq`
    /// (1-based). The supervisor must contain the panic: the incumbent
    /// detector keeps serving and the refit is counted as panicked.
    #[must_use]
    pub fn panic_on_refit(mut self, seq: u64) -> Self {
        self.refit_panics.push(seq);
        self
    }

    /// Supervisor-side hook, called once per refit attempt inside the
    /// refit's panic isolation. May panic.
    pub(crate) fn on_refit(&self) {
        let seq = self.refit_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if self.refit_panics.contains(&seq) {
            std::panic::panic_any(InjectedPanic { seq });
        }
    }

    /// Triage-side hook, called once per scoring attempt inside the
    /// triage stage's panic isolation. May sleep or panic.
    pub(crate) fn on_score(&self) {
        let seq = self.score_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((_, delay)) = self.score_delays.iter().find(|(s, _)| *s == seq) {
            std::thread::sleep(*delay);
        }
        if self.score_panics.contains(&seq) {
            std::panic::panic_any(InjectedPanic { seq });
        }
    }

    /// Worker-side hook, called once per batch inside the engine's
    /// panic isolation. May sleep, panic, or demand the worker's death.
    pub(crate) fn on_batch_start(&self) {
        let seq = self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((_, delay)) = self.batch_delays.iter().find(|(s, _)| *s == seq) {
            std::thread::sleep(*delay);
        }
        if self.kill_batches.contains(&seq) {
            std::panic::panic_any(WorkerKill { seq });
        }
        if self.panic_batches.contains(&seq) {
            std::panic::panic_any(InjectedPanic { seq });
        }
    }

    /// Batcher-side hook, called once per dequeued request.
    pub(crate) fn on_dequeue(&self) {
        let seq = self.dequeue_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some((_, stall)) = self.dequeue_stalls.iter().find(|(s, _)| *s == seq) {
            std::thread::sleep(*stall);
        }
    }
}

/// Panic payload for `panic_on_batch`: caught by the worker's batch
/// isolation; the worker survives.
#[derive(Debug)]
pub(crate) struct InjectedPanic {
    pub(crate) seq: u64,
}

/// Panic payload for `kill_worker_on_batch`: rethrown past the worker
/// loop so the thread dies and the supervisor respawns it.
#[derive(Debug)]
pub(crate) struct WorkerKill {
    pub(crate) seq: u64,
}

/// Renders a caught panic payload for `ServeError::BatchFailed`.
pub(crate) fn describe_payload(payload: &(dyn Any + Send)) -> Option<String> {
    if let Some(panic) = payload.downcast_ref::<InjectedPanic>() {
        return Some(format!("injected panic on batch {}", panic.seq));
    }
    if let Some(kill) = payload.downcast_ref::<WorkerKill>() {
        return Some(format!("injected worker kill on batch {}", kill.seq));
    }
    None
}

/// Whether a caught payload demands the worker thread's death.
pub(crate) fn is_worker_kill(payload: &(dyn Any + Send)) -> bool {
    payload.is::<WorkerKill>()
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for *injected* panics only —
/// genuine panics still print. Keeps chaos-test and demo output
/// readable; called automatically by
/// [`InferenceServer::start_with_faults`](crate::InferenceServer::start_with_faults).
pub fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<InjectedPanic>() || payload.is::<WorkerKill>() {
                return;
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn hooks_fire_on_scheduled_sequence_numbers() {
        let plan = FaultPlan::new()
            .panic_on_batch(2)
            .kill_worker_on_batch(3)
            .delay_batch(1, Duration::from_millis(1));
        // Batch 1: delayed but quiet.
        assert!(catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).is_ok());
        // Batch 2: injected panic.
        let payload = catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).unwrap_err();
        assert_eq!(
            describe_payload(payload.as_ref()).unwrap(),
            "injected panic on batch 2"
        );
        assert!(!is_worker_kill(payload.as_ref()));
        // Batch 3: worker kill.
        let payload = catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).unwrap_err();
        assert!(is_worker_kill(payload.as_ref()));
        assert_eq!(
            describe_payload(payload.as_ref()).unwrap(),
            "injected worker kill on batch 3"
        );
        // Batch 4: nothing scheduled.
        assert!(catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).is_ok());
    }

    #[test]
    fn clones_share_one_schedule() {
        let plan = FaultPlan::new().panic_on_batch(2);
        let clone = plan.clone();
        assert!(catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).is_ok());
        // The clone sees the shared counter: its first call is batch 2.
        assert!(catch_unwind(AssertUnwindSafe(|| clone.on_batch_start())).is_err());
    }

    #[test]
    fn foreign_payloads_are_not_described() {
        let payload = catch_unwind(|| panic!("genuine")).unwrap_err();
        assert!(describe_payload(payload.as_ref()).is_none());
        assert!(!is_worker_kill(payload.as_ref()));
    }

    #[test]
    fn score_hooks_count_independently() {
        let plan = FaultPlan::new()
            .panic_on_score(2)
            .delay_score(1, Duration::from_millis(2));
        let start = std::time::Instant::now();
        assert!(catch_unwind(AssertUnwindSafe(|| plan.on_score())).is_ok());
        assert!(start.elapsed() >= Duration::from_millis(2));
        let payload = catch_unwind(AssertUnwindSafe(|| plan.on_score())).unwrap_err();
        assert!(payload.is::<InjectedPanic>());
        // The batch counter is untouched by score events.
        assert!(catch_unwind(AssertUnwindSafe(|| plan.on_batch_start())).is_ok());
    }

    #[test]
    fn dequeue_stall_counts_independently() {
        let plan = FaultPlan::new().stall_dequeue(1, Duration::from_millis(5));
        let start = std::time::Instant::now();
        plan.on_dequeue();
        assert!(start.elapsed() >= Duration::from_millis(5));
        let start = std::time::Instant::now();
        plan.on_dequeue();
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
