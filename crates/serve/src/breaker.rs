//! Graceful degradation: a circuit breaker shared by the worker pool.
//!
//! After `threshold` *consecutive* batch-level failures (worker panics
//! or whole-batch pipeline errors), the breaker opens and the engine
//! sheds to **degraded mode**: batches still coalesce for transport,
//! but workers execute them one image at a time, each classification
//! isolated in its own `catch_unwind`, so one adversarially-poisoned
//! image can no longer take down co-batched requests. While degraded,
//! every `probe_every`-th batch is attempted on the full batched path;
//! one successful probe closes the breaker and restores batching.
//!
//! Pure atomics — shared by any number of workers without locking.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::metrics::ServerMetrics;

/// How a worker should execute the batch it just received.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// Normal batched execution. `probe: true` marks a recovery probe
    /// issued while degraded — its success closes the breaker.
    Batched {
        /// Whether this batch doubles as a degraded-mode recovery probe.
        probe: bool,
    },
    /// Degraded execution: one image at a time, individually isolated.
    PerImage,
}

/// Consecutive-failure circuit breaker (see module docs).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: usize,
    probe_every: usize,
    consecutive_failures: AtomicUsize,
    degraded: AtomicBool,
    /// Batches planned since entering degraded mode; drives the probe
    /// cadence.
    degraded_batches: AtomicUsize,
}

impl CircuitBreaker {
    /// A breaker opening after `threshold` consecutive batch failures
    /// and probing every `probe_every`-th degraded batch.
    pub fn new(threshold: usize, probe_every: usize) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            probe_every: probe_every.max(1),
            consecutive_failures: AtomicUsize::new(0),
            degraded: AtomicBool::new(false),
            degraded_batches: AtomicUsize::new(0),
        }
    }

    /// Whether the breaker is currently open (degraded mode).
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Decides how the next batch should execute, advancing the probe
    /// cadence while degraded.
    pub fn plan_batch(&self) -> BatchMode {
        if !self.is_degraded() {
            return BatchMode::Batched { probe: false };
        }
        let planned = self.degraded_batches.fetch_add(1, Ordering::AcqRel) + 1;
        if planned.is_multiple_of(self.probe_every) {
            BatchMode::Batched { probe: true }
        } else {
            BatchMode::PerImage
        }
    }

    /// Records a successful batched execution. A successful probe
    /// closes the breaker and reports the transition to `metrics`.
    pub fn record_success(&self, probe: bool, metrics: &ServerMetrics) {
        self.consecutive_failures.store(0, Ordering::Release);
        if probe && self.degraded.swap(false, Ordering::AcqRel) {
            metrics.record_degraded_exit();
        }
    }

    /// Records a batch-level failure (panic or whole-batch pipeline
    /// error). Opens the breaker — reporting the transition to
    /// `metrics` — once `threshold` consecutive failures accumulate.
    pub fn record_batch_failure(&self, metrics: &ServerMetrics) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::AcqRel) + 1;
        if failures >= self.threshold && !self.degraded.swap(true, Ordering::AcqRel) {
            self.degraded_batches.store(0, Ordering::Release);
            metrics.record_degraded_enter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_consecutive_failures_only() {
        let metrics = ServerMetrics::new(4);
        let breaker = CircuitBreaker::new(3, 4);
        breaker.record_batch_failure(&metrics);
        breaker.record_batch_failure(&metrics);
        // A success in between resets the streak.
        breaker.record_success(false, &metrics);
        breaker.record_batch_failure(&metrics);
        breaker.record_batch_failure(&metrics);
        assert!(!breaker.is_degraded());
        breaker.record_batch_failure(&metrics);
        assert!(breaker.is_degraded());
        assert_eq!(metrics.report().degraded_entered, 1);
        // Further failures don't re-enter.
        breaker.record_batch_failure(&metrics);
        assert_eq!(metrics.report().degraded_entered, 1);
    }

    #[test]
    fn probe_cadence_and_recovery() {
        let metrics = ServerMetrics::new(4);
        let breaker = CircuitBreaker::new(1, 3);
        assert_eq!(breaker.plan_batch(), BatchMode::Batched { probe: false });
        breaker.record_batch_failure(&metrics);
        assert!(breaker.is_degraded());
        // Two per-image batches, then a probe.
        assert_eq!(breaker.plan_batch(), BatchMode::PerImage);
        assert_eq!(breaker.plan_batch(), BatchMode::PerImage);
        assert_eq!(breaker.plan_batch(), BatchMode::Batched { probe: true });
        // A failed probe keeps the breaker open…
        breaker.record_batch_failure(&metrics);
        assert!(breaker.is_degraded());
        // …and a successful one closes it.
        assert_eq!(breaker.plan_batch(), BatchMode::PerImage);
        assert_eq!(breaker.plan_batch(), BatchMode::PerImage);
        assert_eq!(breaker.plan_batch(), BatchMode::Batched { probe: true });
        breaker.record_success(true, &metrics);
        assert!(!breaker.is_degraded());
        assert_eq!(breaker.plan_batch(), BatchMode::Batched { probe: false });
        let report = metrics.report();
        assert_eq!(report.degraded_entered, 1);
        assert_eq!(report.degraded_exited, 1);
        assert!(!report.degraded_now);
    }

    #[test]
    fn non_probe_success_does_not_close_breaker() {
        let metrics = ServerMetrics::new(4);
        let breaker = CircuitBreaker::new(1, 2);
        breaker.record_batch_failure(&metrics);
        assert!(breaker.is_degraded());
        breaker.record_success(false, &metrics);
        assert!(breaker.is_degraded());
        assert_eq!(metrics.report().degraded_exited, 0);
    }
}
