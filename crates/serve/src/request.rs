//! In-flight request plumbing: the queued request, the slot a worker
//! fills, and the handle a client waits on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fademl::{ThreatModel, Verdict};
use fademl_tensor::Tensor;

use crate::error::{Result, ServeError};
use crate::triage::TriageVerdict;

/// One-shot rendezvous between a worker (producer) and a client
/// (consumer). Std primitives on purpose: the wait side needs a
/// `Condvar`, and poisoning is handled by taking the inner value.
#[derive(Debug)]
pub struct ResponseSlot {
    outcome: Mutex<Option<Result<Verdict>>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Fills the slot and wakes every waiter. Later fills are ignored —
    /// first verdict wins. Returns `true` when this call was the one
    /// that filled the slot, so callers can keep metrics exact even
    /// when failure paths race (e.g. a panic handler and the mid-batch
    /// drop guard both answering the same request).
    pub(crate) fn fill(&self, result: Result<Verdict>) -> bool {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(result);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    fn wait(&self) -> Result<Verdict> {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn wait_timeout(&self, timeout: Duration) -> Option<Result<Verdict>> {
        let deadline = Instant::now() + timeout;
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.clone() {
                return Some(outcome);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            guard = self
                .ready
                .wait_timeout(guard, remaining)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
    }

    fn try_get(&self) -> Option<Result<Verdict>> {
        self.outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Client-side handle to a submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        ResponseHandle { slot }
    }

    /// Blocks until the verdict (or error) for this request is ready.
    ///
    /// # Errors
    ///
    /// Returns whatever error the serving engine answered with —
    /// [`ServeError::Pipeline`] for inference failures,
    /// [`ServeError::BatchFailed`] when a panic took the batch down,
    /// [`ServeError::DeadlineExceeded`] for expired deadlines,
    /// [`ServeError::ShuttingDown`] if the request was dropped during
    /// shutdown.
    pub fn wait(self) -> Result<Verdict> {
        self.slot.wait()
    }

    /// Blocks for at most `timeout`; `None` when the request is still
    /// in flight afterwards. Useful for callers enforcing their own
    /// liveness bound on top of server-side deadlines.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Verdict>> {
        self.slot.wait_timeout(timeout)
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_get(&self) -> Option<Result<Verdict>> {
        self.slot.try_get()
    }
}

/// A request travelling through the engine.
#[derive(Debug)]
pub struct Request {
    /// `[C, H, W]` image to classify.
    pub image: Tensor,
    /// Where the image enters the pipeline.
    pub threat: ThreatModel,
    /// Where the verdict goes.
    pub slot: Arc<ResponseSlot>,
    /// Submission timestamp for end-to-end latency.
    pub submitted_at: Instant,
    /// Absolute expiry; a request past its deadline is answered with
    /// [`ServeError::DeadlineExceeded`] instead of a stale verdict.
    pub deadline: Option<Instant>,
    /// Admission-time triage outcome; `None` on servers without a
    /// detection stage. A flagged request is routed to the hardened
    /// path by the worker pool.
    pub triage: Option<TriageVerdict>,
}

impl Request {
    /// Answers this request with an error. Returns `true` when this
    /// call filled the slot (first answer wins).
    pub fn fail(self, error: ServeError) -> bool {
        self.slot.fill(Err(error))
    }

    /// How far past its deadline this request is at `now`, or `None`
    /// while it is still live (or has no deadline).
    pub fn overshoot(&self, now: Instant) -> Option<Duration> {
        match self.deadline {
            Some(deadline) if now > deadline => Some(now.saturating_duration_since(deadline)),
            _ => None,
        }
    }
}

/// A coalesced batch ready for a worker: all requests share one threat
/// model, so they stage and forward together.
#[derive(Debug)]
pub struct Batch {
    /// Common threat model of every request in the batch.
    pub threat: ThreatModel,
    /// The member requests, in arrival order.
    pub requests: Vec<Request>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DeadlineStage;

    fn dummy_verdict() -> Verdict {
        use fademl_nn::metrics::Prediction;
        Verdict {
            class: 1,
            confidence: 0.9,
            top5: Prediction {
                top_classes: vec![1, 0],
                top_probs: vec![0.9, 0.1],
            },
            probabilities: Tensor::from_vec(vec![0.1, 0.9], fademl_tensor::Shape::new(vec![2]))
                .unwrap(),
            detection: None,
        }
    }

    #[test]
    fn handle_sees_filled_slot() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        assert!(handle.try_get().is_none());
        assert!(slot.fill(Ok(dummy_verdict())));
        assert_eq!(handle.try_get().unwrap().unwrap().class, 1);
        assert_eq!(handle.wait().unwrap().class, 1);
    }

    #[test]
    fn first_fill_wins() {
        let slot = ResponseSlot::new();
        assert!(slot.fill(Err(ServeError::ShuttingDown)));
        assert!(!slot.fill(Ok(dummy_verdict())));
        assert_eq!(
            ResponseHandle::new(slot).wait(),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn wait_blocks_until_fill() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        let filler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.fill(Ok(dummy_verdict()));
        });
        assert_eq!(handle.wait().unwrap().class, 1);
        filler.join().unwrap();
    }

    #[test]
    fn wait_timeout_returns_none_then_some() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        slot.fill(Err(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Batch,
        }));
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(10)),
            Some(Err(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Batch,
            }))
        );
    }

    #[test]
    fn overshoot_tracks_deadline() {
        let now = Instant::now();
        let request = Request {
            image: Tensor::zeros(&[1, 2, 2]),
            threat: ThreatModel::I,
            slot: ResponseSlot::new(),
            submitted_at: now,
            deadline: Some(now + Duration::from_millis(10)),
            triage: None,
        };
        assert_eq!(request.overshoot(now), None);
        assert_eq!(request.overshoot(now + Duration::from_millis(10)), None);
        assert_eq!(
            request.overshoot(now + Duration::from_millis(15)),
            Some(Duration::from_millis(5))
        );
        let undated = Request {
            deadline: None,
            ..request
        };
        assert_eq!(undated.overshoot(now + Duration::from_secs(60)), None);
    }
}
