//! In-flight request plumbing: the queued request, the slot a worker
//! fills, and the handle a client waits on.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use fademl::{ThreatModel, Verdict};
use fademl_tensor::Tensor;

use crate::error::{Result, ServeError};

/// One-shot rendezvous between a worker (producer) and a client
/// (consumer). Std primitives on purpose: the wait side needs a
/// `Condvar`, and poisoning is handled by taking the inner value.
#[derive(Debug)]
pub struct ResponseSlot {
    outcome: Mutex<Option<Result<Verdict>>>,
    ready: Condvar,
}

impl ResponseSlot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ResponseSlot {
            outcome: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    /// Fills the slot and wakes every waiter. Later fills are ignored —
    /// first verdict wins.
    pub(crate) fn fill(&self, result: Result<Verdict>) {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(result);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> Result<Verdict> {
        let mut guard = self.outcome.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = self.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn try_get(&self) -> Option<Result<Verdict>> {
        self.outcome
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Client-side handle to a submitted request.
#[derive(Debug)]
pub struct ResponseHandle {
    slot: Arc<ResponseSlot>,
}

impl ResponseHandle {
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        ResponseHandle { slot }
    }

    /// Blocks until the verdict (or error) for this request is ready.
    ///
    /// # Errors
    ///
    /// Returns whatever error the serving engine answered with —
    /// [`ServeError::Pipeline`] for inference failures,
    /// [`ServeError::ShuttingDown`] if the request was dropped during
    /// shutdown.
    pub fn wait(self) -> Result<Verdict> {
        self.slot.wait()
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_get(&self) -> Option<Result<Verdict>> {
        self.slot.try_get()
    }
}

/// A request travelling through the engine.
#[derive(Debug)]
pub struct Request {
    /// `[C, H, W]` image to classify.
    pub image: Tensor,
    /// Where the image enters the pipeline.
    pub threat: ThreatModel,
    /// Where the verdict goes.
    pub slot: Arc<ResponseSlot>,
    /// Submission timestamp for end-to-end latency.
    pub submitted_at: Instant,
}

impl Request {
    /// Answers this request with an error.
    pub fn fail(self, error: ServeError) {
        self.slot.fill(Err(error));
    }
}

/// A coalesced batch ready for a worker: all requests share one threat
/// model, so they stage and forward together.
#[derive(Debug)]
pub struct Batch {
    /// Common threat model of every request in the batch.
    pub threat: ThreatModel,
    /// The member requests, in arrival order.
    pub requests: Vec<Request>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn dummy_verdict() -> Verdict {
        use fademl_nn::metrics::Prediction;
        Verdict {
            class: 1,
            confidence: 0.9,
            top5: Prediction {
                top_classes: vec![1, 0],
                top_probs: vec![0.9, 0.1],
            },
            probabilities: Tensor::from_vec(vec![0.1, 0.9], fademl_tensor::Shape::new(vec![2]))
                .unwrap(),
        }
    }

    #[test]
    fn handle_sees_filled_slot() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        assert!(handle.try_get().is_none());
        slot.fill(Ok(dummy_verdict()));
        assert_eq!(handle.try_get().unwrap().unwrap().class, 1);
        assert_eq!(handle.wait().unwrap().class, 1);
    }

    #[test]
    fn first_fill_wins() {
        let slot = ResponseSlot::new();
        slot.fill(Err(ServeError::ShuttingDown));
        slot.fill(Ok(dummy_verdict()));
        assert_eq!(
            ResponseHandle::new(slot).wait(),
            Err(ServeError::ShuttingDown)
        );
    }

    #[test]
    fn wait_blocks_until_fill() {
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        let filler = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            slot.fill(Ok(dummy_verdict()));
        });
        assert_eq!(handle.wait().unwrap().class, 1);
        filler.join().unwrap();
    }
}
