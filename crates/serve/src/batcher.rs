//! Dynamic batching: coalesce submitted requests into `[N, C, H, W]`
//! batches, keyed by threat model, bounded by `max_batch_size`, with a
//! linger deadline so a lone request never waits forever.
//!
//! The struct is pure state-machine logic — no threads, no channels —
//! so the coalescing policy is unit-testable in isolation. The server's
//! batcher thread drives it with `push` / `take_expired` / `flush_all`.

use std::time::{Duration, Instant};

use fademl::ThreatModel;

use crate::request::{Batch, Request};

/// One partially-filled batch for a single threat model.
#[derive(Debug)]
struct Bucket {
    requests: Vec<Request>,
    /// When this bucket must be dispatched even if not full.
    deadline: Instant,
}

/// Coalescing state machine.
///
/// Requests for different [`ThreatModel`]s never share a batch: TM-I
/// skips the filter while TM-II/III stage differently, so mixing them
/// would force per-image staging and defeat batching.
#[derive(Debug)]
pub struct Batcher {
    max_batch_size: usize,
    linger: Duration,
    buckets: [Option<Bucket>; 3],
}

impl Batcher {
    /// A batcher dispatching at `max_batch_size` or after `linger`.
    pub fn new(max_batch_size: usize, linger: Duration) -> Self {
        assert!(max_batch_size > 0, "max_batch_size must be positive");
        Batcher {
            max_batch_size,
            linger,
            buckets: [None, None, None],
        }
    }

    /// Number of requests currently waiting in buckets.
    pub fn pending(&self) -> usize {
        self.buckets
            .iter()
            .flatten()
            .map(|b| b.requests.len())
            .sum()
    }

    /// Adds a request to its threat bucket. Returns a full batch when
    /// the bucket reaches `max_batch_size`.
    pub fn push(&mut self, request: Request, now: Instant) -> Option<Batch> {
        let threat = request.threat;
        let (max_batch_size, linger) = (self.max_batch_size, self.linger);
        for (slot, t) in self.buckets.iter_mut().zip(ThreatModel::ALL) {
            if t != threat {
                continue;
            }
            let bucket = slot.get_or_insert_with(|| Bucket {
                requests: Vec::with_capacity(max_batch_size),
                deadline: now + linger,
            });
            bucket.requests.push(request);
            if bucket.requests.len() >= max_batch_size {
                return slot.take().map(|full| Batch {
                    threat,
                    requests: full.requests,
                });
            }
            return None;
        }
        // Unreachable: `buckets` is zipped with `ThreatModel::ALL`,
        // which covers every variant. Dropping would lose the request's
        // response slot, so the typed fallback is "no batch yet".
        None
    }

    /// The soonest bucket deadline, if any bucket is non-empty. The
    /// driving thread uses this as its `recv_timeout` bound.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.buckets.iter().flatten().map(|b| b.deadline).min()
    }

    /// Dispatches every bucket whose linger deadline has passed.
    pub fn take_expired(&mut self, now: Instant) -> Vec<Batch> {
        let mut out = Vec::new();
        for (slot, threat) in self.buckets.iter_mut().zip(ThreatModel::ALL) {
            if let Some(bucket) = slot.take_if(|b| b.deadline <= now) {
                out.push(Batch {
                    threat,
                    requests: bucket.requests,
                });
            }
        }
        out
    }

    /// Dispatches everything, regardless of deadlines (shutdown drain).
    pub fn flush_all(&mut self) -> Vec<Batch> {
        let mut out = Vec::new();
        for (slot, threat) in self.buckets.iter_mut().zip(ThreatModel::ALL) {
            if let Some(bucket) = slot.take() {
                out.push(Batch {
                    threat,
                    requests: bucket.requests,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ResponseSlot;
    use fademl_tensor::Tensor;

    fn request(threat: ThreatModel) -> Request {
        Request {
            image: Tensor::zeros(&[1, 2, 2]),
            threat,
            slot: ResponseSlot::new(),
            submitted_at: Instant::now(),
            deadline: None,
            triage: None,
        }
    }

    #[test]
    fn full_bucket_dispatches_immediately() {
        let mut b = Batcher::new(4, Duration::from_millis(100));
        let now = Instant::now();
        for _ in 0..3 {
            assert!(b.push(request(ThreatModel::I), now).is_none());
        }
        let batch = b.push(request(ThreatModel::I), now).expect("4th fills");
        assert_eq!(batch.requests.len(), 4);
        assert_eq!(batch.threat, ThreatModel::I);
        assert_eq!(b.pending(), 0);
        // Next request starts a fresh bucket — max size is respected.
        assert!(b.push(request(ThreatModel::I), now).is_none());
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn threat_models_never_share_a_batch() {
        let mut b = Batcher::new(2, Duration::from_millis(100));
        let now = Instant::now();
        assert!(b.push(request(ThreatModel::I), now).is_none());
        assert!(b.push(request(ThreatModel::II), now).is_none());
        assert!(b.push(request(ThreatModel::III), now).is_none());
        assert_eq!(b.pending(), 3); // three buckets of one, none full
        let batch = b.push(request(ThreatModel::II), now).expect("TM-II fills");
        assert_eq!(batch.threat, ThreatModel::II);
        assert!(batch.requests.iter().all(|r| r.threat == ThreatModel::II));
        // Flush delivers the two singleton buckets separately.
        let rest = b.flush_all();
        assert_eq!(rest.len(), 2);
        for batch in &rest {
            assert!(batch.requests.iter().all(|r| r.threat == batch.threat));
        }
    }

    #[test]
    fn linger_deadline_expires_buckets() {
        let mut b = Batcher::new(8, Duration::from_millis(10));
        let now = Instant::now();
        b.push(request(ThreatModel::III), now);
        assert_eq!(b.next_deadline(), Some(now + Duration::from_millis(10)));
        assert!(b.take_expired(now).is_empty()); // not yet
        let later = now + Duration::from_millis(11);
        let expired = b.take_expired(later);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].requests.len(), 1);
        assert_eq!(b.next_deadline(), None);
    }

    #[test]
    fn deadline_is_earliest_across_buckets() {
        let mut b = Batcher::new(8, Duration::from_millis(10));
        let t0 = Instant::now();
        b.push(request(ThreatModel::I), t0);
        let t1 = t0 + Duration::from_millis(5);
        b.push(request(ThreatModel::II), t1);
        assert_eq!(b.next_deadline(), Some(t0 + Duration::from_millis(10)));
        // Only the first bucket expires at its deadline.
        let batches = b.take_expired(t0 + Duration::from_millis(10));
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].threat, ThreatModel::I);
        assert_eq!(b.pending(), 1);
    }

    #[test]
    fn arrival_order_preserved_within_batch() {
        let mut b = Batcher::new(3, Duration::from_millis(100));
        let now = Instant::now();
        let reqs: Vec<_> = (0..3).map(|_| request(ThreatModel::I)).collect();
        let ids: Vec<_> = reqs
            .iter()
            .map(|r| std::sync::Arc::as_ptr(&r.slot))
            .collect();
        let mut batch = None;
        for r in reqs {
            batch = b.push(r, now);
        }
        let got: Vec<_> = batch
            .expect("third push fills the bucket")
            .requests
            .iter()
            .map(|r| std::sync::Arc::as_ptr(&r.slot))
            .collect();
        assert_eq!(got, ids);
    }
}
