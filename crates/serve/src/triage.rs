//! Admission-adjacent adversarial triage: every admitted image is
//! scored by a multi-scale isolation-forest [`Detector`] before it is
//! batched, and flagged inputs are routed to a *hardened* execution
//! path instead of being dropped.
//!
//! Design stance (defense in depth, not a gate):
//!
//! - **Detection is advisory.** A detector failure — panic, scoring
//!   error, or blown latency budget — resolves to a typed
//!   [`TriageVerdict::FailOpen`] and the request is served on the
//!   normal path. The detector can never fail a request.
//! - **Flagged ≠ rejected.** The FAdeML paper shows filter-aware
//!   attackers defeat any single static filter, so dropping "detected"
//!   inputs would both break availability on false positives and teach
//!   the attacker the decision boundary. Instead a flagged input is
//!   served through a *stronger* filter configuration and isolated
//!   per-image execution (the same machinery the circuit breaker uses
//!   for degraded mode), so one poisoned input cannot take co-batched
//!   requests down with it.
//! - **Filter-bypassing threat models are revoked.** A flagged TM-I
//!   request (attacker past the filter) is executed as TM-III — the
//!   hardened filter is applied regardless of where the input claimed
//!   to enter the pipeline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use fademl::{Detection, InferencePipeline, ThreatModel};
use fademl_detect::Detector;
use fademl_filters::FilterSpec;
use fademl_tensor::Tensor;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::{Result, ServeError};
use crate::metrics::ServerMetrics;
use crate::server::{fault_on_score, FaultHandle};

/// Configuration for the triage stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageConfig {
    /// Anomaly-score threshold: scores `>= threshold` flag the input.
    /// Isolation-forest scores live in `(0, 1)`; ~0.5 is "ordinary",
    /// values toward 1 are increasingly isolated.
    pub threshold: f32,
    /// Filter deployed on the hardened path. Should smooth harder than
    /// the normal pipeline's filter (e.g. `Lap {np: 32}` over
    /// `Lap {np: 8}`).
    pub hardened_filter: FilterSpec,
    /// Per-image scoring budget in microseconds; `0` disables the
    /// budget. A score that arrives over budget is discarded and the
    /// request fails open ([`FailOpenKind::Timeout`]) — a detector too
    /// slow to keep up must not become the latency floor.
    pub score_budget_us: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            threshold: 0.6,
            hardened_filter: FilterSpec::Lap { np: 32 },
            score_budget_us: 0,
        }
    }
}

impl TriageConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a non-finite or out-of-range
    /// threshold, or a hardened filter spec that cannot be built.
    pub fn validate(&self) -> Result<()> {
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(ServeError::InvalidConfig {
                reason: format!("triage threshold must be in [0, 1], got {}", self.threshold),
            });
        }
        self.hardened_filter
            .build()
            .map_err(|err| ServeError::InvalidConfig {
                reason: format!("hardened filter: {err}"),
            })?;
        Ok(())
    }
}

/// Why a triage scoring attempt failed open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOpenKind {
    /// The detector panicked mid-score.
    Panic,
    /// The score arrived after the configured budget elapsed.
    Timeout,
    /// The detector returned a typed error (e.g. feature-dimension
    /// mismatch after a bad artifact swap).
    Error,
}

/// Outcome of scoring one admitted image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TriageVerdict {
    /// Score below threshold: serve on the normal batched path.
    Clean {
        /// The anomaly score.
        score: f32,
    },
    /// Score at or above threshold: route to the hardened path.
    Flagged {
        /// The anomaly score.
        score: f32,
    },
    /// The detector failed; the request is served on the normal path
    /// as if it had never been scored. Never fails the request.
    FailOpen {
        /// What went wrong.
        kind: FailOpenKind,
    },
}

impl TriageVerdict {
    /// The verdict annotation carried back to the client, if any.
    /// `hardened` reports whether the engine actually executed the
    /// request on the hardened path (a flagged request on a server
    /// without triage machinery would not be).
    pub(crate) fn detection(&self, hardened: bool) -> Option<Detection> {
        match *self {
            TriageVerdict::Clean { score } => Some(Detection {
                score,
                flagged: false,
                hardened: false,
            }),
            TriageVerdict::Flagged { score } => Some(Detection {
                score,
                flagged: true,
                hardened,
            }),
            TriageVerdict::FailOpen { .. } => None,
        }
    }
}

/// Escalates the threat model for hardened execution: TM-I claims to
/// bypass the pre-processing filter, and a flagged input loses that
/// privilege — the hardened filter applies no matter where the input
/// entered. TM-II/III already pass through the filter stage.
pub(crate) fn hardened_threat(threat: ThreatModel) -> ThreatModel {
    match threat {
        ThreatModel::I => ThreatModel::III,
        other => other,
    }
}

/// The live triage stage: the fitted detector plus the hardened
/// pipeline it routes flagged inputs to. The hardened pipeline tracks
/// weight swaps (same model, stronger filter) behind its own swap
/// point, mirroring the engine's main pipeline slot.
#[derive(Debug)]
pub(crate) struct TriageRuntime {
    detector: Detector,
    config: TriageConfig,
    hardened: RwLock<Arc<InferencePipeline>>,
}

impl TriageRuntime {
    /// Builds the runtime, constructing the hardened pipeline from the
    /// base pipeline's model and the configured stronger filter.
    pub(crate) fn new(
        detector: Detector,
        config: TriageConfig,
        base: &InferencePipeline,
    ) -> Result<Self> {
        config.validate()?;
        let hardened = build_hardened(base, config.hardened_filter)?;
        Ok(TriageRuntime {
            detector,
            config,
            hardened: RwLock::new(Arc::new(hardened)),
        })
    }

    /// Snapshot of the hardened pipeline (same discipline as the main
    /// pipeline slot: one `Arc` clone, guard dropped immediately).
    pub(crate) fn hardened_snapshot(&self) -> Arc<InferencePipeline> {
        Arc::clone(&self.hardened.read())
    }

    /// Rebuilds the hardened pipeline from freshly swapped weights so
    /// the hardened path never serves stale generations. The filter
    /// spec was validated at startup, so a rebuild failure is
    /// impossible in practice; if it ever happened the previous
    /// hardened pipeline keeps serving (old weights beat no service).
    pub(crate) fn rebuild_hardened(&self, next: &InferencePipeline) {
        if let Ok(rebuilt) = build_hardened(next, self.config.hardened_filter) {
            *self.hardened.write() = Arc::new(rebuilt);
        }
    }

    /// Scores one admitted image under full fault isolation. Always
    /// returns a verdict — panics, errors and budget overruns all
    /// resolve to [`TriageVerdict::FailOpen`].
    pub(crate) fn score(
        &self,
        image: &Tensor,
        metrics: &ServerMetrics,
        faults: &FaultHandle,
    ) -> TriageVerdict {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault_on_score(faults);
            self.detector.score_image(image)
        }));
        let took_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let score = match outcome {
            Err(_) => {
                metrics.record_triage_fail_open(FailOpenKind::Panic);
                return TriageVerdict::FailOpen {
                    kind: FailOpenKind::Panic,
                };
            }
            Ok(Err(_)) => {
                metrics.record_triage_fail_open(FailOpenKind::Error);
                return TriageVerdict::FailOpen {
                    kind: FailOpenKind::Error,
                };
            }
            Ok(Ok(score)) => score,
        };
        if self.config.score_budget_us > 0 && took_us > self.config.score_budget_us {
            metrics.record_triage_fail_open(FailOpenKind::Timeout);
            return TriageVerdict::FailOpen {
                kind: FailOpenKind::Timeout,
            };
        }
        let score_bp = score_basis_points(score);
        if score >= self.config.threshold {
            metrics.record_triage_flagged(score_bp, took_us);
            TriageVerdict::Flagged { score }
        } else {
            metrics.record_triage_clean(score_bp, took_us);
            TriageVerdict::Clean { score }
        }
    }
}

/// Same model, stronger filter: the hardened variant of `base`.
fn build_hardened(base: &InferencePipeline, filter: FilterSpec) -> Result<InferencePipeline> {
    InferencePipeline::new(base.model().clone(), filter).map_err(|err| ServeError::InvalidConfig {
        reason: format!("hardened pipeline: {err}"),
    })
}

/// Anomaly score in integer basis points for histogram recording —
/// integer microsecond/basis-point reservoirs keep NaN out of the
/// percentile math by construction.
fn score_basis_points(score: f32) -> u64 {
    (score.clamp(0.0, 1.0) * 10_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(TriageConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_threshold_is_refused() {
        for threshold in [f32::NAN, -0.1, 1.5] {
            let config = TriageConfig {
                threshold,
                ..TriageConfig::default()
            };
            assert!(
                matches!(config.validate(), Err(ServeError::InvalidConfig { .. })),
                "threshold {threshold} must be refused"
            );
        }
    }

    #[test]
    fn bad_hardened_filter_is_refused() {
        let config = TriageConfig {
            hardened_filter: FilterSpec::Median { window: 2 }, // even window
            ..TriageConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn config_serde_round_trip() {
        let config = TriageConfig {
            threshold: 0.55,
            hardened_filter: FilterSpec::Lar { r: 3 },
            score_budget_us: 2_500,
        };
        let json = serde::json::to_string_pretty(&config);
        let back: TriageConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn hardened_threat_revokes_filter_bypass() {
        assert_eq!(hardened_threat(ThreatModel::I), ThreatModel::III);
        assert_eq!(hardened_threat(ThreatModel::II), ThreatModel::II);
        assert_eq!(hardened_threat(ThreatModel::III), ThreatModel::III);
    }

    #[test]
    fn verdict_detection_annotations() {
        assert_eq!(
            TriageVerdict::Clean { score: 0.4 }.detection(false),
            Some(Detection {
                score: 0.4,
                flagged: false,
                hardened: false,
            })
        );
        assert_eq!(
            TriageVerdict::Flagged { score: 0.8 }.detection(true),
            Some(Detection {
                score: 0.8,
                flagged: true,
                hardened: true,
            })
        );
        assert_eq!(
            TriageVerdict::FailOpen {
                kind: FailOpenKind::Panic
            }
            .detection(false),
            None
        );
    }

    #[test]
    fn score_basis_points_clamps() {
        assert_eq!(score_basis_points(0.5), 5_000);
        assert_eq!(score_basis_points(-1.0), 0);
        assert_eq!(score_basis_points(2.0), 10_000);
    }
}
