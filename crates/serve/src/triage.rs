//! Admission-adjacent adversarial triage: every admitted image is
//! scored by a multi-scale isolation-forest [`Detector`] before it is
//! batched, and flagged inputs are routed to a *hardened* execution
//! path instead of being dropped.
//!
//! Design stance (defense in depth, not a gate):
//!
//! - **Detection is advisory.** A detector failure — panic, scoring
//!   error, or blown latency budget — resolves to a typed
//!   [`TriageVerdict::FailOpen`] and the request is served on the
//!   normal path. The detector can never fail a request.
//! - **Flagged ≠ rejected.** The FAdeML paper shows filter-aware
//!   attackers defeat any single static filter, so dropping "detected"
//!   inputs would both break availability on false positives and teach
//!   the attacker the decision boundary. Instead a flagged input is
//!   served through a *stronger* filter configuration and isolated
//!   per-image execution (the same machinery the circuit breaker uses
//!   for degraded mode), so one poisoned input cannot take co-batched
//!   requests down with it.
//! - **Filter-bypassing threat models are revoked.** A flagged TM-I
//!   request (attacker past the filter) is executed as TM-III — the
//!   hardened filter is applied regardless of where the input claimed
//!   to enter the pipeline.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use fademl::{Detection, InferencePipeline, ThreatModel};
use fademl_detect::{
    BaselineConfig, ControllerConfig, Detector, FeatureReservoir, TenantBaselines,
    ThresholdController, MAX_RESERVOIR,
};
use fademl_filters::FilterSpec;
use fademl_tensor::Tensor;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::error::{Result, ServeError};
use crate::metrics::ServerMetrics;
use crate::server::{fault_on_score, FaultHandle};

/// Configuration for the triage stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TriageConfig {
    /// Anomaly-score threshold: scores `>= threshold` flag the input.
    /// Isolation-forest scores live in `(0, 1)`; ~0.5 is "ordinary",
    /// values toward 1 are increasingly isolated.
    pub threshold: f32,
    /// Filter deployed on the hardened path. Should smooth harder than
    /// the normal pipeline's filter (e.g. `Lap {np: 32}` over
    /// `Lap {np: 8}`).
    pub hardened_filter: FilterSpec,
    /// Per-image scoring budget in microseconds; `0` disables the
    /// budget. A score that arrives over budget is discarded and the
    /// request fails open ([`FailOpenKind::Timeout`]) — a detector too
    /// slow to keep up must not become the latency floor.
    pub score_budget_us: u64,
}

impl Default for TriageConfig {
    fn default() -> Self {
        TriageConfig {
            threshold: 0.6,
            hardened_filter: FilterSpec::Lap { np: 32 },
            score_budget_us: 0,
        }
    }
}

impl TriageConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for a non-finite or out-of-range
    /// threshold, or a hardened filter spec that cannot be built.
    pub fn validate(&self) -> Result<()> {
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(ServeError::InvalidConfig {
                reason: format!("triage threshold must be in [0, 1], got {}", self.threshold),
            });
        }
        self.hardened_filter
            .build()
            .map_err(|err| ServeError::InvalidConfig {
                reason: format!("hardened filter: {err}"),
            })?;
        Ok(())
    }
}

/// Knobs for the *adaptive* triage stage: the reservoir feeding online
/// refits, the per-tenant baseline table, and the budget-feedback
/// threshold controller. See
/// [`InferenceServer::start_adaptive`](crate::InferenceServer::start_adaptive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Budget-feedback loop holding hardened-path load at its target.
    pub controller: ControllerConfig,
    /// Per-tenant clean-score baseline table.
    pub baselines: BaselineConfig,
    /// Clean-verdict feature vectors the refit reservoir holds.
    pub reservoir_capacity: usize,
    /// Seed of the reservoir's deterministic sampling stream.
    pub reservoir_seed: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            controller: ControllerConfig::default(),
            baselines: BaselineConfig::default(),
            reservoir_capacity: 1_024,
            reservoir_seed: 0x5EED_F00D,
        }
    }
}

impl AdaptiveConfig {
    /// Validates every sub-config.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending knob.
    pub fn validate(&self) -> Result<()> {
        self.controller.validate().map_err(invalid_config)?;
        self.baselines.validate().map_err(invalid_config)?;
        if !(2..=MAX_RESERVOIR).contains(&self.reservoir_capacity) {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "reservoir capacity must be in 2..={MAX_RESERVOIR}, got {}",
                    self.reservoir_capacity
                ),
            });
        }
        Ok(())
    }
}

/// Maps a detect-crate config error onto the serving error surface.
fn invalid_config(err: fademl_detect::DetectError) -> ServeError {
    ServeError::InvalidConfig {
        reason: err.to_string(),
    }
}

/// Why a triage scoring attempt failed open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailOpenKind {
    /// The detector panicked mid-score.
    Panic,
    /// The score arrived after the configured budget elapsed.
    Timeout,
    /// The detector returned a typed error (e.g. feature-dimension
    /// mismatch after a bad artifact swap).
    Error,
}

/// Outcome of scoring one admitted image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TriageVerdict {
    /// Score below threshold: serve on the normal batched path.
    Clean {
        /// The anomaly score.
        score: f32,
    },
    /// Score at or above threshold: route to the hardened path.
    Flagged {
        /// The anomaly score.
        score: f32,
    },
    /// The detector failed; the request is served on the normal path
    /// as if it had never been scored. Never fails the request.
    FailOpen {
        /// What went wrong.
        kind: FailOpenKind,
    },
    /// Flagged, but the hardened path already absorbed its per-window
    /// budget cap: the request is *shed* with a typed
    /// [`ServeError::Overloaded`] instead of being served. This is the
    /// anti-flooding rail — an attacker saturating the detector
    /// degrades to load-shedding, never to a blinded detector or an
    /// overwhelmed hardened path.
    Shed {
        /// The anomaly score that flagged the request.
        score: f32,
    },
}

impl TriageVerdict {
    /// The verdict annotation carried back to the client, if any.
    /// `hardened` reports whether the engine actually executed the
    /// request on the hardened path (a flagged request on a server
    /// without triage machinery would not be).
    pub(crate) fn detection(&self, hardened: bool) -> Option<Detection> {
        match *self {
            TriageVerdict::Clean { score } => Some(Detection {
                score,
                flagged: false,
                hardened: false,
            }),
            TriageVerdict::Flagged { score } => Some(Detection {
                score,
                flagged: true,
                hardened,
            }),
            // Shed requests are answered with a typed error at
            // admission; they never carry a verdict to annotate.
            TriageVerdict::FailOpen { .. } | TriageVerdict::Shed { .. } => None,
        }
    }
}

/// Escalates the threat model for hardened execution: TM-I claims to
/// bypass the pre-processing filter, and a flagged input loses that
/// privilege — the hardened filter applies no matter where the input
/// entered. TM-II/III already pass through the filter stage.
pub(crate) fn hardened_threat(threat: ThreatModel) -> ThreatModel {
    match threat {
        ThreatModel::I => ThreatModel::III,
        other => other,
    }
}

/// Mutable adaptive state behind one mutex: the refit reservoir, the
/// tenant baseline table, the threshold controller, and a reusable
/// feature buffer. One lock per scored frame keeps the controller's
/// window accounting and the reservoir's sampling stream strictly
/// sequential — which is what makes adaptive runs reproducible.
#[derive(Debug)]
struct AdaptiveInner {
    reservoir: FeatureReservoir,
    baselines: TenantBaselines,
    controller: ThresholdController,
    /// Reused across frames so the admission path never reallocates.
    features: Vec<f32>,
}

/// The adaptive half of the triage stage, present only on servers
/// started via `start_adaptive`.
#[derive(Debug)]
pub(crate) struct AdaptiveState {
    inner: Mutex<AdaptiveInner>,
}

/// The live triage stage: the fitted detector (behind its own swap
/// point, so background refits hot-swap it like weights) plus the
/// hardened pipeline it routes flagged inputs to. The hardened
/// pipeline tracks weight swaps (same model, stronger filter) behind
/// its own swap point, mirroring the engine's main pipeline slot.
#[derive(Debug)]
pub(crate) struct TriageRuntime {
    /// Deployed detector behind the same `RwLock<Arc<…>>` snapshot
    /// pattern as weights: scorers clone the pointer once per frame, a
    /// swap flips it, in-flight scores finish on the detector they
    /// started with.
    detector: RwLock<Arc<Detector>>,
    config: TriageConfig,
    hardened: RwLock<Arc<InferencePipeline>>,
    adaptive: Option<AdaptiveState>,
}

impl TriageRuntime {
    /// Builds the static runtime, constructing the hardened pipeline
    /// from the base pipeline's model and the configured stronger
    /// filter.
    pub(crate) fn new(
        detector: Detector,
        config: TriageConfig,
        base: &InferencePipeline,
    ) -> Result<Self> {
        config.validate()?;
        let hardened = build_hardened(base, config.hardened_filter)?;
        Ok(TriageRuntime {
            detector: RwLock::new(Arc::new(detector)),
            config,
            hardened: RwLock::new(Arc::new(hardened)),
            adaptive: None,
        })
    }

    /// Builds the adaptive runtime: static triage plus the reservoir,
    /// baseline table and threshold controller. The controller starts
    /// at the configured static threshold and adjusts from there.
    pub(crate) fn new_adaptive(
        detector: Detector,
        config: TriageConfig,
        adaptive: AdaptiveConfig,
        base: &InferencePipeline,
    ) -> Result<Self> {
        adaptive.validate()?;
        let reservoir = FeatureReservoir::new(
            adaptive.reservoir_capacity,
            detector.feature_dim(),
            adaptive.reservoir_seed,
        )
        .map_err(invalid_config)?;
        let baselines = TenantBaselines::new(adaptive.baselines).map_err(invalid_config)?;
        let controller = ThresholdController::new(adaptive.controller, config.threshold)
            .map_err(invalid_config)?;
        let mut runtime = Self::new(detector, config, base)?;
        let mut features = Vec::default();
        features.reserve_exact(reservoir.feature_dim());
        runtime.adaptive = Some(AdaptiveState {
            inner: Mutex::new(AdaptiveInner {
                reservoir,
                baselines,
                controller,
                features,
            }),
        });
        Ok(runtime)
    }

    /// Whether this runtime carries adaptive state.
    pub(crate) fn adaptive_enabled(&self) -> bool {
        self.adaptive.is_some()
    }

    /// Snapshot of the deployed detector (one `Arc` clone, guard
    /// dropped immediately).
    pub(crate) fn detector_snapshot(&self) -> Arc<Detector> {
        Arc::clone(&self.detector.read())
    }

    /// Clone of the current reservoir, for a refit to train from
    /// outside the admission lock. `None` on static runtimes.
    pub(crate) fn reservoir_snapshot(&self) -> Option<FeatureReservoir> {
        self.adaptive
            .as_ref()
            .map(|state| state.inner.lock().reservoir.clone())
    }

    /// The controller's current triage threshold (the static configured
    /// threshold on non-adaptive runtimes).
    pub(crate) fn current_threshold(&self) -> f32 {
        self.adaptive
            .as_ref()
            .map(|state| state.inner.lock().controller.threshold())
            .unwrap_or(self.config.threshold)
    }

    /// Replaces the reservoir with one restored from a persisted
    /// `FADEMLR1` artifact (startup warm-resume). Refused on a
    /// feature-dimension mismatch.
    pub(crate) fn restore_reservoir(&self, restored: FeatureReservoir) -> Result<()> {
        let Some(state) = &self.adaptive else {
            return Err(ServeError::InvalidConfig {
                reason: "reservoir restore on a non-adaptive triage stage".to_string(),
            });
        };
        let mut inner = state.inner.lock();
        if restored.feature_dim() != inner.reservoir.feature_dim() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "restored reservoir holds {}-dim features, detector wants {}",
                    restored.feature_dim(),
                    inner.reservoir.feature_dim()
                ),
            });
        }
        inner.reservoir = restored;
        Ok(())
    }

    /// Atomically deploys `candidate` as the triage detector and
    /// returns the new detector generation. In-flight scores finish on
    /// the detector they snapshotted; every score started after this
    /// call sees the candidate.
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapFailed`] if the candidate's feature geometry
    /// disagrees with the incumbent's — a detector that scores
    /// different features would silently mis-triage every frame.
    pub(crate) fn swap_detector(
        &self,
        candidate: Detector,
        metrics: &ServerMetrics,
    ) -> Result<u64> {
        let incumbent = self.detector_snapshot();
        if candidate.feature_dim() != incumbent.feature_dim() {
            return Err(ServeError::SwapFailed {
                reason: format!(
                    "candidate detector scores {}-dim features, incumbent scores {}",
                    candidate.feature_dim(),
                    incumbent.feature_dim()
                ),
            });
        }
        *self.detector.write() = Arc::new(candidate);
        Ok(metrics.record_detector_swap())
    }

    /// Snapshot of the hardened pipeline (same discipline as the main
    /// pipeline slot: one `Arc` clone, guard dropped immediately).
    pub(crate) fn hardened_snapshot(&self) -> Arc<InferencePipeline> {
        Arc::clone(&self.hardened.read())
    }

    /// Rebuilds the hardened pipeline from freshly swapped weights so
    /// the hardened path never serves stale generations. The filter
    /// spec was validated at startup, so a rebuild failure is
    /// impossible in practice; if it ever happened the previous
    /// hardened pipeline keeps serving (old weights beat no service).
    pub(crate) fn rebuild_hardened(&self, next: &InferencePipeline) {
        if let Ok(rebuilt) = build_hardened(next, self.config.hardened_filter) {
            *self.hardened.write() = Arc::new(rebuilt);
        }
    }

    /// Scores one admitted image under full fault isolation. Always
    /// returns a verdict — panics, errors and budget overruns all
    /// resolve to [`TriageVerdict::FailOpen`]; only the adaptive
    /// anti-flooding rail produces [`TriageVerdict::Shed`].
    pub(crate) fn score(
        &self,
        image: &Tensor,
        tenant: &str,
        metrics: &ServerMetrics,
        faults: &FaultHandle,
    ) -> TriageVerdict {
        let detector = self.detector_snapshot();
        match &self.adaptive {
            Some(state) => self.score_adaptive(&detector, state, image, tenant, metrics, faults),
            None => self.score_static(&detector, image, metrics, faults),
        }
    }

    /// PR 7's static triage: fixed threshold, no per-tenant state.
    fn score_static(
        &self,
        detector: &Detector,
        image: &Tensor,
        metrics: &ServerMetrics,
        faults: &FaultHandle,
    ) -> TriageVerdict {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault_on_score(faults);
            detector.score_image(image)
        }));
        let took_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let score = match resolve_score(outcome, took_us, self.config.score_budget_us, metrics) {
            Ok(score) => score,
            Err(verdict) => return verdict,
        };
        let score_bp = score_basis_points(score);
        if score >= self.config.threshold {
            metrics.record_triage_flagged(score_bp, took_us);
            TriageVerdict::Flagged { score }
        } else {
            metrics.record_triage_clean(score_bp, took_us);
            TriageVerdict::Clean { score }
        }
    }

    /// Adaptive triage: the effective threshold is the controller's
    /// current value plus the tenant's baseline shift (clamped into the
    /// controller's rails), clean frames feed the refit reservoir and
    /// the tenant baselines, and flagged frames past the per-window
    /// shed cap are shed instead of served.
    fn score_adaptive(
        &self,
        detector: &Detector,
        state: &AdaptiveState,
        image: &Tensor,
        tenant: &str,
        metrics: &ServerMetrics,
        faults: &FaultHandle,
    ) -> TriageVerdict {
        let started = Instant::now();
        let mut inner = state.inner.lock();
        // Reborrow so the closure and the post-score bookkeeping can
        // borrow disjoint fields of the same guard.
        let inner = &mut *inner;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            fault_on_score(faults);
            detector.score_image_with_features(image, &mut inner.features)
        }));
        let took_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let score = match resolve_score(outcome, took_us, self.config.score_budget_us, metrics) {
            Ok(score) => score,
            Err(verdict) => return verdict,
        };
        let rails = *inner.controller.config();
        let threshold = (inner.controller.threshold() + inner.baselines.shift(tenant))
            .clamp(rails.floor, rails.ceiling);
        let flagged = score >= threshold;
        if let Some(adjusted) = inner.controller.observe(flagged) {
            metrics.record_threshold_bp(score_basis_points(adjusted));
        }
        let score_bp = score_basis_points(score);
        if flagged {
            metrics.record_triage_flagged(score_bp, took_us);
            if inner.controller.window_flagged() > rails.shed_cap() {
                metrics.record_triage_shed();
                return TriageVerdict::Shed { score };
            }
            TriageVerdict::Flagged { score }
        } else {
            inner.baselines.observe(tenant, score);
            metrics.record_tenants_tracked(inner.baselines.tenants() as u64);
            let _ = inner.reservoir.offer(&inner.features); // best-effort: dims fixed at construction, only a length mismatch errors
            metrics.record_triage_clean(score_bp, took_us);
            TriageVerdict::Clean { score }
        }
    }
}

/// Folds a guarded scoring attempt into a score or the fail-open
/// verdict it resolves to, recording the fail-open metric.
fn resolve_score<E>(
    outcome: std::thread::Result<std::result::Result<f32, E>>,
    took_us: u64,
    budget_us: u64,
    metrics: &ServerMetrics,
) -> std::result::Result<f32, TriageVerdict> {
    let score = match outcome {
        Err(_) => {
            metrics.record_triage_fail_open(FailOpenKind::Panic);
            return Err(TriageVerdict::FailOpen {
                kind: FailOpenKind::Panic,
            });
        }
        Ok(Err(_)) => {
            metrics.record_triage_fail_open(FailOpenKind::Error);
            return Err(TriageVerdict::FailOpen {
                kind: FailOpenKind::Error,
            });
        }
        Ok(Ok(score)) => score,
    };
    if budget_us > 0 && took_us > budget_us {
        metrics.record_triage_fail_open(FailOpenKind::Timeout);
        return Err(TriageVerdict::FailOpen {
            kind: FailOpenKind::Timeout,
        });
    }
    Ok(score)
}

/// Same model, stronger filter: the hardened variant of `base`.
fn build_hardened(base: &InferencePipeline, filter: FilterSpec) -> Result<InferencePipeline> {
    InferencePipeline::new(base.model().clone(), filter).map_err(|err| ServeError::InvalidConfig {
        reason: format!("hardened pipeline: {err}"),
    })
}

/// Anomaly score in integer basis points for histogram recording —
/// integer microsecond/basis-point reservoirs keep NaN out of the
/// percentile math by construction.
fn score_basis_points(score: f32) -> u64 {
    (score.clamp(0.0, 1.0) * 10_000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(TriageConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_threshold_is_refused() {
        for threshold in [f32::NAN, -0.1, 1.5] {
            let config = TriageConfig {
                threshold,
                ..TriageConfig::default()
            };
            assert!(
                matches!(config.validate(), Err(ServeError::InvalidConfig { .. })),
                "threshold {threshold} must be refused"
            );
        }
    }

    #[test]
    fn bad_hardened_filter_is_refused() {
        let config = TriageConfig {
            hardened_filter: FilterSpec::Median { window: 2 }, // even window
            ..TriageConfig::default()
        };
        assert!(matches!(
            config.validate(),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn config_serde_round_trip() {
        let config = TriageConfig {
            threshold: 0.55,
            hardened_filter: FilterSpec::Lar { r: 3 },
            score_budget_us: 2_500,
        };
        let json = serde::json::to_string_pretty(&config);
        let back: TriageConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn hardened_threat_revokes_filter_bypass() {
        assert_eq!(hardened_threat(ThreatModel::I), ThreatModel::III);
        assert_eq!(hardened_threat(ThreatModel::II), ThreatModel::II);
        assert_eq!(hardened_threat(ThreatModel::III), ThreatModel::III);
    }

    #[test]
    fn verdict_detection_annotations() {
        assert_eq!(
            TriageVerdict::Clean { score: 0.4 }.detection(false),
            Some(Detection {
                score: 0.4,
                flagged: false,
                hardened: false,
            })
        );
        assert_eq!(
            TriageVerdict::Flagged { score: 0.8 }.detection(true),
            Some(Detection {
                score: 0.8,
                flagged: true,
                hardened: true,
            })
        );
        assert_eq!(
            TriageVerdict::FailOpen {
                kind: FailOpenKind::Panic
            }
            .detection(false),
            None
        );
        assert_eq!(TriageVerdict::Shed { score: 0.9 }.detection(true), None);
    }

    #[test]
    fn default_adaptive_config_validates() {
        assert!(AdaptiveConfig::default().validate().is_ok());
    }

    #[test]
    fn adaptive_config_refuses_bad_reservoir_capacity() {
        for capacity in [0, 1, MAX_RESERVOIR + 1] {
            let config = AdaptiveConfig {
                reservoir_capacity: capacity,
                ..AdaptiveConfig::default()
            };
            assert!(
                matches!(config.validate(), Err(ServeError::InvalidConfig { .. })),
                "capacity {capacity} must be refused"
            );
        }
    }

    #[test]
    fn score_basis_points_clamps() {
        assert_eq!(score_basis_points(0.5), 5_000);
        assert_eq!(score_basis_points(-1.0), 0);
        assert_eq!(score_basis_points(2.0), 10_000);
    }
}
