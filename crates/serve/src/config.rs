//! Server tuning knobs.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{Result, ServeError};

/// Configuration for an [`InferenceServer`](crate::InferenceServer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Capacity of the bounded submission queue. Submissions beyond
    /// this are rejected with [`ServeError::Overloaded`] — backpressure
    /// is explicit, never an unbounded buffer.
    pub queue_capacity: usize,
    /// Largest batch the dynamic batcher will coalesce. A full bucket
    /// is dispatched immediately.
    pub max_batch_size: usize,
    /// How long a non-empty bucket may wait for co-batchable requests
    /// before being dispatched anyway (microseconds; stored as an
    /// integer so the config is serde-friendly).
    pub linger_us: u64,
    /// Number of inference worker threads sharing the model.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch_size: 16,
            linger_us: 2_000,
            workers: 2,
        }
    }
}

impl ServerConfig {
    /// The linger deadline as a [`Duration`].
    pub fn linger(&self) -> Duration {
        Duration::from_micros(self.linger_us)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any knob is zero.
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue_capacity must be positive".into(),
            });
        }
        if self.max_batch_size == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_batch_size must be positive".into(),
            });
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "workers must be positive".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServerConfig::default().validate().unwrap();
        assert_eq!(
            ServerConfig::default().linger(),
            Duration::from_micros(2_000)
        );
    }

    #[test]
    fn zero_knobs_rejected() {
        for broken in [
            ServerConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            ServerConfig {
                max_batch_size: 0,
                ..Default::default()
            },
            ServerConfig {
                workers: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                broken.validate(),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn serde_round_trip() {
        let config = ServerConfig {
            queue_capacity: 32,
            max_batch_size: 8,
            linger_us: 500,
            workers: 3,
        };
        let text = serde::json::to_string(&config);
        let back: ServerConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back, config);
    }
}
