//! Server tuning knobs.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{Result, ServeError};

/// Configuration for an [`InferenceServer`](crate::InferenceServer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Capacity of the bounded submission queue. Submissions beyond
    /// this are rejected with [`ServeError::Overloaded`] — backpressure
    /// is explicit, never an unbounded buffer.
    pub queue_capacity: usize,
    /// Largest batch the dynamic batcher will coalesce. A full bucket
    /// is dispatched immediately.
    pub max_batch_size: usize,
    /// How long a non-empty bucket may wait for co-batchable requests
    /// before being dispatched anyway (microseconds; stored as an
    /// integer so the config is serde-friendly).
    pub linger_us: u64,
    /// Number of inference worker threads sharing the model.
    pub workers: usize,
    /// Smallest pixel value admitted by input validation. Images with
    /// any value below this (or non-finite) are rejected with
    /// [`ServeError::InvalidInput`] before they can share a batch.
    pub pixel_min: f32,
    /// Largest pixel value admitted by input validation.
    pub pixel_max: f32,
    /// Consecutive batch-level failures (panics or whole-batch pipeline
    /// errors) after which the circuit breaker sheds to per-image
    /// classification (degraded mode).
    pub degrade_after_failures: usize,
    /// While degraded, every `probe_every`-th batch is attempted on the
    /// full batched path as a probe; a successful probe restores normal
    /// batched execution. `1` probes on every batch.
    pub probe_every: usize,
    /// Compute threads for the parallel tensor kernels (matmul, conv,
    /// filters) backing the batched inference path. `0` (the default)
    /// defers to the `FADEML_THREADS` environment variable or
    /// auto-detection; a positive value installs a process-wide
    /// [`fademl_tensor::par::set_threads`] override at server start.
    /// Kernels are bit-exact across thread counts, so this only changes
    /// throughput, never predictions.
    pub compute_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 256,
            max_batch_size: 16,
            linger_us: 2_000,
            workers: 2,
            pixel_min: 0.0,
            pixel_max: 1.0,
            degrade_after_failures: 3,
            probe_every: 4,
            compute_threads: 0,
        }
    }
}

impl ServerConfig {
    /// The linger deadline as a [`Duration`].
    pub fn linger(&self) -> Duration {
        Duration::from_micros(self.linger_us)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] when any count knob is
    /// zero or the admitted pixel range is empty or non-finite.
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "queue_capacity must be positive".into(),
            });
        }
        if self.max_batch_size == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "max_batch_size must be positive".into(),
            });
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "workers must be positive".into(),
            });
        }
        if !self.pixel_min.is_finite() || !self.pixel_max.is_finite() {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "pixel range [{}, {}] must be finite",
                    self.pixel_min, self.pixel_max
                ),
            });
        }
        if self.pixel_min >= self.pixel_max {
            return Err(ServeError::InvalidConfig {
                reason: format!(
                    "pixel range [{}, {}] is empty",
                    self.pixel_min, self.pixel_max
                ),
            });
        }
        if self.degrade_after_failures == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "degrade_after_failures must be positive".into(),
            });
        }
        if self.probe_every == 0 {
            return Err(ServeError::InvalidConfig {
                reason: "probe_every must be positive".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ServerConfig::default().validate().unwrap();
        assert_eq!(
            ServerConfig::default().linger(),
            Duration::from_micros(2_000)
        );
    }

    #[test]
    fn zero_knobs_rejected() {
        for broken in [
            ServerConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            ServerConfig {
                max_batch_size: 0,
                ..Default::default()
            },
            ServerConfig {
                workers: 0,
                ..Default::default()
            },
            ServerConfig {
                degrade_after_failures: 0,
                ..Default::default()
            },
            ServerConfig {
                probe_every: 0,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                broken.validate(),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn broken_pixel_range_rejected() {
        for (lo, hi) in [
            (1.0, 0.0),
            (0.5, 0.5),
            (f32::NAN, 1.0),
            (0.0, f32::INFINITY),
        ] {
            let broken = ServerConfig {
                pixel_min: lo,
                pixel_max: hi,
                ..Default::default()
            };
            assert!(
                matches!(broken.validate(), Err(ServeError::InvalidConfig { .. })),
                "range [{lo}, {hi}] should be refused"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let config = ServerConfig {
            queue_capacity: 32,
            max_batch_size: 8,
            linger_us: 500,
            workers: 3,
            pixel_min: -1.0,
            pixel_max: 2.0,
            degrade_after_failures: 5,
            probe_every: 2,
            compute_threads: 4,
        };
        let text = serde::json::to_string(&config);
        let back: ServerConfig = serde::json::from_str(&text).unwrap();
        assert_eq!(back, config);
    }
}
