//! Bounded submission queue with explicit load-shedding.

use crossbeam::channel::{self, Receiver, Sender, TrySendError};

use crate::error::{Result, ServeError};
use crate::request::Request;

/// The server's front door: a bounded channel whose overflow is a typed
/// [`ServeError::Overloaded`] instead of an ever-growing buffer.
#[derive(Debug)]
pub(crate) struct SubmissionQueue {
    tx: Sender<Request>,
    capacity: usize,
}

impl SubmissionQueue {
    /// Creates the queue and the receiving end the batcher drains.
    pub fn new(capacity: usize) -> (Self, Receiver<Request>) {
        let (tx, rx) = channel::bounded(capacity);
        (SubmissionQueue { tx, capacity }, rx)
    }

    /// Enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::ShuttingDown`] when the batcher is gone.
    pub fn submit(&self, request: Request) -> Result<()> {
        match self.tx.try_send(request) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(request)) => {
                request.fail(ServeError::Overloaded {
                    capacity: self.capacity,
                });
                Err(ServeError::Overloaded {
                    capacity: self.capacity,
                })
            }
            Err(TrySendError::Disconnected(request)) => {
                request.fail(ServeError::ShuttingDown);
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Requests currently buffered.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.tx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ResponseSlot;
    use fademl::ThreatModel;
    use fademl_tensor::Tensor;
    use std::time::Instant;

    fn request() -> Request {
        Request {
            image: Tensor::zeros(&[1, 2, 2]),
            threat: ThreatModel::I,
            slot: ResponseSlot::new(),
            submitted_at: Instant::now(),
            deadline: None,
            triage: None,
        }
    }

    #[test]
    fn rejects_when_full_and_recovers_after_drain() {
        let (queue, rx) = SubmissionQueue::new(2);
        queue.submit(request()).unwrap();
        queue.submit(request()).unwrap();
        assert_eq!(queue.len(), 2);
        // Third submission is shed with the configured capacity.
        assert_eq!(
            queue.submit(request()),
            Err(ServeError::Overloaded { capacity: 2 })
        );
        // Draining one slot makes room again.
        rx.recv().unwrap();
        queue.submit(request()).unwrap();
    }

    #[test]
    fn rejected_request_handle_resolves() {
        let (queue, _rx) = SubmissionQueue::new(1);
        queue.submit(request()).unwrap();
        let shed = request();
        let handle = crate::request::ResponseHandle::new(std::sync::Arc::clone(&shed.slot));
        let _ = queue.submit(shed);
        // The shed request's slot was answered — nobody hangs.
        assert_eq!(handle.wait(), Err(ServeError::Overloaded { capacity: 1 }));
    }

    #[test]
    fn disconnected_receiver_means_shutdown() {
        let (queue, rx) = SubmissionQueue::new(1);
        drop(rx);
        assert_eq!(queue.submit(request()), Err(ServeError::ShuttingDown));
    }
}
