//! # fademl-serve — dynamic-batching inference serving engine
//!
//! Production-style serving layer over the FAdeML
//! [`InferencePipeline`](fademl::InferencePipeline): clients submit
//! single `[C, H, W]` images, the engine coalesces them into
//! `[N, C, H, W]` batches (keyed by [`ThreatModel`](fademl::ThreatModel)
//! — TM-I/II/III stage differently and never share a batch), and a
//! worker pool runs the batched pipeline path once per batch.
//!
//! Design pillars:
//!
//! - **Backpressure, not buffering**: the submission queue is bounded;
//!   when it is full, [`submit`](InferenceServer::submit) returns
//!   [`ServeError::Overloaded`] immediately so callers shed load at the
//!   edge.
//! - **Dynamic batching**: a bucket is dispatched the moment it reaches
//!   `max_batch_size`, or when its linger deadline passes — batch-size
//!   throughput without unbounded tail latency.
//! - **Observability**: [`ServerMetrics`] counts requests, batches,
//!   batch-size distribution, queue depth, rejections and end-to-end
//!   latency percentiles; [`MetricsReport`] serializes to JSON.
//! - **Graceful shutdown**: [`shutdown`](InferenceServer::shutdown)
//!   (and `Drop`) drains every queued and in-flight request before the
//!   threads exit — no client ever hangs on a dropped slot.
//!
//! ```no_run
//! use fademl_serve::{InferenceServer, ServerConfig};
//! use fademl::ThreatModel;
//! # fn pipeline() -> fademl::InferencePipeline { unimplemented!() }
//! # fn image() -> fademl_tensor::Tensor { unimplemented!() }
//!
//! let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
//! let handle = server.submit(image(), ThreatModel::III).unwrap();
//! let verdict = handle.wait().unwrap();
//! println!("class {} at {:.2}", verdict.class, verdict.confidence);
//! println!("{}", server.shutdown().render());
//! ```

pub mod batcher;
pub mod config;
pub mod error;
pub mod metrics;
mod queue;
pub mod request;
pub mod server;

pub use config::ServerConfig;
pub use error::{Result, ServeError};
pub use metrics::{MetricsReport, ServerMetrics};
pub use request::ResponseHandle;
pub use server::InferenceServer;
