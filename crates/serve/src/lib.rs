//! # fademl-serve — dynamic-batching inference serving engine
//!
//! Production-style serving layer over the FAdeML
//! [`InferencePipeline`](fademl::InferencePipeline): clients submit
//! single `[C, H, W]` images, the engine coalesces them into
//! `[N, C, H, W]` batches (keyed by [`ThreatModel`](fademl::ThreatModel)
//! — TM-I/II/III stage differently and never share a batch), and a
//! worker pool runs the batched pipeline path once per batch.
//!
//! Design pillars:
//!
//! - **Backpressure, not buffering**: the submission queue is bounded;
//!   when it is full, [`submit`](InferenceServer::submit) returns
//!   [`ServeError::Overloaded`] immediately so callers shed load at the
//!   edge.
//! - **Dynamic batching**: a bucket is dispatched the moment it reaches
//!   `max_batch_size`, or when its linger deadline passes — batch-size
//!   throughput without unbounded tail latency.
//! - **Fault tolerance**: admission-time input validation
//!   ([`ServeError::InvalidInput`]), per-request deadlines enforced at
//!   dequeue and at batch pickup ([`ServeError::DeadlineExceeded`]),
//!   `catch_unwind` panic isolation that fails only the offending batch
//!   ([`ServeError::BatchFailed`]), supervised worker respawn, and a
//!   [`CircuitBreaker`] that sheds to isolated per-image execution
//!   after repeated batch failures and recovers via probe batches.
//! - **Observability**: [`ServerMetrics`] counts requests, batches,
//!   batch-size distribution, queue depth, rejections, panics,
//!   respawns, deadline misses (with an overshoot histogram), degraded
//!   transitions and end-to-end latency percentiles; [`MetricsReport`]
//!   serializes to JSON.
//! - **Adversarial triage** (defense in depth): started with a fitted
//!   [`fademl_detect::Detector`] via
//!   [`start_with_triage`](InferenceServer::start_with_triage), the
//!   engine scores every admitted image and routes flagged inputs to a
//!   *hardened* path — stronger pre-processing filter, isolated
//!   per-image execution, filter-bypassing threat models revoked —
//!   instead of dropping them. The detector itself fails *open*: a
//!   scoring panic, error or budget overrun yields a typed
//!   [`TriageVerdict::FailOpen`] and normal-path service, never a
//!   failed request (see [`triage`]).
//! - **Adaptive detection**: started via
//!   [`start_adaptive`](InferenceServer::start_adaptive), the triage
//!   stage additionally keeps per-tenant score baselines, holds
//!   hardened-path load at a budget with a feedback
//!   [`ThresholdController`](fademl_detect::ThresholdController)
//!   (flooding degrades to typed load-shedding, never to a blinded
//!   detector), samples served-clean features into a bounded reservoir,
//!   and — with a [`SupervisorConfig`] — retrains the detector in the
//!   background, validates each candidate on a held-out slice, and
//!   hot-swaps it only if its AUC holds up (see [`supervisor`]).
//! - **Graceful shutdown**: [`shutdown`](InferenceServer::shutdown)
//!   (and `Drop`) drains every queued and in-flight request before the
//!   threads exit — no client ever hangs on a dropped slot.
//!
//! The engine-wide invariant — *every accepted request's handle
//! resolves, with a verdict or a typed error* — is chaos-tested by the
//! deterministic fault-injection harness in [`faults`] (built with
//! `--features faults`, which production builds never enable).
//!
//! ```no_run
//! use fademl_serve::{InferenceServer, ServerConfig};
//! use fademl::ThreatModel;
//! use std::time::Duration;
//! # fn pipeline() -> fademl::InferencePipeline { unimplemented!() }
//! # fn image() -> fademl_tensor::Tensor { unimplemented!() }
//!
//! let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
//! let handle = server
//!     .submit_with_deadline(image(), ThreatModel::III, Some(Duration::from_millis(250)))
//!     .unwrap();
//! let verdict = handle.wait().unwrap();
//! println!("class {} at {:.2}", verdict.class, verdict.confidence);
//! println!("{}", server.shutdown().render());
//! ```

#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod batcher;
pub mod breaker;
pub mod config;
pub mod error;
#[cfg(feature = "faults")]
pub mod faults;
pub mod metrics;
mod queue;
pub mod request;
pub mod server;
pub mod supervisor;
pub mod triage;

pub use breaker::{BatchMode, CircuitBreaker};
pub use config::ServerConfig;
pub use error::{DeadlineStage, Result, ServeError};
#[cfg(feature = "faults")]
pub use faults::FaultPlan;
pub use metrics::{ArenaReport, DetectionReport, MetricsReport, ServerMetrics};
pub use request::ResponseHandle;
pub use server::InferenceServer;
pub use supervisor::{RefitOutcome, RefitReport, SupervisorConfig, ValidationSet};
pub use triage::{AdaptiveConfig, FailOpenKind, TriageConfig, TriageVerdict};
