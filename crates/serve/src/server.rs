//! The serving engine: submission queue → dynamic batcher → worker
//! pool, with shared metrics and a draining shutdown.
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  submit(img, tm) ──► bounded queue ──► batcher thread           │
//!     │ Overloaded      (capacity)       │  buckets per TM,       │
//!     ▼ when full                        │  flush at max_batch    │
//!  ResponseHandle ◄──────────────────┐   │  or linger deadline    │
//!     wait()                         │   ▼                        │
//!                                    │  batch channel ──► workers │
//!                                    │                  (classify_batch,
//!                                    └───────────────────fill slots)
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use fademl::{InferencePipeline, ThreatModel, Verdict};
use fademl_tensor::Tensor;

use crate::batcher::Batcher;
use crate::config::ServerConfig;
use crate::error::{Result, ServeError};
use crate::metrics::{MetricsReport, ServerMetrics};
use crate::queue::SubmissionQueue;
use crate::request::{Batch, Request, ResponseHandle, ResponseSlot};

/// A running inference server wrapping one [`InferencePipeline`].
///
/// Dropping the server shuts it down gracefully: queued and in-flight
/// requests are drained and answered before the threads exit.
#[derive(Debug)]
pub struct InferenceServer {
    queue: SubmissionQueue,
    shutting_down: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
    batcher_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl InferenceServer {
    /// Starts the engine: one batcher thread plus `config.workers`
    /// inference workers sharing `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for unusable settings.
    pub fn start(pipeline: InferencePipeline, config: ServerConfig) -> Result<Self> {
        config.validate()?;
        let pipeline = Arc::new(pipeline);
        let metrics = Arc::new(ServerMetrics::new(config.max_batch_size));
        let (queue, submission_rx) = SubmissionQueue::new(config.queue_capacity);
        // Small bound: the batcher blocks here when every worker is
        // busy, which in turn lets the submission queue fill and shed —
        // backpressure propagates to the edge instead of buffering.
        let (batch_tx, batch_rx) = channel::bounded::<Batch>(config.workers * 2);

        let batcher_handle = {
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            std::thread::Builder::new()
                .name("fademl-serve-batcher".into())
                .spawn(move || run_batcher(&submission_rx, &batch_tx, &config, &metrics))
                .expect("spawn batcher thread")
        };

        let worker_handles = (0..config.workers)
            .map(|idx| {
                let pipeline = Arc::clone(&pipeline);
                let metrics = Arc::clone(&metrics);
                let batch_rx = batch_rx.clone();
                std::thread::Builder::new()
                    .name(format!("fademl-serve-worker-{idx}"))
                    .spawn(move || run_worker(&batch_rx, &pipeline, &metrics))
                    .expect("spawn worker thread")
            })
            .collect();
        drop(batch_rx);

        Ok(InferenceServer {
            queue,
            shutting_down: Arc::new(AtomicBool::new(false)),
            metrics,
            config,
            batcher_handle: Some(batcher_handle),
            worker_handles,
        })
    }

    /// Submits one `[C, H, W]` image entering under `threat`. Returns
    /// immediately with a handle; the verdict is computed by the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the submission queue is full
    /// (the caller should shed load), [`ServeError::ShuttingDown`]
    /// during shutdown, [`ServeError::InvalidRequest`] for non-rank-3
    /// images.
    pub fn submit(&self, image: Tensor, threat: ThreatModel) -> Result<ResponseHandle> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if image.rank() != 3 {
            return Err(ServeError::InvalidRequest {
                reason: format!("expected a [C, H, W] image, got {:?}", image.dims()),
            });
        }
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        let request = Request {
            image,
            threat,
            slot,
            submitted_at: Instant::now(),
        };
        // Reserve the depth-gauge slot before the request can reach the
        // batcher, so the dequeue decrement can never race ahead of it.
        self.metrics.record_enqueue_attempt();
        match self.queue.submit(request) {
            Ok(()) => {
                self.metrics.record_submitted();
                Ok(handle)
            }
            Err(err) => {
                if matches!(err, ServeError::Overloaded { .. }) {
                    self.metrics.record_rejected();
                } else {
                    self.metrics.release_queue_slot();
                }
                Err(err)
            }
        }
    }

    /// Convenience: submit and block for the verdict.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](InferenceServer::submit), plus any pipeline
    /// error the workers hit.
    pub fn classify(&self, image: Tensor, threat: ThreatModel) -> Result<Verdict> {
        self.submit(image, threat)?.wait()
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Graceful shutdown: stops accepting new work, drains every queued
    /// and in-flight request, joins all threads and returns the final
    /// metrics.
    pub fn shutdown(mut self) -> MetricsReport {
        self.stop();
        self.metrics.report()
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        // Dropping the queue's sender disconnects the batcher's
        // receiver once buffered requests are drained; the batcher then
        // flushes its buckets and drops the batch sender, which lets
        // each worker run dry and exit.
        let (closed, _rx) = SubmissionQueue::new(1);
        let open = std::mem::replace(&mut self.queue, closed);
        drop(open);
        if let Some(handle) = self.batcher_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.batcher_handle.is_some() {
            self.stop();
        }
    }
}

/// Batcher loop: pull requests, bucket them by threat model, dispatch
/// full buckets immediately and lingering buckets at their deadline.
fn run_batcher(
    submission_rx: &Receiver<Request>,
    batch_tx: &Sender<Batch>,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) {
    let mut batcher = Batcher::new(config.max_batch_size, config.linger());
    let dispatch = |batch: Batch| {
        metrics.record_batch(batch.requests.len());
        // A send error means every worker is gone (panicked); answer
        // the batch's requests so no client hangs forever.
        if let Err(crossbeam::channel::SendError(batch)) = batch_tx.send(batch) {
            for request in batch.requests {
                request.fail(ServeError::ShuttingDown);
            }
        }
    };
    loop {
        let received = match batcher.next_deadline() {
            // Nothing buffered: sleep until work arrives.
            None => submission_rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                submission_rx.recv_timeout(timeout)
            }
        };
        let now = Instant::now();
        match received {
            Ok(request) => {
                metrics.record_dequeued();
                if let Some(batch) = batcher.push(request, now) {
                    dispatch(batch);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        for batch in batcher.take_expired(Instant::now()) {
            dispatch(batch);
        }
    }
    // Shutdown drain: everything still buffered goes out as-is.
    for batch in batcher.flush_all() {
        dispatch(batch);
    }
}

/// Worker loop: stack each batch into `[N, C, H, W]`, run the batched
/// pipeline once, and deliver per-request verdicts.
fn run_worker(batch_rx: &Receiver<Batch>, pipeline: &InferencePipeline, metrics: &ServerMetrics) {
    while let Ok(batch) = batch_rx.recv() {
        let threat = batch.threat;
        let mut images = Vec::with_capacity(batch.requests.len());
        let mut waiters = Vec::with_capacity(batch.requests.len());
        for request in batch.requests {
            images.push(request.image);
            waiters.push((request.slot, request.submitted_at));
        }
        match Tensor::stack(&images) {
            Ok(stacked) => match pipeline.classify_batch(&stacked, threat) {
                Ok(verdicts) => {
                    for (verdict, (slot, submitted_at)) in verdicts.into_iter().zip(&waiters) {
                        metrics.record_completed(elapsed_us(*submitted_at));
                        slot.fill(Ok(verdict));
                    }
                }
                Err(err) => {
                    let shared = ServeError::Pipeline {
                        message: err.to_string(),
                    };
                    for (slot, _) in &waiters {
                        metrics.record_failed();
                        slot.fill(Err(shared.clone()));
                    }
                }
            },
            // Heterogeneous image shapes can't stack; classify each
            // image individually so well-formed requests still succeed.
            Err(_) => {
                for (image, (slot, submitted_at)) in images.iter().zip(&waiters) {
                    match pipeline.classify(image, threat) {
                        Ok(verdict) => {
                            metrics.record_completed(elapsed_us(*submitted_at));
                            slot.fill(Ok(verdict));
                        }
                        Err(err) => {
                            metrics.record_failed();
                            slot.fill(Err(ServeError::Pipeline {
                                message: err.to_string(),
                            }));
                        }
                    }
                }
            }
        }
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl::InferencePipeline;
    use fademl_filters::FilterSpec as Spec;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn pipeline() -> InferencePipeline {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
    }

    fn images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
            .collect()
    }

    #[test]
    fn serves_verdicts_matching_direct_classification() {
        let reference = pipeline();
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                queue_capacity: 64,
                max_batch_size: 4,
                linger_us: 1_000,
                workers: 2,
            },
        )
        .unwrap();
        let imgs = images(10, 2);
        let threats = [ThreatModel::I, ThreatModel::II, ThreatModel::III];
        let handles: Vec<_> = imgs
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let threat = threats[i % 3];
                (i, threat, server.submit(img.clone(), threat).unwrap())
            })
            .collect();
        for (i, threat, handle) in handles {
            let served = handle.wait().unwrap();
            let direct = reference.classify(&imgs[i], threat).unwrap();
            assert_eq!(served.class, direct.class, "image {i} under {threat}");
            assert_eq!(served.top5, direct.top5);
        }
        let report = server.shutdown();
        assert_eq!(report.requests_submitted, 10);
        assert_eq!(report.requests_completed, 10);
        assert_eq!(report.requests_failed, 0);
        // Depth gauge must net out to zero after a full drain — the
        // enqueue increment is reserved before the batcher can race it.
        assert_eq!(report.queue_depth, 0);
        assert!(report.batches_dispatched >= 3); // ≥ one per threat model
        assert!(report.max_batch_seen <= 4);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        // Long linger + large batches: requests sit in buckets until
        // shutdown flushes them.
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                queue_capacity: 64,
                max_batch_size: 64,
                linger_us: 60_000_000, // 60s — only the drain can flush
                workers: 1,
            },
        )
        .unwrap();
        let handles: Vec<_> = images(5, 3)
            .into_iter()
            .map(|img| server.submit(img, ThreatModel::III).unwrap())
            .collect();
        let report = server.shutdown();
        assert_eq!(report.requests_completed, 5);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn rejects_malformed_images_at_submit() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let err = server
            .submit(Tensor::zeros(&[1, 3, 16, 16]), ThreatModel::I)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest { .. }));
        server.shutdown();
    }

    #[test]
    fn mixed_shapes_fall_back_to_individual_classification() {
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                max_batch_size: 2,
                linger_us: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::seed_from_u64(4);
        let good = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let odd = rng.uniform(&[3, 8, 8], 0.0, 1.0); // stacks with nothing
        let h1 = server.submit(good.clone(), ThreatModel::I).unwrap();
        let h2 = server.submit(odd, ThreatModel::I).unwrap();
        // The well-formed image must still be classified.
        assert!(h1.wait().is_ok());
        // The odd-shaped one either classifies (16×16 model may reject
        // it) or reports a pipeline error — but it must not hang.
        let _ = h2.wait();
        server.shutdown();
    }

    #[test]
    fn drop_is_a_graceful_shutdown() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let handle = server
            .submit(images(1, 5).pop().unwrap(), ThreatModel::I)
            .unwrap();
        drop(server);
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn invalid_config_refused() {
        assert!(matches!(
            InferenceServer::start(
                pipeline(),
                ServerConfig {
                    workers: 0,
                    ..Default::default()
                }
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }
}
