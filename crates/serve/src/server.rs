//! The serving engine: submission queue → dynamic batcher → supervised
//! worker pool, with shared metrics, fault isolation and a draining
//! shutdown.
//!
//! ```text
//!                    ┌────────────────────────────────────────────┐
//!  submit(img, tm) ──► bounded queue ──► batcher thread           │
//!     │ Overloaded      (capacity)       │  deadline check,       │
//!     │ InvalidInput                     │  buckets per TM,       │
//!     ▼ at admission                     │  flush at max_batch    │
//!  ResponseHandle ◄──────────────────┐   │  or linger deadline    │
//!     wait()                         │   ▼                        │
//!                                    │  batch channel ──► workers │
//!                                    │   (catch_unwind, breaker,  │
//!                                    └────supervised respawn)     │
//! ```
//!
//! Fault model: a worker panic fails only the batch that triggered it
//! (every handle gets a typed [`ServeError::BatchFailed`]); a worker
//! *death* is detected by the supervisor and the thread respawned;
//! consecutive batch failures open the [`CircuitBreaker`] and the pool
//! sheds to isolated per-image execution until a probe batch succeeds.
//! The engine-wide invariant — every accepted request's handle
//! resolves — is enforced by a mid-batch drop guard and chaos-tested
//! under injected faults (`tests/faults.rs`, `--features faults`).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender};
use fademl::{Detection, InferencePipeline, ThreatModel, Verdict};
use fademl_detect::Detector;
use fademl_tensor::Tensor;
use parking_lot::RwLock;

use crate::batcher::Batcher;
use crate::breaker::{BatchMode, CircuitBreaker};
use crate::config::ServerConfig;
use crate::error::{DeadlineStage, Result, ServeError};
use crate::metrics::{MetricsReport, ServerMetrics};
use crate::queue::SubmissionQueue;
use crate::request::{Batch, Request, ResponseHandle, ResponseSlot};
use crate::supervisor::{self, RefitReport, SupervisorConfig};
use crate::triage::{hardened_threat, AdaptiveConfig, TriageConfig, TriageRuntime, TriageVerdict};

#[cfg(feature = "faults")]
use crate::faults::{self, FaultPlan};

/// The fault-injection hook threaded through the engine. Without the
/// `faults` feature it is a unit type and every hook call compiles to
/// nothing.
#[cfg(feature = "faults")]
pub(crate) type FaultHandle = Option<FaultPlan>;

/// Zero-sized stand-in when the feature is off; deliberately not
/// `Copy` so both configurations use identical `clone()` plumbing.
#[cfg(not(feature = "faults"))]
#[derive(Debug, Clone)]
pub(crate) struct FaultHandle;

#[cfg(feature = "faults")]
fn no_faults() -> FaultHandle {
    None
}
#[cfg(not(feature = "faults"))]
fn no_faults() -> FaultHandle {
    FaultHandle
}

fn fault_on_dequeue(faults: &FaultHandle) {
    #[cfg(feature = "faults")]
    if let Some(plan) = faults {
        plan.on_dequeue();
    }
    #[cfg(not(feature = "faults"))]
    let _ = faults;
}

fn fault_on_batch_start(faults: &FaultHandle) {
    #[cfg(feature = "faults")]
    if let Some(plan) = faults {
        plan.on_batch_start();
    }
    #[cfg(not(feature = "faults"))]
    let _ = faults;
}

pub(crate) fn fault_on_score(faults: &FaultHandle) {
    #[cfg(feature = "faults")]
    if let Some(plan) = faults {
        plan.on_score();
    }
    #[cfg(not(feature = "faults"))]
    let _ = faults;
}

pub(crate) fn fault_on_refit(faults: &FaultHandle) {
    #[cfg(feature = "faults")]
    if let Some(plan) = faults {
        plan.on_refit();
    }
    #[cfg(not(feature = "faults"))]
    let _ = faults;
}

/// A running inference server wrapping one [`InferencePipeline`].
///
/// Dropping the server shuts it down gracefully: queued and in-flight
/// requests are drained and answered before the threads exit.
#[derive(Debug)]
pub struct InferenceServer {
    queue: SubmissionQueue,
    shutting_down: Arc<AtomicBool>,
    metrics: Arc<ServerMetrics>,
    breaker: Arc<CircuitBreaker>,
    /// The deployed pipeline behind a swap point. Workers snapshot the
    /// inner `Arc` once per batch, so a hot swap replaces the pointer
    /// while in-flight batches drain on the weights they started with.
    pipeline: Arc<RwLock<Arc<InferencePipeline>>>,
    /// The detection/triage stage, when the server was started with a
    /// fitted detector. Scores at admission; workers route flagged
    /// requests through its hardened pipeline.
    triage: Option<Arc<TriageRuntime>>,
    /// Fault-injection handle consulted by the admission-time scoring
    /// path (workers and the batcher hold their own clones).
    faults: FaultHandle,
    /// The refit supervisor's configuration, when the server was
    /// started adaptive with one. Shared with the background refit
    /// loop and used by manual [`refit_detector`] calls.
    ///
    /// [`refit_detector`]: InferenceServer::refit_detector
    refit: Option<Arc<SupervisorConfig>>,
    config: ServerConfig,
    batcher_handle: Option<JoinHandle<()>>,
    supervisor_handle: Option<JoinHandle<()>>,
    refit_handle: Option<JoinHandle<()>>,
}

/// How the triage stage is configured at launch.
enum TriageSpec {
    /// No detection: the plain serving engine.
    Off,
    /// PR 7's static triage: fixed threshold, no online state.
    Static(Detector, TriageConfig),
    /// Adaptive triage, optionally with a refit supervisor. The
    /// supervisor config is boxed to keep the enum small — it only
    /// lives for the duration of launch.
    Adaptive(
        Detector,
        TriageConfig,
        AdaptiveConfig,
        Option<Box<SupervisorConfig>>,
    ),
}

/// Everything a worker thread needs; shared so the supervisor can
/// spawn replacements for workers that die mid-flight.
#[derive(Debug)]
struct WorkerShared {
    pipeline: Arc<RwLock<Arc<InferencePipeline>>>,
    metrics: Arc<ServerMetrics>,
    breaker: Arc<CircuitBreaker>,
    batch_rx: Receiver<Batch>,
    faults: FaultHandle,
    triage: Option<Arc<TriageRuntime>>,
}

/// Sent to the supervisor when a worker thread ends, cleanly (channel
/// drained) or not (the thread died unwinding).
#[derive(Debug)]
struct WorkerExit {
    idx: usize,
    clean: bool,
}

/// Drop guard inside each worker: whatever kills the thread, the
/// supervisor hears about it.
struct ExitNotice {
    tx: Sender<WorkerExit>,
    idx: usize,
    clean: bool,
}

impl Drop for ExitNotice {
    fn drop(&mut self) {
        // best-effort: if the supervisor is gone there is nobody to notify.
        let _ = self.tx.send(WorkerExit {
            idx: self.idx,
            clean: self.clean,
        });
    }
}

impl InferenceServer {
    /// Starts the engine: one batcher thread plus `config.workers`
    /// supervised inference workers sharing `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for unusable settings and
    /// [`ServeError::Internal`] if a thread cannot be spawned.
    pub fn start(pipeline: InferencePipeline, config: ServerConfig) -> Result<Self> {
        Self::launch(pipeline, config, TriageSpec::Off, no_faults())
    }

    /// Starts the engine with an adversarial-detection triage stage:
    /// every admitted image is scored by `detector`, and flagged inputs
    /// are served through the hardened path (stronger filter, isolated
    /// per-image execution) instead of the shared batch.
    ///
    /// # Errors
    ///
    /// Same as [`start`](InferenceServer::start), plus
    /// [`ServeError::InvalidConfig`] for an unusable [`TriageConfig`].
    pub fn start_with_triage(
        pipeline: InferencePipeline,
        config: ServerConfig,
        detector: Detector,
        triage: TriageConfig,
    ) -> Result<Self> {
        Self::launch(
            pipeline,
            config,
            TriageSpec::Static(detector, triage),
            no_faults(),
        )
    }

    /// Starts the engine with the *adaptive* detection stage: static
    /// triage plus per-tenant score baselines, the budget-driven
    /// threshold controller with its anti-flooding shed rail, and the
    /// refit reservoir. With a [`SupervisorConfig`], a background loop
    /// periodically retrains the detector from the reservoir and
    /// hot-swaps validated candidates; with `supervisor: None` (or a
    /// zero interval) the reservoir still fills but refits only run via
    /// [`refit_detector`](InferenceServer::refit_detector).
    ///
    /// # Errors
    ///
    /// Same as [`start_with_triage`](InferenceServer::start_with_triage),
    /// plus [`ServeError::InvalidConfig`] for unusable adaptive or
    /// supervisor knobs.
    pub fn start_adaptive(
        pipeline: InferencePipeline,
        config: ServerConfig,
        detector: Detector,
        triage: TriageConfig,
        adaptive: AdaptiveConfig,
        supervisor: Option<SupervisorConfig>,
    ) -> Result<Self> {
        Self::launch(
            pipeline,
            config,
            TriageSpec::Adaptive(detector, triage, adaptive, supervisor.map(Box::new)),
            no_faults(),
        )
    }

    /// Starts the engine with an armed [`FaultPlan`] (chaos testing).
    /// Also installs the quiet panic hook so injected panics don't spam
    /// stderr.
    ///
    /// # Errors
    ///
    /// Same as [`start`](InferenceServer::start).
    #[cfg(feature = "faults")]
    pub fn start_with_faults(
        pipeline: InferencePipeline,
        config: ServerConfig,
        plan: FaultPlan,
    ) -> Result<Self> {
        faults::install_quiet_panic_hook();
        Self::launch(pipeline, config, TriageSpec::Off, Some(plan))
    }

    /// Triage stage plus an armed [`FaultPlan`]: the configuration the
    /// detection chaos suite runs under.
    ///
    /// # Errors
    ///
    /// Same as [`start_with_triage`](InferenceServer::start_with_triage).
    #[cfg(feature = "faults")]
    pub fn start_with_triage_and_faults(
        pipeline: InferencePipeline,
        config: ServerConfig,
        detector: Detector,
        triage: TriageConfig,
        plan: FaultPlan,
    ) -> Result<Self> {
        faults::install_quiet_panic_hook();
        Self::launch(
            pipeline,
            config,
            TriageSpec::Static(detector, triage),
            Some(plan),
        )
    }

    /// Adaptive detection plus an armed [`FaultPlan`]: the
    /// configuration the refit chaos suite runs under.
    ///
    /// # Errors
    ///
    /// Same as [`start_adaptive`](InferenceServer::start_adaptive).
    #[cfg(feature = "faults")]
    pub fn start_adaptive_with_faults(
        pipeline: InferencePipeline,
        config: ServerConfig,
        detector: Detector,
        triage: TriageConfig,
        adaptive: AdaptiveConfig,
        supervisor: Option<SupervisorConfig>,
        plan: FaultPlan,
    ) -> Result<Self> {
        faults::install_quiet_panic_hook();
        Self::launch(
            pipeline,
            config,
            TriageSpec::Adaptive(detector, triage, adaptive, supervisor.map(Box::new)),
            Some(plan),
        )
    }

    fn launch(
        pipeline: InferencePipeline,
        config: ServerConfig,
        triage: TriageSpec,
        faults: FaultHandle,
    ) -> Result<Self> {
        config.validate()?;
        if config.compute_threads > 0 {
            fademl_tensor::par::set_threads(config.compute_threads);
        }
        let (triage, refit) = match triage {
            TriageSpec::Off => (None, None),
            TriageSpec::Static(detector, triage_config) => (
                Some(Arc::new(TriageRuntime::new(
                    detector,
                    triage_config,
                    &pipeline,
                )?)),
                None,
            ),
            TriageSpec::Adaptive(detector, triage_config, adaptive, refit) => {
                let refit = refit.map(|boxed| Arc::new(*boxed));
                if let Some(refit) = &refit {
                    refit.validate()?;
                }
                let runtime = Arc::new(TriageRuntime::new_adaptive(
                    detector,
                    triage_config,
                    adaptive,
                    &pipeline,
                )?);
                // Warm-resume the reservoir from a prior run's persisted
                // artifact. Strictly best-effort: a missing, torn or
                // mismatched artifact just means a cold reservoir.
                if let Some(path) = refit.as_ref().and_then(|r| r.reservoir_path.as_deref()) {
                    if let Ok(restored) = fademl_detect::FeatureReservoir::load(path) {
                        let _ = runtime.restore_reservoir(restored); // best-effort: cold start on mismatch
                    }
                }
                (Some(runtime), refit)
            }
        };
        let pipeline = Arc::new(RwLock::new(Arc::new(pipeline)));
        let metrics = Arc::new(ServerMetrics::new(config.max_batch_size));
        let breaker = Arc::new(CircuitBreaker::new(
            config.degrade_after_failures,
            config.probe_every,
        ));
        let (queue, submission_rx) = SubmissionQueue::new(config.queue_capacity);
        // Small bound: the batcher blocks here when every worker is
        // busy, which in turn lets the submission queue fill and shed —
        // backpressure propagates to the edge instead of buffering.
        let (batch_tx, batch_rx) = channel::bounded::<Batch>(config.workers * 2);

        let batcher_handle = {
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            let faults = faults.clone();
            spawn_thread("fademl-serve-batcher".into(), move || {
                run_batcher(&submission_rx, &batch_tx, &config, &metrics, &faults)
            })?
        };

        let shared = Arc::new(WorkerShared {
            pipeline: Arc::clone(&pipeline),
            metrics: Arc::clone(&metrics),
            breaker: Arc::clone(&breaker),
            batch_rx,
            faults: faults.clone(),
            triage: triage.clone(),
        });
        let (exit_tx, exit_rx) = channel::unbounded::<WorkerExit>();
        let mut worker_handles = Vec::with_capacity(config.workers);
        for idx in 0..config.workers {
            worker_handles.push(spawn_worker(idx, &shared, &exit_tx)?);
        }

        let supervisor_handle = spawn_thread("fademl-serve-supervisor".into(), move || {
            run_supervisor(&shared, &exit_rx, &exit_tx, worker_handles);
        })?;

        let shutting_down = Arc::new(AtomicBool::new(false));
        // The background refit loop only exists for adaptive servers
        // with a positive interval; manual refits need no thread.
        let refit_handle = match (&triage, &refit) {
            (Some(runtime), Some(refit_config)) if !refit_config.interval.is_zero() => {
                Some(supervisor::spawn_refit_loop(
                    Arc::clone(runtime),
                    Arc::clone(&metrics),
                    Arc::clone(refit_config),
                    Arc::clone(&shutting_down),
                    faults.clone(),
                )?)
            }
            _ => None,
        };

        Ok(InferenceServer {
            queue,
            shutting_down,
            metrics,
            breaker,
            pipeline,
            triage,
            faults,
            refit,
            config,
            batcher_handle: Some(batcher_handle),
            supervisor_handle: Some(supervisor_handle),
            refit_handle,
        })
    }

    /// Submits one `[C, H, W]` image entering under `threat`. Returns
    /// immediately with a handle; the verdict is computed by the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the submission queue is full
    /// (the caller should shed load), [`ServeError::ShuttingDown`]
    /// during shutdown, [`ServeError::InvalidInput`] for images that
    /// fail admission validation (wrong rank, non-finite values,
    /// pixels outside the configured range).
    pub fn submit(&self, image: Tensor, threat: ThreatModel) -> Result<ResponseHandle> {
        self.submit_with_deadline(image, threat, None)
    }

    /// Like [`submit`](InferenceServer::submit), with a per-request
    /// deadline: if the verdict cannot be produced within `deadline`
    /// of now, the request is answered with
    /// [`ServeError::DeadlineExceeded`] instead of a stale result —
    /// enforced both at dequeue and again when a worker picks up the
    /// batch.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](InferenceServer::submit).
    pub fn submit_with_deadline(
        &self,
        image: Tensor,
        threat: ThreatModel,
        deadline: Option<Duration>,
    ) -> Result<ResponseHandle> {
        self.submit_for_tenant(image, threat, "", deadline)
    }

    /// Full-form submission carrying a tenant identity. On adaptive
    /// servers the tenant selects its score baseline (so one tenant's
    /// unusual-but-legitimate traffic does not eat the shared hardened
    /// budget); elsewhere the tenant is ignored. Anonymous callers pass
    /// `""` and share one baseline.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](InferenceServer::submit). Additionally, on
    /// adaptive servers a flagged request past the hardened path's
    /// per-window shed cap is refused with [`ServeError::Overloaded`] —
    /// the anti-flooding rail sheds excess hardened load instead of
    /// letting an attacker blind the detector or saturate the hardened
    /// pipeline.
    pub fn submit_for_tenant(
        &self,
        image: Tensor,
        threat: ThreatModel,
        tenant: &str,
        deadline: Option<Duration>,
    ) -> Result<ResponseHandle> {
        if self.shutting_down.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        if let Err(error) = validate_image(&image, &self.config) {
            self.metrics.record_invalid();
            return Err(error);
        }
        // Admission-adjacent triage: score before the request can join
        // a shared batch, so routing is settled at enqueue time. A
        // detector failure resolves to a fail-open verdict — scoring
        // can never reject the request. Only the adaptive shed rail
        // refuses work here, and only with a typed error.
        let triage = self
            .triage
            .as_ref()
            .map(|runtime| runtime.score(&image, tenant, &self.metrics, &self.faults));
        if matches!(triage, Some(TriageVerdict::Shed { .. })) {
            return Err(ServeError::Overloaded {
                capacity: self.config.queue_capacity,
            });
        }
        let slot = ResponseSlot::new();
        let handle = ResponseHandle::new(Arc::clone(&slot));
        let submitted_at = Instant::now();
        let request = Request {
            image,
            threat,
            slot,
            submitted_at,
            deadline: deadline.map(|d| submitted_at + d),
            triage,
        };
        // Reserve the depth-gauge slot before the request can reach the
        // batcher, so the dequeue decrement can never race ahead of it.
        self.metrics.record_enqueue_attempt();
        match self.queue.submit(request) {
            Ok(()) => {
                self.metrics.record_submitted();
                Ok(handle)
            }
            Err(err) => {
                if matches!(err, ServeError::Overloaded { .. }) {
                    self.metrics.record_rejected();
                } else {
                    self.metrics.release_queue_slot();
                }
                Err(err)
            }
        }
    }

    /// Convenience: submit and block for the verdict.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](InferenceServer::submit), plus any pipeline
    /// error the workers hit.
    pub fn classify(&self, image: Tensor, threat: ThreatModel) -> Result<Verdict> {
        self.submit(image, threat)?.wait()
    }

    /// Live metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.metrics.report()
    }

    /// Generation of the currently deployed weights (0 = the weights
    /// the server started with; bumped once per completed swap).
    pub fn swap_generation(&self) -> u64 {
        self.metrics.swap_generation()
    }

    /// Atomically publishes `next` as the deployed pipeline and returns
    /// the new weight generation.
    ///
    /// Zero-downtime by construction: workers snapshot the pipeline
    /// pointer once per batch, so every in-flight batch finishes on the
    /// consistent weights it started with, every batch picked up after
    /// this call sees `next` in full, and no request is paused or
    /// dropped while the pointer flips.
    pub fn swap_pipeline(&self, next: InferencePipeline) -> u64 {
        // The hardened pipeline shares the swapped model: rebuild it
        // first so no flagged request can observe new weights on the
        // normal path but old weights on the hardened one for longer
        // than one in-flight batch.
        if let Some(triage) = &self.triage {
            triage.rebuild_hardened(&next);
        }
        *self.pipeline.write() = Arc::new(next);
        self.metrics.record_swap()
    }

    /// Whether this server runs the adversarial-detection triage stage.
    pub fn triage_enabled(&self) -> bool {
        self.triage.is_some()
    }

    /// Whether this server runs the *adaptive* detection stage
    /// (reservoir, baselines, threshold controller).
    pub fn adaptive_enabled(&self) -> bool {
        self.triage
            .as_ref()
            .is_some_and(|runtime| runtime.adaptive_enabled())
    }

    /// Generation of the deployed detector (0 = the detector the server
    /// started with; bumped once per completed detector swap).
    pub fn detector_generation(&self) -> u64 {
        self.metrics.detector_generation()
    }

    /// The triage stage's current effective base threshold: the
    /// controller's value on adaptive servers, the configured static
    /// threshold otherwise, `None` without triage.
    pub fn triage_threshold(&self) -> Option<f32> {
        self.triage
            .as_ref()
            .map(|runtime| runtime.current_threshold())
    }

    /// Hot detector swap from a serialized `FADEMLD1` artifact: CRC and
    /// structural validation first, then the same zero-downtime pointer
    /// flip as [`swap_weights`](InferenceServer::swap_weights) — scores
    /// in flight finish on the incumbent, every later score sees the
    /// candidate. Returns the new detector generation.
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapFailed`] when the server has no triage stage,
    /// the artifact fails validation, or the decoded detector's feature
    /// geometry disagrees with the incumbent's. The incumbent keeps
    /// serving untouched in every failure case.
    pub fn swap_detector(&self, artifact: &[u8]) -> Result<u64> {
        let triage = self.triage.as_ref().ok_or_else(|| ServeError::SwapFailed {
            reason: "server has no triage stage to swap a detector into".into(),
        })?;
        let candidate = Detector::from_bytes(artifact).map_err(|err| ServeError::SwapFailed {
            reason: err.to_string(),
        })?;
        triage.swap_detector(candidate, &self.metrics)
    }

    /// Runs one refit attempt now, on the caller's thread: snapshot the
    /// reservoir, train a candidate, validate it against the held-out
    /// slice, swap only if the AUC holds up. Useful for tests and for
    /// deployments that drive refits from their own scheduler
    /// (supervisor `interval: Duration::ZERO`).
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when the server was not started
    /// via [`start_adaptive`](InferenceServer::start_adaptive) with a
    /// supervisor config. Refit failures themselves do not error — they
    /// resolve inside the returned [`RefitReport`].
    pub fn refit_detector(&self) -> Result<RefitReport> {
        let (Some(triage), Some(refit)) = (&self.triage, &self.refit) else {
            return Err(ServeError::InvalidConfig {
                reason: "refit requires an adaptive server with a supervisor config".into(),
            });
        };
        Ok(supervisor::run_refit(
            triage,
            &self.metrics,
            refit,
            &self.faults,
        ))
    }

    /// Hot weight swap from a serialized `FADEMLW2` artifact (see
    /// [`fademl::serialize`]). The bytes are decoded into a clone of
    /// the deployed pipeline — CRC trailer and per-layer shape
    /// validation included — so the live weights are replaced only if
    /// the whole artifact is valid. Returns the new generation.
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapFailed`] when the artifact fails CRC or shape
    /// validation; the previous weights keep serving untouched.
    pub fn swap_weights(&self, artifact: &[u8]) -> Result<u64> {
        let current = pipeline_snapshot(&self.pipeline);
        let mut next = (*current).clone();
        fademl::serialize::decode_weights(artifact, next.model_mut()).map_err(|err| {
            ServeError::SwapFailed {
                reason: err.to_string(),
            }
        })?;
        Ok(self.swap_pipeline(next))
    }

    /// Whether the engine is currently degraded (per-image execution
    /// behind the circuit breaker).
    pub fn is_degraded(&self) -> bool {
        self.breaker.is_degraded()
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Graceful shutdown: stops accepting new work, drains every queued
    /// and in-flight request, joins all threads and returns the final
    /// metrics.
    pub fn shutdown(mut self) -> MetricsReport {
        self.stop();
        self.metrics.report()
    }

    fn stop(&mut self) {
        self.shutting_down.store(true, Ordering::Release);
        if let Some(handle) = self.refit_handle.take() {
            // best-effort: a panicked refit loop still counts as stopped.
            let _ = handle.join();
        }
        // Dropping the queue's sender disconnects the batcher's
        // receiver once buffered requests are drained; the batcher then
        // flushes its buckets and drops the batch sender, which lets
        // each worker run dry, exit cleanly, and the supervisor follow.
        let (closed, _rx) = SubmissionQueue::new(1);
        let open = std::mem::replace(&mut self.queue, closed);
        drop(open);
        if let Some(handle) = self.batcher_handle.take() {
            // best-effort: a panicked batcher still counts as stopped.
            let _ = handle.join();
        }
        if let Some(handle) = self.supervisor_handle.take() {
            // best-effort: same for the supervisor during teardown.
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.batcher_handle.is_some()
            || self.supervisor_handle.is_some()
            || self.refit_handle.is_some()
        {
            self.stop();
        }
    }
}

/// Spawns a named thread, mapping spawn failure to a typed error.
pub(crate) fn spawn_thread<F>(name: String, body: F) -> Result<JoinHandle<()>>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(body)
        .map_err(|err| ServeError::Internal {
            reason: format!("failed to spawn thread {name}: {err}"),
        })
}

/// Spawns worker `idx` over the shared context. The `ExitNotice` drop
/// guard reports the thread's end to the supervisor whether it drains
/// cleanly or dies unwinding.
fn spawn_worker(
    idx: usize,
    shared: &Arc<WorkerShared>,
    exit_tx: &Sender<WorkerExit>,
) -> Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let exit_tx = exit_tx.clone();
    spawn_thread(format!("fademl-serve-worker-{idx}"), move || {
        let mut notice = ExitNotice {
            tx: exit_tx,
            idx,
            clean: false,
        };
        while let Ok(batch) = shared.batch_rx.recv() {
            process_batch(&shared, batch);
        }
        notice.clean = true;
    })
}

/// Supervisor loop: respawn workers that die uncleanly, wind down once
/// every worker has drained, then join all of them.
fn run_supervisor(
    shared: &Arc<WorkerShared>,
    exit_rx: &Receiver<WorkerExit>,
    exit_tx: &Sender<WorkerExit>,
    mut handles: Vec<JoinHandle<()>>,
) {
    let mut live = handles.len();
    while live > 0 {
        let Ok(exit) = exit_rx.recv() else { break };
        if exit.clean {
            live -= 1;
        } else {
            shared.metrics.record_worker_respawn();
            match spawn_worker(exit.idx, shared, exit_tx) {
                Ok(handle) => handles.push(handle),
                // Without a replacement the dead worker counts as gone;
                // the remaining workers keep draining the channel.
                Err(_) => live -= 1,
            }
        }
    }
    // Every worker is gone. If the batcher is still dispatching (all
    // workers died and could not be respawned), answer its batches with
    // a typed error until the channel disconnects — clients must never
    // hang on a batch nobody will execute.
    while let Ok(batch) = shared.batch_rx.recv() {
        for request in batch.requests {
            if request.fail(ServeError::BatchFailed {
                reason: "no workers available".into(),
            }) {
                shared.metrics.record_failed();
            }
        }
    }
    for handle in handles {
        // best-effort: a panicked worker was already counted as failed.
        let _ = handle.join();
    }
}

/// Admission-time input validation: one adversarially-malformed image
/// must never reach a shared batch, where it would poison co-batched
/// requests (NaN spreads through conv/matmul reductions) or crash the
/// worker serving them.
fn validate_image(image: &Tensor, config: &ServerConfig) -> Result<()> {
    if image.rank() != 3 {
        return Err(ServeError::InvalidInput {
            reason: format!("expected a [C, H, W] image, got {:?}", image.dims()),
        });
    }
    if image.numel() == 0 {
        return Err(ServeError::InvalidInput {
            reason: "empty image".into(),
        });
    }
    for (index, &value) in image.as_slice().iter().enumerate() {
        if !value.is_finite() {
            return Err(ServeError::InvalidInput {
                reason: format!("non-finite pixel {value} at flat index {index}"),
            });
        }
        if value < config.pixel_min || value > config.pixel_max {
            return Err(ServeError::InvalidInput {
                reason: format!(
                    "pixel {value} at flat index {index} outside [{}, {}]",
                    config.pixel_min, config.pixel_max
                ),
            });
        }
    }
    Ok(())
}

/// Batcher loop: pull requests, enforce in-queue deadlines, bucket by
/// threat model, dispatch full buckets immediately and lingering
/// buckets at their deadline.
fn run_batcher(
    submission_rx: &Receiver<Request>,
    batch_tx: &Sender<Batch>,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    faults: &FaultHandle,
) {
    let mut batcher = Batcher::new(config.max_batch_size, config.linger());
    let dispatch = |batch: Batch| {
        metrics.record_batch(batch.requests.len());
        // A send error means every worker is gone; answer the batch's
        // requests so no client hangs forever.
        if let Err(crossbeam::channel::SendError(batch)) = batch_tx.send(batch) {
            for request in batch.requests {
                if request.fail(ServeError::ShuttingDown) {
                    metrics.record_failed();
                }
            }
        }
    };
    loop {
        let received = match batcher.next_deadline() {
            // Nothing buffered: sleep until work arrives.
            None => submission_rx
                .recv()
                .map_err(|_| RecvTimeoutError::Disconnected),
            Some(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                submission_rx.recv_timeout(timeout)
            }
        };
        match received {
            Ok(request) => {
                metrics.record_dequeued();
                fault_on_dequeue(faults);
                let now = Instant::now();
                if let Some(overshoot) = request.overshoot(now) {
                    // Expired while queued: answer now rather than
                    // serving a stale verdict later.
                    metrics.record_deadline_miss(DeadlineStage::Queue, overshoot);
                    if request.fail(ServeError::DeadlineExceeded {
                        stage: DeadlineStage::Queue,
                    }) {
                        metrics.record_failed();
                    }
                } else if let Some(batch) = batcher.push(request, now) {
                    dispatch(batch);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        for batch in batcher.take_expired(Instant::now()) {
            dispatch(batch);
        }
    }
    // Shutdown drain: everything still buffered goes out as-is.
    for batch in batcher.flush_all() {
        dispatch(batch);
    }
}

/// One request awaiting execution inside a batch: its slot, its
/// submission time, and the detection annotation (if triaged) to carry
/// back on the verdict.
struct Waiter {
    slot: Arc<ResponseSlot>,
    submitted_at: Instant,
    detection: Option<Detection>,
}

/// Mid-batch drop guard: if the worker dies between dequeue and
/// delivery — panic, injected kill, anything that unwinds — every
/// still-unanswered handle in the batch resolves with a typed error
/// instead of hanging a client forever.
struct AnswerOnDrop<'a> {
    metrics: &'a ServerMetrics,
    waiters: &'a [Waiter],
}

impl Drop for AnswerOnDrop<'_> {
    fn drop(&mut self) {
        for waiter in self.waiters {
            if waiter.slot.fill(Err(ServeError::BatchFailed {
                reason: "worker terminated mid-batch".into(),
            })) {
                self.metrics.record_failed();
            }
        }
    }
}

/// Clones the live pipeline pointer. The read guard lives only for the
/// inner expression, so no caller ever holds the pipeline lock across
/// other lock acquisitions or a concurrent swap.
fn pipeline_snapshot(slot: &RwLock<Arc<InferencePipeline>>) -> Arc<InferencePipeline> {
    Arc::clone(&slot.read())
}

/// Executes one batch under full fault isolation: in-batch deadline
/// enforcement, `catch_unwind` around the pipeline, circuit-breaker
/// accounting, and the answer-on-drop guard.
fn process_batch(shared: &WorkerShared, batch: Batch) {
    let threat = batch.threat;
    let now = Instant::now();
    let mut images = Vec::with_capacity(batch.requests.len());
    let mut waiters = Vec::with_capacity(batch.requests.len());
    let mut hard_images = Vec::new();
    let mut hard_waiters = Vec::new();
    for request in batch.requests {
        if let Some(overshoot) = request.overshoot(now) {
            // Expired between dispatch and execution (e.g. behind a
            // slow batch): refuse to serve a stale answer.
            shared
                .metrics
                .record_deadline_miss(DeadlineStage::Batch, overshoot);
            if request.fail(ServeError::DeadlineExceeded {
                stage: DeadlineStage::Batch,
            }) {
                shared.metrics.record_failed();
            }
            continue;
        }
        // Flagged requests peel off to the hardened path; everything
        // else (clean, fail-open, untriaged) stays on the shared batch.
        let hardened = shared.triage.is_some()
            && matches!(request.triage, Some(TriageVerdict::Flagged { .. }));
        let waiter = Waiter {
            slot: request.slot,
            submitted_at: request.submitted_at,
            detection: request.triage.and_then(|t| t.detection(hardened)),
        };
        if hardened {
            hard_images.push(request.image);
            hard_waiters.push(waiter);
        } else {
            images.push(request.image);
            waiters.push(waiter);
        }
    }
    if waiters.is_empty() && hard_waiters.is_empty() {
        return;
    }

    // Both guards are armed before either path executes: a worker kill
    // mid-way through the normal subset must still answer the hardened
    // subset (and vice versa) during the unwind.
    let guard = AnswerOnDrop {
        metrics: &shared.metrics,
        waiters: &waiters,
    };
    let hard_guard = AnswerOnDrop {
        metrics: &shared.metrics,
        waiters: &hard_waiters,
    };
    let mode = shared.breaker.plan_batch();
    // One pipeline snapshot per batch: a concurrent hot swap flips the
    // shared pointer, but this batch keeps the consistent weights it
    // started with — no request can observe torn weights.
    let pipeline = pipeline_snapshot(&shared.pipeline);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        fault_on_batch_start(&shared.faults);
        if !waiters.is_empty() {
            match mode {
                BatchMode::Batched { probe } => {
                    execute_batched(shared, &pipeline, probe, &images, threat, &waiters);
                }
                BatchMode::PerImage => {
                    execute_per_image(shared, &pipeline, &images, threat, &waiters, false);
                }
            }
        }
        // The hardened subset always runs isolated per-image on the
        // stronger-filter pipeline, with the filter-bypassing threat
        // model revoked — the same degraded-mode machinery the circuit
        // breaker uses, so one adversarial input fails alone.
        if let (Some(triage), false) = (&shared.triage, hard_waiters.is_empty()) {
            let hardened = triage.hardened_snapshot();
            execute_per_image(
                shared,
                &hardened,
                &hard_images,
                hardened_threat(threat),
                &hard_waiters,
                true,
            );
        }
    }));
    match outcome {
        Ok(()) => {}
        Err(payload) => {
            // Panic isolation: only this batch fails; the worker (and
            // every other in-flight batch) survives.
            shared.metrics.record_worker_panic();
            shared.metrics.record_batch_failed();
            shared.breaker.record_batch_failure(&shared.metrics);
            let error = ServeError::BatchFailed {
                reason: panic_message(payload.as_ref()),
            };
            for waiter in waiters.iter().chain(&hard_waiters) {
                if waiter.slot.fill(Err(error.clone())) {
                    shared.metrics.record_failed();
                }
            }
            // An injected worker kill unwinds past the worker loop so
            // the supervisor's respawn path gets exercised; the guards
            // (already satisfied above) drop during the unwind.
            #[cfg(feature = "faults")]
            if faults::is_worker_kill(payload.as_ref()) {
                std::panic::resume_unwind(payload);
            }
        }
    }
    drop(hard_guard);
    drop(guard);
}

/// Normal batched execution: stack, one batched forward, deliver.
/// Mixed-shape batches fall back to isolated per-image execution.
/// Breaker accounting happens *before* any slot is filled, so clients
/// observing a resolved handle also observe the breaker transition it
/// caused.
fn execute_batched(
    shared: &WorkerShared,
    pipeline: &InferencePipeline,
    probe: bool,
    images: &[Tensor],
    threat: ThreatModel,
    waiters: &[Waiter],
) {
    let stacked = match Tensor::stack(images) {
        Ok(stacked) => stacked,
        // Heterogeneous image shapes can't stack; classify each image
        // individually so well-formed requests still succeed.
        Err(_) => {
            return execute_per_image(shared, pipeline, images, threat, waiters, false);
        }
    };
    match pipeline.classify_batch(&stacked, threat) {
        Ok(verdicts) => {
            shared.breaker.record_success(probe, &shared.metrics);
            for (mut verdict, waiter) in verdicts.into_iter().zip(waiters) {
                verdict.detection = waiter.detection;
                if waiter.slot.fill(Ok(verdict)) {
                    shared
                        .metrics
                        .record_completed(elapsed_us(waiter.submitted_at));
                }
            }
        }
        Err(err) => {
            shared.metrics.record_batch_failed();
            shared.breaker.record_batch_failure(&shared.metrics);
            let error = ServeError::Pipeline {
                message: err.to_string(),
            };
            for waiter in waiters {
                if waiter.slot.fill(Err(error.clone())) {
                    shared.metrics.record_failed();
                }
            }
        }
    }
}

/// Isolated per-image execution: one image at a time, each
/// classification wrapped in its own `catch_unwind`, so a single
/// poisoned image fails alone instead of taking down its neighbours.
/// Serves three callers — degraded mode behind the breaker,
/// mixed-shape fallback, and (with `hardened`) the triage stage's
/// hardened path, which additionally records the hardened latency
/// split.
fn execute_per_image(
    shared: &WorkerShared,
    pipeline: &InferencePipeline,
    images: &[Tensor],
    threat: ThreatModel,
    waiters: &[Waiter],
    hardened: bool,
) {
    for (image, waiter) in images.iter().zip(waiters) {
        if !hardened {
            shared.metrics.record_single_fallback();
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| pipeline.classify(image, threat)));
        match outcome {
            Ok(Ok(mut verdict)) => {
                verdict.detection = waiter.detection;
                if waiter.slot.fill(Ok(verdict)) {
                    let latency = elapsed_us(waiter.submitted_at);
                    shared.metrics.record_completed(latency);
                    if hardened {
                        shared.metrics.record_hardened(latency);
                    }
                }
            }
            Ok(Err(err)) => {
                if waiter.slot.fill(Err(ServeError::Pipeline {
                    message: err.to_string(),
                })) {
                    shared.metrics.record_failed();
                }
            }
            Err(payload) => {
                shared.metrics.record_worker_panic();
                if waiter.slot.fill(Err(ServeError::BatchFailed {
                    reason: panic_message(payload.as_ref()),
                })) {
                    shared.metrics.record_failed();
                }
            }
        }
    }
}

/// Renders a caught panic payload into a `BatchFailed` reason.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    #[cfg(feature = "faults")]
    if let Some(described) = faults::describe_payload(payload) {
        return described;
    }
    if let Some(text) = payload.downcast_ref::<&str>() {
        return (*text).to_string();
    }
    if let Some(text) = payload.downcast_ref::<String>() {
        return text.clone();
    }
    "worker panicked with an opaque payload".into()
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fademl::InferencePipeline;
    use fademl_filters::FilterSpec as Spec;
    use fademl_nn::vgg::VggConfig;
    use fademl_tensor::TensorRng;

    fn pipeline() -> InferencePipeline {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
    }

    fn images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = TensorRng::seed_from_u64(seed);
        (0..n)
            .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
            .collect()
    }

    #[test]
    fn serves_verdicts_matching_direct_classification() {
        let reference = pipeline();
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                queue_capacity: 64,
                max_batch_size: 4,
                linger_us: 1_000,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let imgs = images(10, 2);
        let threats = [ThreatModel::I, ThreatModel::II, ThreatModel::III];
        let handles: Vec<_> = imgs
            .iter()
            .enumerate()
            .map(|(i, img)| {
                let threat = threats[i % 3];
                (i, threat, server.submit(img.clone(), threat).unwrap())
            })
            .collect();
        for (i, threat, handle) in handles {
            let served = handle.wait().unwrap();
            let direct = reference.classify(&imgs[i], threat).unwrap();
            assert_eq!(served.class, direct.class, "image {i} under {threat}");
            assert_eq!(served.top5, direct.top5);
        }
        let report = server.shutdown();
        assert_eq!(report.requests_submitted, 10);
        assert_eq!(report.requests_completed, 10);
        assert_eq!(report.requests_failed, 0);
        // Depth gauge must net out to zero after a full drain — the
        // enqueue increment is reserved before the batcher can race it.
        assert_eq!(report.queue_depth, 0);
        assert!(report.batches_dispatched >= 3); // ≥ one per threat model
        assert!(report.max_batch_seen <= 4);
        assert_eq!(report.worker_panics, 0);
        assert_eq!(report.workers_respawned, 0);
        assert!(!report.degraded_now);
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        // Long linger + large batches: requests sit in buckets until
        // shutdown flushes them.
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                queue_capacity: 64,
                max_batch_size: 64,
                linger_us: 60_000_000, // 60s — only the drain can flush
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handles: Vec<_> = images(5, 3)
            .into_iter()
            .map(|img| server.submit(img, ThreatModel::III).unwrap())
            .collect();
        let report = server.shutdown();
        assert_eq!(report.requests_completed, 5);
        for handle in handles {
            assert!(handle.wait().is_ok());
        }
    }

    #[test]
    fn rejects_malformed_images_at_submit() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let err = server
            .submit(Tensor::zeros(&[1, 3, 16, 16]), ThreatModel::I)
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidInput { .. }));
        assert_eq!(server.metrics().requests_invalid, 1);
        server.shutdown();
    }

    #[test]
    fn rejects_non_finite_and_out_of_range_pixels() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let mut nan = images(1, 7).pop().unwrap();
        nan.as_mut_slice()[5] = f32::NAN;
        let mut inf = images(1, 8).pop().unwrap();
        inf.as_mut_slice()[0] = f32::INFINITY;
        let mut hot = images(1, 9).pop().unwrap();
        hot.as_mut_slice()[10] = 3.5;
        for bad in [nan, inf, hot] {
            let err = server.submit(bad, ThreatModel::I).unwrap_err();
            assert!(matches!(err, ServeError::InvalidInput { .. }), "{err}");
        }
        let report = server.shutdown();
        assert_eq!(report.requests_invalid, 3);
        assert_eq!(report.requests_submitted, 0);
        assert_eq!(report.queue_depth, 0);
    }

    #[test]
    fn custom_pixel_range_admits_wider_values() {
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                pixel_min: -2.0,
                pixel_max: 2.0,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::seed_from_u64(12);
        let img = rng.uniform(&[3, 16, 16], -1.5, 1.5);
        assert!(server.submit(img, ThreatModel::I).is_ok());
        server.shutdown();
    }

    #[test]
    fn generous_deadline_still_serves() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let handle = server
            .submit_with_deadline(
                images(1, 10).pop().unwrap(),
                ThreatModel::I,
                Some(Duration::from_secs(30)),
            )
            .unwrap();
        assert!(handle.wait().is_ok());
        let report = server.shutdown();
        assert_eq!(report.deadline_missed_queue, 0);
        assert_eq!(report.deadline_missed_batch, 0);
    }

    #[test]
    fn mixed_shapes_fall_back_to_individual_classification() {
        let server = InferenceServer::start(
            pipeline(),
            ServerConfig {
                max_batch_size: 2,
                linger_us: 50_000,
                ..Default::default()
            },
        )
        .unwrap();
        let mut rng = TensorRng::seed_from_u64(4);
        let good = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        let odd = rng.uniform(&[3, 8, 8], 0.0, 1.0); // stacks with nothing
        let h1 = server.submit(good.clone(), ThreatModel::I).unwrap();
        let h2 = server.submit(odd, ThreatModel::I).unwrap();
        // The well-formed image must still be classified.
        assert!(h1.wait().is_ok());
        // The odd-shaped one either classifies (16×16 model may reject
        // it) or reports a pipeline error — but it must not hang.
        let _ = h2.wait();
        server.shutdown();
    }

    #[test]
    fn drop_is_a_graceful_shutdown() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let handle = server
            .submit(images(1, 5).pop().unwrap(), ThreatModel::I)
            .unwrap();
        drop(server);
        assert!(handle.wait().is_ok());
    }

    #[test]
    fn swap_weights_changes_served_verdicts() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        assert_eq!(server.swap_generation(), 0);
        let img = images(1, 20).pop().unwrap();
        let before = server.classify(img.clone(), ThreatModel::I).unwrap();

        // A differently-seeded model, shipped as a FADEMLW2 artifact.
        let mut rng = TensorRng::seed_from_u64(99);
        let other = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let reference = InferencePipeline::new(other.clone(), Spec::Lap { np: 8 }).unwrap();
        let artifact = fademl::serialize::encode_weights(&other);
        let generation = server.swap_weights(&artifact).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(server.swap_generation(), 1);

        let after = server.classify(img.clone(), ThreatModel::I).unwrap();
        let direct = reference.classify(&img, ThreatModel::I).unwrap();
        assert_eq!(after.class, direct.class);
        assert_eq!(after.top5, direct.top5);
        // The probabilities must come from the new weights, not the old.
        assert_ne!(before.probabilities, after.probabilities);
        let report = server.shutdown();
        assert_eq!(report.swap_generation, 1);
        assert_eq!(report.requests_failed, 0);
    }

    #[test]
    fn corrupt_artifact_is_refused_and_old_weights_keep_serving() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        let img = images(1, 21).pop().unwrap();
        let before = server.classify(img.clone(), ThreatModel::II).unwrap();

        let mut rng = TensorRng::seed_from_u64(99);
        let other = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let mut artifact = fademl::serialize::encode_weights(&other);
        let mid = artifact.len() / 2;
        artifact[mid] ^= 0xFF; // break the CRC
        let err = server.swap_weights(&artifact).unwrap_err();
        assert!(matches!(err, ServeError::SwapFailed { .. }), "{err}");
        assert_eq!(server.swap_generation(), 0);

        let after = server.classify(img, ThreatModel::II).unwrap();
        assert_eq!(before.probabilities, after.probabilities);
        server.shutdown();
    }

    #[test]
    fn mismatched_architecture_artifact_is_refused() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        // Different class count → per-layer shapes can't match.
        let mut rng = TensorRng::seed_from_u64(5);
        let wrong = VggConfig::tiny(3, 16, 9).build(&mut rng).unwrap();
        let artifact = fademl::serialize::encode_weights(&wrong);
        let err = server.swap_weights(&artifact).unwrap_err();
        assert!(matches!(err, ServeError::SwapFailed { .. }), "{err}");
        assert_eq!(server.swap_generation(), 0);
        server.shutdown();
    }

    fn detector(seed: u64) -> Detector {
        let config = fademl_detect::DetectorConfig {
            trees: 16,
            subsample: 16,
            scales: 2,
            seed,
        };
        Detector::fit_images(&images(32, seed), &config).unwrap()
    }

    #[test]
    fn triage_annotates_clean_verdicts() {
        // Threshold 1.0: isolation scores are strictly below 1, so
        // nothing flags and everything serves on the batched path.
        let server = InferenceServer::start_with_triage(
            pipeline(),
            ServerConfig::default(),
            detector(40),
            TriageConfig {
                threshold: 1.0,
                ..TriageConfig::default()
            },
        )
        .unwrap();
        assert!(server.triage_enabled());
        for img in images(4, 41) {
            let verdict = server.classify(img, ThreatModel::II).unwrap();
            let detection = verdict.detection.expect("triaged verdicts are annotated");
            assert!(!detection.flagged);
            assert!(!detection.hardened);
            assert!((0.0..1.0).contains(&detection.score));
        }
        let report = server.shutdown();
        let d = report.detection.expect("triage section present");
        assert_eq!(d.clean, 4);
        assert_eq!(d.flagged, 0);
        assert_eq!(d.hardened_served, 0);
        assert_eq!(
            d.fail_open_panics + d.fail_open_timeouts + d.fail_open_errors,
            0
        );
    }

    #[test]
    fn flagged_requests_take_hardened_path() {
        // Threshold 0.0 flags everything: every request must be served
        // through the stronger filter with TM-I escalated to TM-III.
        let hardened_filter = Spec::Lap { np: 32 };
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let reference = InferencePipeline::new(model, hardened_filter).unwrap();
        let server = InferenceServer::start_with_triage(
            pipeline(),
            ServerConfig::default(),
            detector(42),
            TriageConfig {
                threshold: 0.0,
                hardened_filter,
                ..TriageConfig::default()
            },
        )
        .unwrap();
        let imgs = images(3, 43);
        for img in &imgs {
            let verdict = server.classify(img.clone(), ThreatModel::I).unwrap();
            let detection = verdict.detection.expect("flagged verdicts are annotated");
            assert!(detection.flagged);
            assert!(detection.hardened);
            let direct = reference.classify(img, ThreatModel::III).unwrap();
            assert_eq!(verdict.class, direct.class);
            assert_eq!(verdict.probabilities, direct.probabilities);
        }
        let report = server.shutdown();
        let d = report.detection.expect("triage section present");
        assert_eq!(d.flagged, 3);
        assert_eq!(d.hardened_served, 3);
        assert_eq!(report.requests_completed, 3);
        assert_eq!(report.requests_failed, 0);
        // Hardened execution is per-image but is not degraded-mode
        // accounting: the breaker never opened.
        assert_eq!(report.single_image_fallbacks, 0);
        assert!(!report.degraded_now);
    }

    #[test]
    fn swap_rebuilds_hardened_pipeline() {
        let hardened_filter = Spec::Lap { np: 32 };
        let server = InferenceServer::start_with_triage(
            pipeline(),
            ServerConfig::default(),
            detector(44),
            TriageConfig {
                threshold: 0.0,
                hardened_filter,
                ..TriageConfig::default()
            },
        )
        .unwrap();
        let img = images(1, 45).pop().unwrap();
        let before = server.classify(img.clone(), ThreatModel::III).unwrap();

        let mut rng = TensorRng::seed_from_u64(99);
        let other = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let reference = InferencePipeline::new(other.clone(), hardened_filter).unwrap();
        let artifact = fademl::serialize::encode_weights(&other);
        server.swap_weights(&artifact).unwrap();

        // The hardened path must serve the swapped weights, not the
        // generation the server started with.
        let after = server.classify(img.clone(), ThreatModel::III).unwrap();
        let direct = reference.classify(&img, ThreatModel::III).unwrap();
        assert_eq!(after.class, direct.class);
        assert_eq!(after.probabilities, direct.probabilities);
        assert_ne!(before.probabilities, after.probabilities);
        server.shutdown();
    }

    #[test]
    fn plain_server_reports_no_detection_section() {
        let server = InferenceServer::start(pipeline(), ServerConfig::default()).unwrap();
        assert!(!server.triage_enabled());
        let verdict = server
            .classify(images(1, 46).pop().unwrap(), ThreatModel::I)
            .unwrap();
        assert!(verdict.detection.is_none());
        assert!(server.shutdown().detection.is_none());
    }

    #[test]
    fn invalid_triage_config_refused() {
        assert!(matches!(
            InferenceServer::start_with_triage(
                pipeline(),
                ServerConfig::default(),
                detector(47),
                TriageConfig {
                    threshold: f32::NAN,
                    ..TriageConfig::default()
                },
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn invalid_config_refused() {
        assert!(matches!(
            InferenceServer::start(
                pipeline(),
                ServerConfig {
                    workers: 0,
                    ..Default::default()
                }
            ),
            Err(ServeError::InvalidConfig { .. })
        ));
    }
}
