//! Error type for the serving engine.

use std::fmt;

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Which enforcement point caught an expired request deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineStage {
    /// The request expired while waiting in the submission queue (or a
    /// batcher bucket) — it never reached a worker.
    Queue,
    /// The request expired between batch dispatch and execution — a
    /// worker saw it too late to serve a fresh answer.
    Batch,
}

impl fmt::Display for DeadlineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlineStage::Queue => write!(f, "queue"),
            DeadlineStage::Batch => write!(f, "batch"),
        }
    }
}

/// Everything that can go wrong between `submit` and a verdict.
///
/// The variants are `Clone` on purpose: one failed batch must deliver
/// the same error to every request it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue is full — the caller should shed
    /// load (retry later, degrade, or drop). Carries the configured
    /// capacity so callers can log a meaningful message.
    Overloaded {
        /// Configured submission-queue capacity.
        capacity: usize,
    },
    /// The server is shutting down (or has shut down) and accepts no
    /// new work.
    ShuttingDown,
    /// The inference pipeline failed while processing the batch that
    /// carried this request.
    Pipeline {
        /// Stringified pipeline error (kept as text so the error stays
        /// `Clone` across every request of the failed batch).
        message: String,
    },
    /// The batch carrying this request was lost to a worker panic (or a
    /// worker death) — the request itself may have been well-formed.
    /// The caller may safely retry.
    BatchFailed {
        /// What took the batch down (panic message or death report).
        reason: String,
    },
    /// The request's deadline expired before a verdict was computed, so
    /// the engine refused to serve a stale answer.
    DeadlineExceeded {
        /// The enforcement point that caught the expiry.
        stage: DeadlineStage,
    },
    /// The request's image was rejected at admission: wrong shape,
    /// non-finite values, or pixels outside the configured range. The
    /// image never reached a shared batch.
    InvalidInput {
        /// Why the image was refused.
        reason: String,
    },
    /// The server configuration is unusable.
    InvalidConfig {
        /// Why the configuration was refused.
        reason: String,
    },
    /// The engine itself failed to assemble (e.g. a worker thread could
    /// not be spawned). Not caused by the request.
    Internal {
        /// What went wrong inside the engine.
        reason: String,
    },
    /// A hot weight swap was refused: the artifact failed CRC
    /// validation or its shapes don't match the live architecture. The
    /// previously deployed weights keep serving untouched.
    SwapFailed {
        /// Why the artifact was rejected.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "submission queue full (capacity {capacity}); load shed")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Pipeline { message } => write!(f, "pipeline failure: {message}"),
            ServeError::BatchFailed { reason } => {
                write!(f, "batch failed: {reason}")
            }
            ServeError::DeadlineExceeded { stage } => {
                write!(f, "deadline exceeded in {stage}")
            }
            ServeError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid server config: {reason}"),
            ServeError::Internal { reason } => write!(f, "internal serving error: {reason}"),
            ServeError::SwapFailed { reason } => {
                write!(f, "weight swap rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServeError::Pipeline {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(ServeError::InvalidConfig {
            reason: "zero".into()
        }
        .to_string()
        .contains("zero"));
        assert!(ServeError::BatchFailed {
            reason: "worker panicked".into()
        }
        .to_string()
        .contains("worker panicked"));
        assert!(ServeError::InvalidInput {
            reason: "NaN pixel".into()
        }
        .to_string()
        .contains("NaN pixel"));
        assert!(ServeError::Internal {
            reason: "spawn failed".into()
        }
        .to_string()
        .contains("spawn failed"));
        assert!(ServeError::SwapFailed {
            reason: "CRC mismatch".into()
        }
        .to_string()
        .contains("CRC mismatch"));
    }

    #[test]
    fn deadline_stage_named_in_display() {
        assert_eq!(
            ServeError::DeadlineExceeded {
                stage: DeadlineStage::Queue
            }
            .to_string(),
            "deadline exceeded in queue"
        );
        assert_eq!(
            ServeError::DeadlineExceeded {
                stage: DeadlineStage::Batch
            }
            .to_string(),
            "deadline exceeded in batch"
        );
    }
}
