//! Error type for the serving engine.

use std::fmt;

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Everything that can go wrong between `submit` and a verdict.
///
/// The variants are `Clone` on purpose: one failed batch must deliver
/// the same error to every request it carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The bounded submission queue is full — the caller should shed
    /// load (retry later, degrade, or drop). Carries the configured
    /// capacity so callers can log a meaningful message.
    Overloaded {
        /// Configured submission-queue capacity.
        capacity: usize,
    },
    /// The server is shutting down (or has shut down) and accepts no
    /// new work.
    ShuttingDown,
    /// The inference pipeline failed while processing the batch that
    /// carried this request.
    Pipeline {
        /// Stringified pipeline error (kept as text so the error stays
        /// `Clone` across every request of the failed batch).
        message: String,
    },
    /// A request's image had the wrong shape for the server's pipeline.
    InvalidRequest {
        /// Why the request was refused.
        reason: String,
    },
    /// The server configuration is unusable.
    InvalidConfig {
        /// Why the configuration was refused.
        reason: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(f, "submission queue full (capacity {capacity}); load shed")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Pipeline { message } => write!(f, "pipeline failure: {message}"),
            ServeError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            ServeError::InvalidConfig { reason } => write!(f, "invalid server config: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        assert!(ServeError::Overloaded { capacity: 8 }
            .to_string()
            .contains("capacity 8"));
        assert!(ServeError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert!(ServeError::Pipeline {
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
        assert!(ServeError::InvalidConfig {
            reason: "zero".into()
        }
        .to_string()
        .contains("zero"));
    }
}
