//! End-to-end tests for the adaptive detection stage: budget-driven
//! threshold control with load-shedding, per-tenant baselines, reservoir
//! refits with held-out validation, detector hot swaps under sustained
//! concurrent load, and reservoir warm-resume across server restarts.

use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_detect::{feature_dim, pyramid_features, ControllerConfig, Detector, DetectorConfig};
use fademl_filters::FilterSpec as Spec;
use fademl_nn::vgg::VggConfig;
use fademl_serve::{
    AdaptiveConfig, InferenceServer, RefitOutcome, ServeError, ServerConfig, SupervisorConfig,
    TriageConfig, ValidationSet,
};
use fademl_tensor::{Tensor, TensorRng};

fn pipeline() -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(1);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
        .collect()
}

/// Detector fitted on the live-traffic distribution (uniform images).
fn detector(seed: u64) -> Detector {
    let config = DetectorConfig {
        trees: 16,
        subsample: 16,
        scales: 2,
        seed,
    };
    Detector::fit_images(&images(32, seed), &config).unwrap()
}

fn single_worker_config() -> ServerConfig {
    ServerConfig {
        queue_capacity: 256,
        max_batch_size: 2,
        linger_us: 5_000,
        workers: 1,
        ..ServerConfig::default()
    }
}

/// Feature vectors of uniform images — what live clean traffic looks
/// like to the detector.
fn traffic_features(n: usize, seed: u64) -> Vec<Vec<f32>> {
    images(n, seed)
        .iter()
        .map(|img| pyramid_features(img, 2).unwrap())
        .collect()
}

/// Synthetic far-out-of-distribution feature vectors: any forest
/// trained on traffic features isolates these quickly.
fn outlier_features(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let dim = feature_dim(2);
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| 7.0 + rng.uniform_scalar(-0.2, 0.2))
                .collect()
        })
        .collect()
}

/// Supervisor with manual-only refits (zero interval) validating on
/// traffic-vs-outlier features.
fn manual_supervisor(seed: u64) -> SupervisorConfig {
    SupervisorConfig {
        interval: Duration::ZERO,
        min_samples: 32,
        auc_margin: 0.2,
        refit_detector: DetectorConfig {
            trees: 16,
            subsample: 16,
            scales: 2,
            seed,
        },
        validation: ValidationSet {
            clean: traffic_features(16, 900 + seed),
            adversarial: outlier_features(16, 901 + seed),
        },
        reservoir_path: None,
    }
}

/// Triage config whose effective threshold sits above every isolation
/// score, so all traffic verdicts come back clean and feed the
/// reservoir and baselines.
fn all_clean_triage() -> (TriageConfig, AdaptiveConfig) {
    let triage = TriageConfig {
        threshold: 1.0,
        ..TriageConfig::default()
    };
    let adaptive = AdaptiveConfig {
        controller: ControllerConfig {
            floor: 1.0,
            ceiling: 1.0,
            ..ControllerConfig::default()
        },
        ..AdaptiveConfig::default()
    };
    (triage, adaptive)
}

#[test]
fn flooding_degrades_to_typed_load_shedding_within_budget() {
    // Ceiling far below every real score: the controller pins at the
    // ceiling (anti-blinding rail) and every frame flags, so the shed
    // rail must bound hardened-path load per window.
    let controller = ControllerConfig {
        budget: 0.25,
        floor: 0.0,
        ceiling: 0.05,
        window: 8,
        ..ControllerConfig::default()
    };
    let shed_cap = controller.shed_cap();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(10),
        TriageConfig {
            threshold: 0.0,
            ..TriageConfig::default()
        },
        AdaptiveConfig {
            controller,
            ..AdaptiveConfig::default()
        },
        None,
    )
    .unwrap();

    let total = 64u64;
    let mut served = 0u64;
    let mut shed = 0u64;
    for img in images(usize::try_from(total).unwrap(), 11) {
        match server.classify(img, ThreatModel::I) {
            Ok(verdict) => {
                let detection = verdict.detection.expect("flagged verdicts are annotated");
                assert!(detection.flagged);
                assert!(detection.hardened);
                served += 1;
            }
            Err(ServeError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("only Overloaded may refuse a flood, got {other}"),
        }
    }
    assert!(shed > 0, "a sustained flood must shed");
    // Per window the hardened path serves at most shed_cap + 1 frames
    // (the window-boundary frame resets the counter before the check).
    let windows = total / u64::from(controller.window);
    assert!(
        served <= windows * u64::from(shed_cap + 1),
        "served {served}"
    );

    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert_eq!(d.flagged, total);
    assert_eq!(d.shed, shed);
    assert_eq!(d.hardened_served, served);
    assert_eq!(report.requests_failed, 0);
    // Shed requests never reach the queue, so they are not counted as
    // queue rejections.
    assert_eq!(report.requests_rejected, 0);
}

#[test]
fn clean_traffic_fills_reservoir_and_tracks_tenants() {
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(20),
        triage,
        adaptive,
        Some(manual_supervisor(21)),
    )
    .unwrap();
    assert!(server.adaptive_enabled());
    assert_eq!(server.triage_threshold(), Some(1.0));

    let imgs = images(12, 22);
    for (i, img) in imgs.into_iter().enumerate() {
        let tenant = if i % 2 == 0 { "acme" } else { "globex" };
        let handle = server
            .submit_for_tenant(img, ThreatModel::II, tenant, None)
            .unwrap();
        let verdict = handle.wait().unwrap();
        let detection = verdict.detection.expect("clean verdicts are annotated");
        assert!(!detection.flagged);
    }
    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert_eq!(d.clean, 12);
    assert_eq!(d.flagged, 0);
    assert_eq!(d.shed, 0);
    assert_eq!(d.tenants_tracked, 2);
    assert_eq!(d.detector_generation, 0);
}

#[test]
fn refit_swaps_validated_candidate_and_serving_continues() {
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(30),
        triage,
        adaptive,
        Some(manual_supervisor(31)),
    )
    .unwrap();

    // Cold reservoir: the refit must refuse to train, not train badly.
    let cold = server.refit_detector().unwrap();
    assert!(
        matches!(cold.outcome, RefitOutcome::SkippedCold { samples: 0 }),
        "{:?}",
        cold.outcome
    );

    for img in images(48, 32) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    let report = server.refit_detector().unwrap();
    match report.outcome {
        RefitOutcome::Swapped {
            generation,
            candidate_auc,
            incumbent_auc,
        } => {
            assert_eq!(generation, 1);
            assert!(candidate_auc > 0.9, "candidate AUC {candidate_auc}");
            assert!(incumbent_auc > 0.9, "incumbent AUC {incumbent_auc}");
        }
        other => panic!("expected a swap, got {other:?}"),
    }
    assert!(report.persist_error.is_none());
    assert_eq!(server.detector_generation(), 1);

    // The swapped-in detector serves immediately.
    for img in images(4, 33) {
        let verdict = server.classify(img, ThreatModel::II).unwrap();
        assert!(verdict.detection.is_some());
    }
    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert_eq!(d.refits_swapped, 1);
    assert_eq!(d.refits_rejected, 0);
    assert_eq!(d.detector_generation, 1);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn regressing_candidate_is_rejected_and_incumbent_keeps_serving() {
    // The incumbent is trained on outlier-land and validated on a slice
    // where outlier-land is "clean": it separates perfectly. Any
    // candidate refit from the live (uniform-traffic) reservoir scores
    // that validation slice inverted, so the swap must be refused.
    let dim = feature_dim(2);
    let incumbent = Detector::fit(
        &outlier_features(32, 40),
        &DetectorConfig {
            trees: 16,
            subsample: 16,
            scales: 2,
            seed: 40,
        },
    )
    .unwrap();
    assert_eq!(incumbent.feature_dim(), dim);
    let supervisor = SupervisorConfig {
        validation: ValidationSet {
            clean: outlier_features(16, 41),
            adversarial: traffic_features(16, 42),
        },
        ..manual_supervisor(43)
    };
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        incumbent,
        triage,
        adaptive,
        Some(supervisor),
    )
    .unwrap();

    // Live traffic reads as clean (threshold pinned at 1.0), filling
    // the reservoir with uniform-image features.
    for img in images(48, 44) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    let report = server.refit_detector().unwrap();
    match report.outcome {
        RefitOutcome::Rejected {
            candidate_auc,
            incumbent_auc,
        } => {
            assert!(
                candidate_auc < incumbent_auc - 0.2,
                "candidate {candidate_auc} vs incumbent {incumbent_auc}"
            );
        }
        other => panic!("expected a rejection, got {other:?}"),
    }
    // The incumbent stays deployed and keeps serving.
    assert_eq!(server.detector_generation(), 0);
    for img in images(4, 45) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert_eq!(d.refits_rejected, 1);
    assert_eq!(d.refits_swapped, 0);
    assert_eq!(d.detector_generation, 0);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn detector_hot_swap_under_sustained_concurrent_load() {
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig {
            queue_capacity: 1024,
            max_batch_size: 4,
            linger_us: 2_000,
            workers: 2,
            ..ServerConfig::default()
        },
        detector(50),
        triage,
        adaptive,
        None,
    )
    .unwrap();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 40;
    const SWAPS: u64 = 5;
    let generations = std::thread::scope(|scope| {
        for t in 0..THREADS {
            let server = &server;
            scope.spawn(move || {
                for img in images(PER_THREAD, 60 + t as u64) {
                    let tenant = format!("tenant-{t}");
                    let handle = server
                        .submit_for_tenant(img, ThreatModel::II, &tenant, None)
                        .expect("no request may be rejected during swaps");
                    handle.wait().expect("no request may fail during swaps");
                }
            });
        }
        // Swap mid-flight, repeatedly, from serialized artifacts.
        let mut generations = Vec::new();
        for k in 0..SWAPS {
            std::thread::sleep(Duration::from_millis(3));
            let artifact = detector(70 + k).to_bytes();
            generations.push(server.swap_detector(&artifact).unwrap());
        }
        generations
    });
    // Generations are strictly monotone: every swap observed its own.
    assert_eq!(generations, (1..=SWAPS).collect::<Vec<_>>());
    assert_eq!(server.detector_generation(), SWAPS);

    let report = server.shutdown();
    assert_eq!(
        report.requests_completed,
        (THREADS * PER_THREAD) as u64,
        "every request served across {SWAPS} detector swaps"
    );
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.requests_rejected, 0);
    let d = report.detection.expect("detection section present");
    assert_eq!(d.shed, 0);
    assert_eq!(d.detector_generation, SWAPS);
    assert_eq!(
        d.fail_open_panics + d.fail_open_timeouts + d.fail_open_errors,
        0
    );
}

#[test]
fn mismatched_detector_artifact_is_refused() {
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(80),
        triage,
        adaptive,
        None,
    )
    .unwrap();
    // scales 1 ⇒ different feature geometry than the incumbent's 2.
    let wrong = Detector::fit_images(
        &images(32, 81),
        &DetectorConfig {
            trees: 8,
            subsample: 16,
            scales: 1,
            seed: 81,
        },
    )
    .unwrap();
    let err = server.swap_detector(&wrong.to_bytes()).unwrap_err();
    assert!(matches!(err, ServeError::SwapFailed { .. }), "{err}");
    // Garbage bytes are refused by artifact validation.
    let err = server.swap_detector(&[0u8; 16]).unwrap_err();
    assert!(matches!(err, ServeError::SwapFailed { .. }), "{err}");
    assert_eq!(server.detector_generation(), 0);
    server.shutdown();
}

#[test]
fn reservoir_persists_and_warm_resumes_across_restart() {
    let path = std::env::temp_dir().join(format!(
        "fademl-adaptive-reservoir-{}.bin",
        std::process::id()
    ));
    // best-effort: stale artifact from a previous failed run.
    let _ = std::fs::remove_file(&path);

    let supervisor = SupervisorConfig {
        reservoir_path: Some(path.clone()),
        ..manual_supervisor(90)
    };
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(91),
        triage,
        adaptive,
        Some(supervisor.clone()),
    )
    .unwrap();
    for img in images(48, 92) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // The refit persists the reservoir snapshot (and swaps).
    let report = server.refit_detector().unwrap();
    assert!(matches!(report.outcome, RefitOutcome::Swapped { .. }));
    assert!(report.persist_error.is_none());
    assert!(path.exists(), "reservoir artifact must be written");
    server.shutdown();

    // A fresh server warm-resumes the reservoir: a refit succeeds
    // without serving a single frame first.
    let (triage, adaptive) = all_clean_triage();
    let resumed = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(93),
        triage,
        adaptive,
        Some(supervisor),
    )
    .unwrap();
    let report = resumed.refit_detector().unwrap();
    assert!(
        matches!(report.outcome, RefitOutcome::Swapped { generation: 1, .. }),
        "{:?}",
        report.outcome
    );
    resumed.shutdown();
    // best-effort: temp-dir hygiene only.
    let _ = std::fs::remove_file(&path);
}

#[test]
fn background_refit_loop_swaps_without_manual_triggers() {
    let supervisor = SupervisorConfig {
        interval: Duration::from_millis(30),
        ..manual_supervisor(95)
    };
    let (triage, adaptive) = all_clean_triage();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        single_worker_config(),
        detector(96),
        triage,
        adaptive,
        Some(supervisor),
    )
    .unwrap();
    for img in images(48, 97) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // Wait for the loop to run at least one warm refit.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while server.detector_generation() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        server.detector_generation() >= 1,
        "background refit loop never swapped"
    );
    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert!(d.refits_swapped >= 1);
    assert_eq!(report.requests_failed, 0);
}
