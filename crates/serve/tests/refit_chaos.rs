//! Chaos tests for the detector refit path (`--features faults`).
//!
//! The adaptive-stage invariant on top of the engine-wide one: *refits
//! can never hurt serving*. A refit panic is contained and counted, a
//! torn or bit-rotted reservoir artifact is refused at load (never
//! resurrected as garbage state), and a corrupt candidate artifact is
//! refused with a typed error — in every case the incumbent detector
//! keeps serving and every request's handle resolves.

#![cfg(feature = "faults")]

use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_detect::{pyramid_features, ControllerConfig, Detector, DetectorConfig};
use fademl_filters::FilterSpec as Spec;
use fademl_nn::vgg::VggConfig;
use fademl_serve::{
    AdaptiveConfig, FaultPlan, InferenceServer, RefitOutcome, ServeError, ServerConfig,
    SupervisorConfig, TriageConfig, ValidationSet,
};
use fademl_tensor::io::faults::{arm, disarm, IoFaultPlan, INJECTED};
use fademl_tensor::{Tensor, TensorRng};

fn pipeline() -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(1);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
        .collect()
}

fn detector(seed: u64) -> Detector {
    let config = DetectorConfig {
        trees: 16,
        subsample: 16,
        scales: 2,
        seed,
    };
    Detector::fit_images(&images(32, seed), &config).unwrap()
}

fn traffic_features(n: usize, seed: u64) -> Vec<Vec<f32>> {
    images(n, seed)
        .iter()
        .map(|img| pyramid_features(img, 2).unwrap())
        .collect()
}

fn outlier_features(n: usize, seed: u64) -> Vec<Vec<f32>> {
    let dim = fademl_detect::feature_dim(2);
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| 7.0 + rng.uniform_scalar(-0.2, 0.2))
                .collect()
        })
        .collect()
}

fn supervisor(seed: u64, reservoir_path: Option<std::path::PathBuf>) -> SupervisorConfig {
    SupervisorConfig {
        interval: Duration::ZERO,
        min_samples: 32,
        auc_margin: 0.2,
        refit_detector: DetectorConfig {
            trees: 16,
            subsample: 16,
            scales: 2,
            seed,
        },
        validation: ValidationSet {
            clean: traffic_features(16, 900 + seed),
            adversarial: outlier_features(16, 901 + seed),
        },
        reservoir_path,
    }
}

/// Everything scores below the pinned threshold: all traffic is clean
/// and feeds the reservoir.
fn all_clean() -> (TriageConfig, AdaptiveConfig) {
    let triage = TriageConfig {
        threshold: 1.0,
        ..TriageConfig::default()
    };
    let adaptive = AdaptiveConfig {
        controller: ControllerConfig {
            floor: 1.0,
            ceiling: 1.0,
            ..ControllerConfig::default()
        },
        ..AdaptiveConfig::default()
    };
    (triage, adaptive)
}

fn temp_reservoir(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!(
        "fademl-refit-chaos-{tag}-{}.bin",
        std::process::id()
    ));
    // best-effort: stale artifact from a previous failed run.
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn torn_reservoir_write_is_reported_and_never_warm_resumed() {
    let path = temp_reservoir("torn");
    let (triage, adaptive) = all_clean();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig::default(),
        detector(10),
        triage,
        adaptive,
        Some(supervisor(11, Some(path.clone()))),
    )
    .unwrap();
    for img in images(48, 12) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // The refit's reservoir persist tears mid-replace: the destination
    // file holds a 16-byte prefix of the payload.
    arm(IoFaultPlan::new().torn_rename_on(1, 16));
    let report = server.refit_detector().unwrap();
    disarm();
    // The swap itself already landed — persistence is best-effort and
    // its failure is typed, not swallowed and not fatal.
    assert!(matches!(report.outcome, RefitOutcome::Swapped { .. }));
    let persist_error = report.persist_error.expect("torn write must be reported");
    assert!(persist_error.contains(INJECTED), "{persist_error}");
    assert_eq!(server.detector_generation(), 1);
    // Serving continues on the swapped detector.
    for img in images(4, 13) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    assert_eq!(server.shutdown().requests_failed, 0);

    // A restart must refuse the truncated artifact (CRC) and start
    // cold instead of resurrecting garbage reservoir state.
    let (triage, adaptive) = all_clean();
    let resumed = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig::default(),
        detector(14),
        triage,
        adaptive,
        Some(supervisor(15, Some(path.clone()))),
    )
    .unwrap();
    let report = resumed.refit_detector().unwrap();
    assert!(
        matches!(report.outcome, RefitOutcome::SkippedCold { samples: 0 }),
        "torn artifact must not warm-resume: {:?}",
        report.outcome
    );
    resumed.shutdown();
    // best-effort: temp-dir hygiene only.
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_rotted_reservoir_artifact_fails_crc_and_starts_cold() {
    let path = temp_reservoir("bitrot");
    let (triage, adaptive) = all_clean();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig::default(),
        detector(20),
        triage,
        adaptive,
        Some(supervisor(21, Some(path.clone()))),
    )
    .unwrap();
    for img in images(48, 22) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // Silent media corruption: the persist "succeeds", then one bit of
    // the destination rots. Only the CRC trailer can catch this.
    arm(IoFaultPlan::new().bit_flip_on(1, 40));
    let report = server.refit_detector().unwrap();
    disarm();
    assert!(matches!(report.outcome, RefitOutcome::Swapped { .. }));
    assert!(
        report.persist_error.is_none(),
        "bit rot is silent at write time"
    );
    server.shutdown();

    let (triage, adaptive) = all_clean();
    let resumed = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig::default(),
        detector(23),
        triage,
        adaptive,
        Some(supervisor(24, Some(path.clone()))),
    )
    .unwrap();
    let report = resumed.refit_detector().unwrap();
    assert!(
        matches!(report.outcome, RefitOutcome::SkippedCold { samples: 0 }),
        "bit-rotted artifact must not warm-resume: {:?}",
        report.outcome
    );
    resumed.shutdown();
    // best-effort: temp-dir hygiene only.
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bit_flipped_candidate_artifact_is_refused_with_typed_error() {
    let (triage, adaptive) = all_clean();
    let server = InferenceServer::start_adaptive(
        pipeline(),
        ServerConfig::default(),
        detector(30),
        triage,
        adaptive,
        None,
    )
    .unwrap();
    let mut artifact = detector(31).to_bytes();
    let mid = artifact.len() / 2;
    artifact[mid] ^= 0x10;
    let err = server.swap_detector(&artifact).unwrap_err();
    assert!(matches!(err, ServeError::SwapFailed { .. }), "{err}");
    assert_eq!(server.detector_generation(), 0);
    // The incumbent keeps serving after the refused swap.
    for img in images(4, 32) {
        let verdict = server.classify(img, ThreatModel::II).unwrap();
        assert!(verdict.detection.is_some());
    }
    let report = server.shutdown();
    assert_eq!(report.requests_failed, 0);
    assert_eq!(report.detection.unwrap().detector_generation, 0);
}

#[test]
fn injected_refit_panic_is_contained_and_counted() {
    let (triage, adaptive) = all_clean();
    let server = InferenceServer::start_adaptive_with_faults(
        pipeline(),
        ServerConfig::default(),
        detector(40),
        triage,
        adaptive,
        Some(supervisor(41, None)),
        FaultPlan::new().panic_on_refit(1),
    )
    .unwrap();
    for img in images(48, 42) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // Refit 1 panics mid-training: contained, counted, incumbent stays.
    let report = server.refit_detector().unwrap();
    assert!(
        matches!(report.outcome, RefitOutcome::Panicked),
        "{:?}",
        report.outcome
    );
    assert_eq!(server.detector_generation(), 0);
    for img in images(4, 43) {
        server.classify(img, ThreatModel::II).unwrap();
    }
    // Refit 2 has no scheduled fault and recovers the loop: the stage
    // is not poisoned by the contained panic.
    let report = server.refit_detector().unwrap();
    assert!(
        matches!(report.outcome, RefitOutcome::Swapped { generation: 1, .. }),
        "{:?}",
        report.outcome
    );
    let report = server.shutdown();
    let d = report.detection.expect("detection section present");
    assert_eq!(d.refit_panics, 1);
    assert_eq!(d.refits_swapped, 1);
    assert_eq!(d.detector_generation, 1);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn score_panic_on_the_adaptive_path_fails_open() {
    let (triage, adaptive) = all_clean();
    let server = InferenceServer::start_adaptive_with_faults(
        pipeline(),
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
        detector(50),
        triage,
        adaptive,
        None,
        FaultPlan::new().panic_on_score(2),
    )
    .unwrap();
    let mut annotated = 0;
    let mut open = 0;
    for img in images(3, 51) {
        let verdict = server.classify(img, ThreatModel::II).unwrap();
        if verdict.detection.is_some() {
            annotated += 1;
        } else {
            open += 1;
        }
    }
    assert_eq!(annotated, 2);
    assert_eq!(open, 1, "the injected score panic fails open");
    let report = server.shutdown();
    assert_eq!(report.requests_failed, 0);
    let d = report.detection.expect("detection section present");
    assert_eq!(d.fail_open_panics, 1);
}
