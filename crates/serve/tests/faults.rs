//! Deterministic chaos tests for the serving engine, driven by the
//! fault-injection harness (`--features faults`).
//!
//! The invariant under test, everywhere: **every accepted request's
//! handle resolves** — with a verdict or a typed error — no matter
//! which fault fires. A hang is the one failure mode these tests are
//! designed to catch, so every wait goes through `wait_timeout`.

#![cfg(feature = "faults")]

use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec as Spec;
use fademl_nn::vgg::VggConfig;
use fademl_serve::{
    DeadlineStage, FaultPlan, InferenceServer, ResponseHandle, ServeError, ServerConfig,
};
use fademl_tensor::{Tensor, TensorRng};

/// Generous bound for "resolves": far above any real processing time,
/// far below a hung test.
const RESOLVE_WITHIN: Duration = Duration::from_secs(30);

fn pipeline() -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(1);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
        .collect()
}

/// One worker, small batches: batch sequence numbers are deterministic.
fn single_worker_config() -> ServerConfig {
    ServerConfig {
        queue_capacity: 64,
        max_batch_size: 2,
        linger_us: 20_000,
        workers: 1,
        ..ServerConfig::default()
    }
}

fn resolve(handle: ResponseHandle) -> Result<fademl::Verdict, ServeError> {
    handle
        .wait_timeout(RESOLVE_WITHIN)
        .expect("handle must resolve, not hang")
}

#[test]
fn injected_panic_fails_only_its_batch() {
    let server = InferenceServer::start_with_faults(
        pipeline(),
        single_worker_config(),
        FaultPlan::new().panic_on_batch(1),
    )
    .unwrap();
    let mut imgs = images(4, 2).into_iter();

    // Batch 1: two requests, poisoned by the injected panic.
    let h1 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    let h2 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    for handle in [h1, h2] {
        match resolve(handle) {
            Err(ServeError::BatchFailed { reason }) => {
                assert!(reason.contains("injected panic"), "reason: {reason}");
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
    }

    // Batch 2: the worker survived the panic and serves normally.
    let h3 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    let h4 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    assert!(resolve(h3).is_ok());
    assert!(resolve(h4).is_ok());

    let report = server.shutdown();
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.batches_failed, 1);
    assert_eq!(
        report.workers_respawned, 0,
        "panic must not kill the worker"
    );
    assert_eq!(report.requests_failed, 2);
    assert_eq!(report.requests_completed, 2);
}

/// Regression test for the silent-hang bug: a worker killed mid-flight
/// used to leave its batch — and the whole server — unable to answer.
/// Now the batch fails typed, the supervisor respawns the worker, and
/// later requests are served.
#[test]
fn killed_worker_is_respawned_and_nothing_hangs() {
    let server = InferenceServer::start_with_faults(
        pipeline(),
        single_worker_config(),
        FaultPlan::new().kill_worker_on_batch(1),
    )
    .unwrap();
    let mut imgs = images(4, 3).into_iter();

    let h1 = server
        .submit(imgs.next().unwrap(), ThreatModel::II)
        .unwrap();
    let h2 = server
        .submit(imgs.next().unwrap(), ThreatModel::II)
        .unwrap();
    for handle in [h1, h2] {
        match resolve(handle) {
            Err(ServeError::BatchFailed { reason }) => {
                assert!(reason.contains("worker kill"), "reason: {reason}");
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
    }

    // The only worker died; these can only be served by its replacement.
    let h3 = server
        .submit(imgs.next().unwrap(), ThreatModel::II)
        .unwrap();
    let h4 = server
        .submit(imgs.next().unwrap(), ThreatModel::II)
        .unwrap();
    assert!(resolve(h3).is_ok());
    assert!(resolve(h4).is_ok());

    let report = server.shutdown();
    assert_eq!(report.workers_respawned, 1);
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.requests_completed, 2);
    assert_eq!(report.requests_failed, 2);
}

#[test]
fn deadline_expires_in_queue_behind_a_stalled_batcher() {
    let server = InferenceServer::start_with_faults(
        pipeline(),
        single_worker_config(),
        // The batcher sleeps 80 ms before handling the first dequeued
        // request — its 10 ms deadline expires while it waits.
        FaultPlan::new().stall_dequeue(1, Duration::from_millis(80)),
    )
    .unwrap();
    let handle = server
        .submit_with_deadline(
            images(1, 4).pop().unwrap(),
            ThreatModel::I,
            Some(Duration::from_millis(10)),
        )
        .unwrap();
    assert_eq!(
        resolve(handle),
        Err(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Queue,
        })
    );
    let report = server.shutdown();
    assert_eq!(report.deadline_missed_queue, 1);
    assert_eq!(report.deadline_missed_batch, 0);
    assert_eq!(report.requests_failed, 1);
    // Exactly one overshoot recorded (scheduling decides the bucket).
    assert_eq!(report.deadline_overshoot_buckets.iter().sum::<u64>(), 1);
}

#[test]
fn deadline_expires_in_batch_behind_a_slow_worker() {
    let server = InferenceServer::start_with_faults(
        pipeline(),
        ServerConfig {
            max_batch_size: 1, // every request is its own batch
            linger_us: 1_000,
            workers: 1,
            ..ServerConfig::default()
        },
        // The worker sleeps 150 ms inside batch 1; batch 2 waits in the
        // dispatch channel the whole time.
        FaultPlan::new().delay_batch(1, Duration::from_millis(150)),
    )
    .unwrap();
    let mut imgs = images(2, 5).into_iter();
    let slow = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    // Let the first request become batch 1 before submitting the second.
    std::thread::sleep(Duration::from_millis(30));
    let expired = server
        .submit_with_deadline(
            imgs.next().unwrap(),
            ThreatModel::I,
            Some(Duration::from_millis(20)),
        )
        .unwrap();
    assert!(resolve(slow).is_ok(), "the delayed batch still serves");
    assert_eq!(
        resolve(expired),
        Err(ServeError::DeadlineExceeded {
            stage: DeadlineStage::Batch,
        })
    );
    let report = server.shutdown();
    assert_eq!(report.deadline_missed_batch, 1);
    assert_eq!(report.deadline_missed_queue, 0);
}

#[test]
fn breaker_degrades_after_consecutive_failures_and_probe_recovers() {
    let config = ServerConfig {
        queue_capacity: 64,
        max_batch_size: 2,
        linger_us: 20_000,
        workers: 1,
        degrade_after_failures: 2,
        probe_every: 2,
        ..ServerConfig::default()
    };
    let server = InferenceServer::start_with_faults(
        pipeline(),
        config,
        FaultPlan::new().panic_on_batch(1).panic_on_batch(2),
    )
    .unwrap();
    let submit_pair = |seed: u64| -> Vec<ResponseHandle> {
        images(2, seed)
            .into_iter()
            .map(|img| server.submit(img, ThreatModel::I).unwrap())
            .collect()
    };

    // Batches 1 and 2 panic → breaker opens.
    for seed in [10, 11] {
        for handle in submit_pair(seed) {
            assert!(matches!(
                resolve(handle),
                Err(ServeError::BatchFailed { .. })
            ));
        }
    }
    assert!(
        server.is_degraded(),
        "two consecutive failures must degrade"
    );

    // Batch 3 runs per-image (isolated) and still serves verdicts.
    for handle in submit_pair(12) {
        assert!(resolve(handle).is_ok());
    }
    assert!(server.is_degraded(), "first degraded batch is not a probe");

    // Batch 4 is the probe (every 2nd degraded batch); its success
    // closes the breaker.
    for handle in submit_pair(13) {
        assert!(resolve(handle).is_ok());
    }
    assert!(!server.is_degraded(), "successful probe must recover");

    let report = server.shutdown();
    assert_eq!(report.degraded_entered, 1);
    assert_eq!(report.degraded_exited, 1);
    assert!(!report.degraded_now);
    assert_eq!(report.single_image_fallbacks, 2, "batch 3 ran per-image");
    assert_eq!(report.worker_panics, 2);
}

/// The full chaos drill: concurrent submitters, mixed deadlines, and a
/// plan that panics a worker, kills a worker, delays a batch and stalls
/// the batcher — all at once. Every single handle must resolve.
#[test]
fn chaos_stress_every_handle_resolves() {
    const SUBMITTERS: usize = 4;
    const PER_SUBMITTER: usize = 12;

    let plan = FaultPlan::new()
        .panic_on_batch(2)
        .kill_worker_on_batch(5)
        .delay_batch(8, Duration::from_millis(40))
        .stall_dequeue(9, Duration::from_millis(30));
    let server = std::sync::Arc::new(
        InferenceServer::start_with_faults(
            pipeline(),
            ServerConfig {
                queue_capacity: 256,
                max_batch_size: 4,
                linger_us: 5_000,
                workers: 2,
                degrade_after_failures: 2,
                probe_every: 2,
                ..ServerConfig::default()
            },
            plan,
        )
        .unwrap(),
    );

    let threads: Vec<_> = (0..SUBMITTERS)
        .map(|t| {
            let server = std::sync::Arc::clone(&server);
            std::thread::spawn(move || {
                let mut verdicts = 0usize;
                let mut typed_errors = 0usize;
                for (i, img) in images(PER_SUBMITTER, 100 + t as u64)
                    .into_iter()
                    .enumerate()
                {
                    let threat = [ThreatModel::I, ThreatModel::II, ThreatModel::III][i % 3];
                    // Every 4th request carries a tight-ish deadline.
                    let deadline = (i % 4 == 0).then(|| Duration::from_millis(200));
                    match server.submit_with_deadline(img, threat, deadline) {
                        Ok(handle) => match resolve(handle) {
                            Ok(_) => verdicts += 1,
                            Err(_) => typed_errors += 1,
                        },
                        // Shedding at the edge also counts as resolved.
                        Err(_) => typed_errors += 1,
                    }
                }
                (verdicts, typed_errors)
            })
        })
        .collect();

    let mut verdicts = 0;
    let mut typed_errors = 0;
    for thread in threads {
        let (v, e) = thread.join().unwrap();
        verdicts += v;
        typed_errors += e;
    }
    assert_eq!(
        verdicts + typed_errors,
        SUBMITTERS * PER_SUBMITTER,
        "every request resolved with a verdict or a typed error"
    );
    assert!(verdicts > 0, "chaos must not take down the whole service");

    let report = std::sync::Arc::try_unwrap(server)
        .expect("all submitter clones joined")
        .shutdown();
    assert!(report.worker_panics >= 2, "both injected panics fired");
    assert_eq!(report.workers_respawned, 1);
    // Accounting closes: nothing submitted is left unanswered.
    assert_eq!(
        report.requests_completed + report.requests_failed,
        report.requests_submitted
    );
    assert_eq!(report.queue_depth, 0);
}
