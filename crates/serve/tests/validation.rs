//! Property tests for admission-time input validation: arbitrary
//! tensors — including non-finite and out-of-range ones — either
//! classify or come back as a typed [`ServeError::InvalidInput`]. They
//! never panic a worker and never hang a handle.

use std::sync::OnceLock;
use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec as Spec;
use fademl_nn::vgg::VggConfig;
use fademl_serve::{InferenceServer, ServeError, ServerConfig};
use fademl_tensor::{Tensor, TensorRng};
use proptest::prelude::*;

const PIXELS: usize = 3 * 16 * 16;

/// One server shared by every proptest case: validation is stateless,
/// and reusing the worker pool keeps the suite fast. Never shut down —
/// the threads die with the test process.
fn server() -> &'static InferenceServer {
    static SERVER: OnceLock<InferenceServer> = OnceLock::new();
    SERVER.get_or_init(|| {
        let mut rng = TensorRng::seed_from_u64(1);
        let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
        let pipeline = InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap();
        InferenceServer::start(
            pipeline,
            ServerConfig {
                queue_capacity: 64,
                max_batch_size: 4,
                linger_us: 1_000,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    })
}

/// How a generated tensor is corrupted. Index 0 leaves it well-formed.
const CORRUPTIONS: [f32; 6] = [
    0.5, // placeholder — kind 0 never pokes
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    7.5,   // above pixel_max
    -0.25, // below pixel_min
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_tensors_classify_or_reject_but_never_hang(
        seed in 0u64..100_000,
        kind in 0usize..6,
        poke in 0usize..PIXELS,
        threat_idx in 0usize..3,
    ) {
        let server = server();
        let threat = ThreatModel::ALL[threat_idx];
        let mut rng = TensorRng::seed_from_u64(seed);
        let mut image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
        if kind != 0 {
            image.as_mut_slice()[poke] = CORRUPTIONS[kind];
        }
        match server.submit(image, threat) {
            Ok(handle) => {
                prop_assert_eq!(kind, 0, "corrupted tensors must not be admitted");
                let resolved = handle.wait_timeout(Duration::from_secs(30));
                prop_assert!(resolved.is_some(), "handle must resolve, not hang");
                prop_assert!(resolved.unwrap().is_ok(), "well-formed input classifies");
            }
            Err(ServeError::InvalidInput { .. }) => {
                prop_assert!(kind != 0, "well-formed input must be admitted");
            }
            Err(other) => panic!("expected admission or InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn wrong_ranks_are_rejected_up_front(extra in 1usize..4, seed in 0u64..1000) {
        let server = server();
        let mut rng = TensorRng::seed_from_u64(seed);
        // Rank 3 ± extra: vectors, matrices, batches, rank-5 blobs.
        let wrong: Tensor = match extra {
            1 => rng.uniform(&[3, 16], 0.0, 1.0),
            2 => rng.uniform(&[1, 3, 16, 16], 0.0, 1.0),
            _ => rng.uniform(&[1, 1, 3, 16, 16], 0.0, 1.0),
        };
        prop_assert!(matches!(
            server.submit(wrong, ThreatModel::I),
            Err(ServeError::InvalidInput { .. })
        ));
    }
}
