//! Chaos tests for the adversarial-detection triage stage
//! (`--features faults`).
//!
//! The stage-specific invariant on top of the engine-wide one: the
//! detector can *never* fail a request. A scoring panic, typed error,
//! or blown latency budget resolves to a fail-open verdict and
//! normal-path service; the request still completes (or fails for an
//! unrelated, typed reason). Zero panics escape triage.

#![cfg(feature = "faults")]

use std::time::Duration;

use fademl::{InferencePipeline, ThreatModel};
use fademl_detect::{Detector, DetectorConfig};
use fademl_filters::FilterSpec as Spec;
use fademl_nn::vgg::VggConfig;
use fademl_serve::{
    FaultPlan, InferenceServer, ResponseHandle, ServeError, ServerConfig, TriageConfig,
};
use fademl_tensor::{Tensor, TensorRng};

/// Generous bound for "resolves": far above any real processing time,
/// far below a hung test.
const RESOLVE_WITHIN: Duration = Duration::from_secs(30);

fn pipeline() -> InferencePipeline {
    let mut rng = TensorRng::seed_from_u64(1);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).unwrap();
    InferencePipeline::new(model, Spec::Lap { np: 8 }).unwrap()
}

fn images(n: usize, seed: u64) -> Vec<Tensor> {
    let mut rng = TensorRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.uniform(&[3, 16, 16], 0.0, 1.0))
        .collect()
}

fn detector(seed: u64) -> Detector {
    let config = DetectorConfig {
        trees: 16,
        subsample: 16,
        scales: 2,
        seed,
    };
    Detector::fit_images(&images(32, seed), &config).unwrap()
}

/// One worker, small batches: sequence numbers are deterministic.
fn single_worker_config() -> ServerConfig {
    ServerConfig {
        queue_capacity: 64,
        max_batch_size: 2,
        linger_us: 20_000,
        workers: 1,
        ..ServerConfig::default()
    }
}

/// Flag everything: every successfully scored request takes the
/// hardened path, maximizing triage surface under chaos.
fn flag_all() -> TriageConfig {
    TriageConfig {
        threshold: 0.0,
        ..TriageConfig::default()
    }
}

fn resolve(handle: ResponseHandle) -> Result<fademl::Verdict, ServeError> {
    handle
        .wait_timeout(RESOLVE_WITHIN)
        .expect("handle must resolve, not hang")
}

#[test]
fn detector_panic_fails_open_never_fails_the_request() {
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(10),
        flag_all(),
        FaultPlan::new().panic_on_score(2),
    )
    .unwrap();
    let imgs = images(3, 11);
    let handles: Vec<_> = imgs
        .into_iter()
        .map(|img| server.submit(img, ThreatModel::I).unwrap())
        .collect();
    let verdicts: Vec<_> = handles
        .into_iter()
        .map(|h| resolve(h).expect("fail-open must still serve"))
        .collect();
    // Scores 1 and 3 flagged → hardened; score 2 panicked → fail-open,
    // served unannotated on the normal path.
    assert!(verdicts[0].detection.expect("scored").hardened);
    assert!(verdicts[1].detection.is_none());
    assert!(verdicts[2].detection.expect("scored").hardened);
    let report = server.shutdown();
    let d = report.detection.expect("triage ran");
    assert_eq!(d.fail_open_panics, 1);
    assert_eq!(d.flagged, 2);
    assert_eq!(d.hardened_served, 2);
    assert_eq!(report.requests_completed, 3);
    assert_eq!(report.requests_failed, 0);
    // The panic was absorbed inside triage, not attributed to workers.
    assert_eq!(report.worker_panics, 0);
}

#[test]
fn blown_score_budget_fails_open_with_typed_timeout() {
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(20),
        TriageConfig {
            threshold: 0.0,
            score_budget_us: 1_000,
            ..TriageConfig::default()
        },
        FaultPlan::new().delay_score(1, Duration::from_millis(50)),
    )
    .unwrap();
    let mut imgs = images(2, 21).into_iter();
    let slow = resolve(
        server
            .submit(imgs.next().unwrap(), ThreatModel::II)
            .unwrap(),
    )
    .expect("timeout fails open, request still serves");
    assert!(slow.detection.is_none());
    let fast = resolve(
        server
            .submit(imgs.next().unwrap(), ThreatModel::II)
            .unwrap(),
    )
    .expect("unscathed request serves");
    assert!(fast.detection.expect("scored in budget").flagged);
    let report = server.shutdown();
    let d = report.detection.expect("triage ran");
    assert_eq!(d.fail_open_timeouts, 1);
    assert_eq!(d.flagged, 1);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn every_scoring_attempt_poisoned_still_serves_everything() {
    let mut plan = FaultPlan::new();
    for seq in 1..=6 {
        plan = plan.panic_on_score(seq);
    }
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(30),
        flag_all(),
        plan,
    )
    .unwrap();
    let handles: Vec<_> = images(6, 31)
        .into_iter()
        .map(|img| server.submit(img, ThreatModel::III).unwrap())
        .collect();
    for handle in handles {
        let verdict = resolve(handle).expect("total detector loss must not fail requests");
        assert!(verdict.detection.is_none());
    }
    let report = server.shutdown();
    let d = report.detection.expect("triage ran");
    assert_eq!(d.fail_open_panics, 6);
    assert_eq!(d.clean + d.flagged, 0);
    assert_eq!(d.hardened_served, 0);
    assert_eq!(report.requests_completed, 6);
    assert_eq!(report.requests_failed, 0);
}

#[test]
fn hardened_path_survives_injected_batch_panic() {
    // The batch-start panic fires while the batch holds hardened
    // requests: both subsets must resolve with the typed batch error.
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(40),
        flag_all(),
        FaultPlan::new().panic_on_batch(1),
    )
    .unwrap();
    let mut imgs = images(4, 41).into_iter();
    let h1 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    let h2 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    for handle in [h1, h2] {
        match resolve(handle) {
            Err(ServeError::BatchFailed { reason }) => {
                assert!(reason.contains("injected panic"), "reason: {reason}");
            }
            other => panic!("expected BatchFailed, got {other:?}"),
        }
    }
    // The worker survived; later flagged requests serve hardened.
    let h3 = server.submit(imgs.next().unwrap(), ThreatModel::I).unwrap();
    let verdict = resolve(h3).expect("worker recovered");
    assert!(verdict.detection.expect("scored").hardened);
    server.shutdown();
}

#[test]
fn worker_kill_with_hardened_requests_in_flight_resolves_all() {
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(50),
        flag_all(),
        FaultPlan::new().kill_worker_on_batch(1),
    )
    .unwrap();
    let handles: Vec<_> = images(6, 51)
        .into_iter()
        .map(|img| server.submit(img, ThreatModel::I).unwrap())
        .collect();
    let mut completed = 0usize;
    let mut failed = 0usize;
    for handle in handles {
        match resolve(handle) {
            Ok(_) => completed += 1,
            Err(ServeError::BatchFailed { .. }) => failed += 1,
            Err(other) => panic!("unexpected error under worker kill: {other:?}"),
        }
    }
    assert_eq!(completed + failed, 6);
    assert!(failed >= 1, "the killed batch must fail typed");
    assert!(completed >= 1, "the respawned worker must serve the rest");
    let report = server.shutdown();
    assert_eq!(report.workers_respawned, 1);
    assert_eq!(
        report.requests_completed + report.requests_failed,
        report.requests_submitted
    );
}

#[test]
fn combined_chaos_preserves_the_resolve_invariant() {
    // Score panics + batch panic + worker kill + dequeue stall, all on
    // one schedule: nothing hangs, everything resolves typed.
    let server = InferenceServer::start_with_triage_and_faults(
        pipeline(),
        single_worker_config(),
        detector(60),
        TriageConfig {
            threshold: 0.5,
            ..TriageConfig::default()
        },
        FaultPlan::new()
            .panic_on_score(2)
            .panic_on_score(5)
            .panic_on_batch(2)
            .kill_worker_on_batch(4)
            .stall_dequeue(3, Duration::from_millis(5)),
    )
    .unwrap();
    let handles: Vec<_> = images(12, 61)
        .into_iter()
        .enumerate()
        .map(|(i, img)| {
            let threat = ThreatModel::ALL[i % 3];
            server.submit(img, threat).unwrap()
        })
        .collect();
    for handle in handles {
        match resolve(handle) {
            Ok(_) => {}
            Err(
                ServeError::BatchFailed { .. }
                | ServeError::Pipeline { .. }
                | ServeError::DeadlineExceeded { .. },
            ) => {}
            Err(other) => panic!("unexpected error under chaos: {other:?}"),
        }
    }
    let report = server.shutdown();
    assert_eq!(
        report.requests_completed + report.requests_failed,
        report.requests_submitted
    );
    let d = report.detection.expect("triage ran");
    assert_eq!(d.fail_open_panics, 2);
    assert_eq!(d.clean + d.flagged, 10);
}
