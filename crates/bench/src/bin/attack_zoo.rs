//! Head-to-head comparison of the full attack library — the paper's
//! three study attacks plus every cited attack implemented as an
//! extension (C&W, DeepFool, JSMA, one-pixel) — on scenario 1
//! (stop → 60 km/h), both against the bare DNN and through a deployed
//! LAP(16) filter.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin attack_zoo
//! ```

use std::time::Instant;

use fademl::report::Table;
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{
    Attack, AttackGoal, AttackSurface, Bim, CarliniWagner, DeepFool, Fgsm, Jsma, LbfgsAttack,
    OnePixel, Zoo,
};
use fademl_filters::FilterSpec;

fn main() {
    let prepared = fademl_bench::prepare_victim();
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared
        .test
        .first_of_class(scenario.source)
        .expect("stop sign exists");
    let filter = FilterSpec::Lap { np: 16 };
    let pipeline = InferencePipeline::new(prepared.model.clone(), filter).expect("pipeline builds");

    // (label, attack, goal). DeepFool is untargeted by construction.
    let source_class = scenario.source.index();
    let attacks: Vec<(&str, Box<dyn Attack>, AttackGoal)> = vec![
        (
            "L-BFGS",
            Box::new(LbfgsAttack::new(0.02, 20).expect("valid")),
            scenario.goal(),
        ),
        (
            "FGSM",
            Box::new(Fgsm::new(0.08).expect("valid")),
            scenario.goal(),
        ),
        (
            "BIM",
            Box::new(Bim::new(0.08, 0.015, 12).expect("valid")),
            scenario.goal(),
        ),
        ("C&W", Box::new(CarliniWagner::standard()), scenario.goal()),
        (
            "DeepFool",
            Box::new(DeepFool::standard()),
            AttackGoal::Untargeted {
                source: source_class,
            },
        ),
        ("JSMA", Box::new(Jsma::standard()), scenario.goal()),
        (
            "OnePixel(k=5)",
            Box::new(OnePixel::new(5, 30, 20, 7).expect("valid")),
            scenario.goal(),
        ),
        (
            "ZOO",
            Box::new(Zoo::new(60, 48, 1e-2, 5e-2, 7).expect("valid")),
            scenario.goal(),
        ),
    ];

    let mut table = Table::new(
        format!("attack zoo — {scenario} (filter for TM-III column: {filter})"),
        vec![
            "Attack".into(),
            "Goal met (TM-I)".into(),
            "Verdict thru filter".into(),
            "L∞".into(),
            "L2".into(),
            "Queries".into(),
            "Time".into(),
        ],
    );

    for (label, attack, goal) in &attacks {
        let mut surface = AttackSurface::new(prepared.model.clone());
        let start = Instant::now();
        let adv = attack
            .run(&mut surface, &source, *goal)
            .expect("attack runs");
        let elapsed = start.elapsed();
        let filtered = pipeline
            .classify(&adv.adversarial, ThreatModel::III)
            .expect("pipeline classifies");
        table.push_row(vec![
            (*label).to_owned(),
            if adv.success_on_surface {
                format!("yes → {} ({:.0}%)", adv.predicted, adv.confidence * 100.0)
            } else {
                format!("no ({} @ {:.0}%)", adv.predicted, adv.confidence * 100.0)
            },
            format!("{} ({:.0}%)", filtered.class, filtered.confidence * 100.0),
            format!("{:.3}", adv.noise_linf()),
            format!("{:.2}", adv.noise_l2()),
            adv.queries.to_string(),
            format!("{:.0?}", elapsed),
        ]);
    }
    println!("{table}");
    println!(
        "(class {} = source \"{}\", class {} = target \"{}\")",
        scenario.source.index(),
        scenario.source.info().name,
        scenario.target.index(),
        scenario.target.info().name
    );
}
