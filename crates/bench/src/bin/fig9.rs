//! Regenerates **Fig. 9**: the FAdeML filter-aware attacks survive the
//! same LAP/LAR filters that neutralize the classical attacks in
//! Fig. 7, with a relatively higher impact on overall top-5 accuracy.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin fig9
//! ```

use fademl::experiments::{fig7, fig9};
use fademl::ThreatModel;
use fademl_filters::FilterSpec;

fn main() {
    fademl_bench::announce_compute_pool();
    let prepared = fademl_bench::prepare_victim();
    let params = fademl_bench::default_params();
    let eval_n = fademl_bench::eval_n_from_env(20);
    let filters = FilterSpec::paper_sweep();
    eprintln!(
        "[fademl] fig9: {} filters × 3 FAdeML attacks × 5 scenarios, {eval_n} images per accuracy cell",
        filters.len()
    );
    let result = fig9::run(&prepared, &params, &filters, eval_n, ThreatModel::III)
        .expect("fig9 experiment failed");

    for sid in 1..=5 {
        println!("{}", result.scenario_table(sid, &filters));
        println!("{}", result.accuracy_table(sid, &filters));
    }
    println!(
        "filtered (TM-II/III) targeted success rate of FAdeML: {:.0}%",
        result.filtered_success_rate() * 100.0
    );

    // Head-to-head with the blind attacks on the non-trivial filters
    // (the paper's Fig. 7 vs Fig. 9 contrast).
    let nontrivial: Vec<FilterSpec> = filters
        .iter()
        .copied()
        .filter(|f| *f != FilterSpec::None)
        .collect();
    let blind = fig7::run(&prepared, &params, &nontrivial, 1, ThreatModel::III)
        .expect("fig7 comparison failed");
    println!(
        "for comparison, blind classical attacks through the same filters: {:.0}%",
        blind.filtered_success_rate() * 100.0
    );
    println!("(paper: FAdeML forces misclassification even after smoothing)");
}
