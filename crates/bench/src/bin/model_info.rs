//! Prints the victim architectures (paper Fig. 4 and the experiment
//! profiles) with layer-by-layer parameter counts.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin model_info
//! ```

use fademl_data::CLASS_COUNT;
use fademl_nn::vgg::{VggConfig, VggProfile};
use fademl_tensor::TensorRng;

fn main() {
    for (label, config) in [
        (
            "Paper profile (Fig. 4: Conv1(64)…Conv5(512) + FC)",
            VggConfig::new(VggProfile::Paper, 3, 32, CLASS_COUNT),
        ),
        (
            "Compact profile (experiment default)",
            VggConfig::new(VggProfile::Compact, 3, 32, CLASS_COUNT),
        ),
        (
            "Tiny profile (unit tests)",
            VggConfig::tiny(3, 16, CLASS_COUNT),
        ),
    ] {
        let mut rng = TensorRng::seed_from_u64(0);
        let model = config.build(&mut rng).expect("profile builds");
        println!("## {label}");
        println!(
            "input: {}x{}x{}",
            config.in_channels, config.input_size, config.input_size
        );
        println!("{}", model.summary());
        println!();
    }
}
