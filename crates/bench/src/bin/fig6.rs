//! Regenerates **Fig. 6**: overall top-5 accuracy of the victim, clean
//! vs under each attack, with no pre-processing filter.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin fig6
//! FADEML_EVAL_N=100 cargo run --release -p fademl-bench --bin fig6
//! ```

use fademl::experiments::fig6;

fn main() {
    fademl_bench::announce_compute_pool();
    let prepared = fademl_bench::prepare_victim();
    let params = fademl_bench::default_params();
    let eval_n = fademl_bench::eval_n_from_env(60);
    eprintln!("[fademl] fig6: {eval_n} test images per (attack, scenario) cell");
    let result = fig6::run(&prepared, &params, eval_n).expect("fig6 experiment failed");
    println!("{}", result.table());
    println!("(paper: attacks cost up to ~10 points of top-5 accuracy)");
}
