//! Regenerates **Fig. 7**: the classical attacks are neutralized by the
//! LAP/LAR smoothing filters under Threat Models II/III, and clean
//! top-5 accuracy vs filter strength is hump-shaped.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin fig7
//! ```

use fademl::experiments::fig7;
use fademl::ThreatModel;
use fademl_filters::FilterSpec;

fn main() {
    fademl_bench::announce_compute_pool();
    let prepared = fademl_bench::prepare_victim();
    let params = fademl_bench::default_params();
    let eval_n = fademl_bench::eval_n_from_env(40);
    let filters = FilterSpec::paper_sweep();
    eprintln!(
        "[fademl] fig7: {} filters × 3 attacks × 5 scenarios, {eval_n} images per accuracy cell",
        filters.len()
    );
    let result = fig7::run(&prepared, &params, &filters, eval_n, ThreatModel::III)
        .expect("fig7 experiment failed");

    for sid in 1..=5 {
        println!("{}", result.scenario_table(sid, &filters));
        println!("{}", result.accuracy_table(sid, &filters));
    }
    println!(
        "filtered (TM-II/III) targeted success rate of the classical attacks: {:.0}%",
        result.filtered_success_rate() * 100.0
    );
    println!("(paper: the smoothing filters nullify all three attacks)");
}
