//! Verifies the paper's three Key Insights (§III-C / §IV-B)
//! quantitatively by running the Fig. 7 and Fig. 9 grids back to back
//! and deriving the insight numbers.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin insights
//! ```

use fademl::experiments::{fig7, fig9};
use fademl::insights::KeyInsights;
use fademl::ThreatModel;
use fademl_filters::FilterSpec;

fn main() {
    let prepared = fademl_bench::prepare_victim();
    let params = fademl_bench::default_params();
    let eval_n = fademl_bench::eval_n_from_env(30);
    let filters = FilterSpec::paper_sweep();

    eprintln!("[fademl] running Fig. 7 (blind attacks)…");
    let blind = fig7::run(&prepared, &params, &filters, eval_n, ThreatModel::III)
        .expect("fig7 experiment failed");
    eprintln!("[fademl] running Fig. 9 (FAdeML)…");
    let aware = fig9::run(&prepared, &params, &filters, eval_n, ThreatModel::III)
        .expect("fig9 experiment failed");

    let insights = KeyInsights::derive(&blind, &aware).expect("insights derivable");
    println!("## Key Insights (paper §III-C / §IV-B)");
    println!("{}", insights.summary());
    println!();
    println!(
        "insight 1 (filters neutralize gradient attacks): blind filtered success = {:.0}%",
        insights.blind_filtered_success * 100.0
    );
    println!(
        "insight 1b (confidence still suffers): mean confidence drop = {:+.1} points",
        insights.mean_confidence_drop * 100.0
    );
    println!(
        "insight 2 (interior accuracy optimum): LAP peaks {:?} (paper: 32), LAR peaks {:?} (paper: 3-4)",
        insights.lap_peaks, insights.lar_peaks
    );
    println!(
        "insight 3 (model the preprocessing!): FAdeML filtered success = {:.0}% — {}",
        insights.fademl_filtered_success * 100.0,
        if insights.filter_awareness_pays() {
            "filter awareness pays"
        } else {
            "NOT reproduced"
        }
    );
}
