//! Regenerates **Fig. 5**: targeted misclassification under Threat
//! Model I for L-BFGS / FGSM / BIM across all five scenarios.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin fig5
//! ```

use fademl::experiments::fig5;

fn main() {
    fademl_bench::announce_compute_pool();
    let prepared = fademl_bench::prepare_victim();
    let params = fademl_bench::default_params();
    let result = fig5::run(&prepared, &params).expect("fig5 experiment failed");
    println!("{}", result.table());
    println!(
        "TM-I targeted success rate: {:.0}% of {} (attack, scenario) cells",
        result.success_rate() * 100.0,
        result.cells.len()
    );
    println!("(paper: all 15 cells succeed with high confidence)");
}
