//! Threat Model II study: under TM-II the pipeline *re-acquires* the
//! adversarial image with fresh sensor noise, so the crafted
//! perturbation must survive a random transformation. This binary
//! compares a deterministic filter-aware attack (`FAdeML[BIM]`) against
//! an expectation-aware one (FAdeML[EOT-PGD]) under both TM-III
//! (deterministic) and TM-II (randomized) evaluation.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin tm2_eot
//! ```

use fademl::report::{pct, Table};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Bim, EotPgd, Fademl};
use fademl_data::NoiseModel;
use fademl_filters::FilterSpec;

fn main() {
    let prepared = fademl_bench::prepare_victim();
    let filter = FilterSpec::Lap { np: 8 };
    // A noticeably noisy sensor makes the TM-II/TM-III contrast visible.
    let sensor = NoiseModel {
        gaussian_std: 0.08,
        salt_pepper_prob: 0.01,
    };
    let pipeline = InferencePipeline::new(prepared.model.clone(), filter)
        .expect("pipeline builds")
        .with_acquisition_noise(sensor);

    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        (
            "FAdeML[BIM]",
            Box::new(
                Fademl::new(Box::new(Bim::new(0.12, 0.02, 12).expect("valid")), 2, 1.0)
                    .expect("valid"),
            ),
        ),
        (
            "FAdeML[EOT-PGD]",
            Box::new(
                Fademl::new(
                    Box::new(
                        EotPgd::new(0.12, 0.02, 12, sensor.gaussian_std, 4, 11).expect("valid"),
                    ),
                    2,
                    1.0,
                )
                .expect("valid"),
            ),
        ),
    ];

    let mut table = Table::new(
        format!("TM-II robustness — targeted success over 5 scenarios (filter {filter}, sensor sigma {})", sensor.gaussian_std),
        vec![
            "Attack".into(),
            "TM-III (deterministic)".into(),
            "TM-II (re-acquired, noisy)".into(),
        ],
    );

    for (label, attack) in &attacks {
        let mut tm3_hits = 0usize;
        let mut tm2_hits = 0usize;
        let scenarios = Scenario::paper_scenarios();
        for scenario in &scenarios {
            let source = prepared
                .test
                .first_of_class(scenario.source)
                .expect("scenario image");
            let mut surface = AttackSurface::with_filter(
                prepared.model.clone(),
                filter.build().expect("filter builds"),
            );
            let adv = attack
                .run(&mut surface, &source, scenario.goal())
                .expect("attack runs");
            let tm3 = pipeline
                .classify(&adv.adversarial, ThreatModel::III)
                .expect("classifies");
            if tm3.class == scenario.target.index() {
                tm3_hits += 1;
            }
            let tm2 = pipeline
                .classify(&adv.adversarial, ThreatModel::II)
                .expect("classifies");
            if tm2.class == scenario.target.index() {
                tm2_hits += 1;
            }
        }
        table.push_row(vec![
            (*label).to_owned(),
            pct(tm3_hits as f32 / scenarios.len() as f32),
            pct(tm2_hits as f32 / scenarios.len() as f32),
        ]);
    }
    println!("{table}");
    println!("(EOT marginalizes the sensor noise inside the attack loop — the standard upgrade");
    println!(" when the deployed pipeline is randomized rather than deterministic)");
}
