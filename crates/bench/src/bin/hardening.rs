//! The defense arms race, end to end — the experiment the paper's
//! conclusion calls for: does *training-time* hardening (adversarial
//! training) resist what the *inference-time* filter cannot, namely the
//! filter-aware FAdeML attack?
//!
//! Compares a plainly trained victim against an adversarially trained
//! one on clean accuracy, FGSM robust accuracy, and FAdeML-through-
//! filter success over all five scenarios.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin hardening
//! ```

use fademl::defense::{adversarial_fit, robust_accuracy, AdversarialTrainingConfig};
use fademl::report::{pct, Table};
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Bim, Fademl};
use fademl_filters::FilterSpec;
use fademl_nn::metrics::top1_accuracy;
use fademl_nn::Sequential;
use fademl_tensor::TensorRng;

fn main() {
    // Use the smoke-scale setup: adversarial training multiplies the
    // training cost by the per-batch attack, so the small victim keeps
    // this binary interactive.
    let setup = ExperimentSetup::profile(SetupProfile::Smoke);
    let prepared = setup.prepare().expect("victim setup");
    let epsilon = 0.05f32;
    eprintln!(
        "[fademl] plain victim ready; adversarially training a twin (this re-attacks every batch)…"
    );

    let mut hardened = {
        let mut rng = TensorRng::seed_from_u64(setup.seed);
        setup.vgg.build(&mut rng).expect("model builds")
    };
    adversarial_fit(
        &mut hardened,
        prepared.train.images(),
        prepared.train.labels(),
        &AdversarialTrainingConfig {
            base: setup.train.clone(),
            epsilon,
            adversarial_fraction: 0.5,
        },
    )
    .expect("adversarial training runs");

    let eval_n = fademl_bench::eval_n_from_env(60).min(prepared.test.len());
    let eval = prepared.test.take(eval_n).expect("subset");

    let fademl_success = |model: &Sequential| -> f32 {
        let filter = FilterSpec::Lap { np: 8 };
        let pipeline = InferencePipeline::new(model.clone(), filter).expect("pipeline builds");
        let mut hits = 0usize;
        let scenarios = Scenario::paper_scenarios();
        for scenario in &scenarios {
            let source = prepared
                .test
                .first_of_class(scenario.source)
                .expect("scenario image");
            let fademl = Fademl::new(
                Box::new(Bim::new(0.12, 0.02, 12).expect("valid bim")),
                2,
                1.0,
            )
            .expect("valid fademl");
            let mut surface =
                AttackSurface::with_filter(model.clone(), filter.build().expect("builds"));
            let adv = fademl
                .run(&mut surface, &source, scenario.goal())
                .expect("attack runs");
            let verdict = pipeline
                .classify(&adv.adversarial, ThreatModel::III)
                .expect("classifies");
            if verdict.class == scenario.target.index() {
                hits += 1;
            }
        }
        hits as f32 / scenarios.len() as f32
    };

    let mut table = Table::new(
        format!("training-time hardening vs attacks (FGSM ε = {epsilon}, filter LAP(8))"),
        vec![
            "Victim".into(),
            "Clean top-1".into(),
            "FGSM robust top-1".into(),
            "FAdeML success thru filter".into(),
        ],
    );
    for (label, model) in [
        ("plain", &prepared.model),
        ("adversarially trained", &hardened),
    ] {
        let clean = top1_accuracy(model, eval.images(), eval.labels()).expect("top-1");
        let robust = robust_accuracy(model, eval.images(), eval.labels(), epsilon).expect("robust");
        let fademl = fademl_success(model);
        table.push_row(vec![label.to_owned(), pct(clean), pct(robust), pct(fademl)]);
    }
    println!("{table}");
    println!("(the paper's conclusion: filters alone are not enough — this quantifies how far");
    println!(" training-time hardening closes the gap, and what it costs in clean accuracy)");
}
