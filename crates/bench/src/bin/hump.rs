//! Fine-grained filter-strength sweep — the ablation behind the paper's
//! Key Insight 2 ("top-5 accuracy increases with smoothing up to a
//! threshold, then decreases"). Sweeps LAP over np ∈ {1..=80 step} and
//! LAR over r ∈ {1..=8} on clean, sensor-noisy and attacked inputs.
//!
//! ```text
//! cargo run --release -p fademl-bench --bin hump
//! ```

use fademl::experiments::AttackParams;
use fademl::report::{pct, Table};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Bim};
use fademl_filters::FilterSpec;
use fademl_tensor::Tensor;

fn main() {
    let prepared = fademl_bench::prepare_victim();
    let eval_n = fademl_bench::eval_n_from_env(40).min(prepared.test.len());
    let clean = prepared.test.take(eval_n).expect("subset exists");

    // Attacked variant: scenario-1 BIM noise transferred to the subset
    // (the Fig. 7 accuracy-series construction).
    let params = AttackParams::default();
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared
        .test
        .first_of_class(scenario.source)
        .expect("stop sign exists");
    let mut surface = AttackSurface::new(prepared.model.clone());
    let bim = Bim::new(params.epsilon, params.bim_alpha, params.bim_iterations).expect("valid bim");
    let noise = bim
        .run(&mut surface, &source, scenario.goal())
        .expect("attack runs")
        .noise;
    let attacked_images: Vec<Tensor> = (0..clean.len())
        .map(|i| {
            clean
                .images()
                .index_batch(i)
                .and_then(|img| img.add(&noise))
                .map(|img| img.clamp(0.0, 1.0))
                .expect("perturbation applies")
        })
        .collect();
    let attacked = Tensor::stack(&attacked_images).expect("stacks");

    let lap_sweep: Vec<FilterSpec> = [1usize, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80]
        .iter()
        .map(|&np| FilterSpec::Lap { np })
        .collect();
    let lar_sweep: Vec<FilterSpec> = (1usize..=8).map(|r| FilterSpec::Lar { r }).collect();

    for (family, sweep) in [("LAP(np)", lap_sweep), ("LAR(r)", lar_sweep)] {
        let mut header = vec!["Input".to_owned(), "None".to_owned()];
        header.extend(sweep.iter().map(|f| f.to_string()));
        let mut table = Table::new(
            format!("hump sweep over {family} — top-5 accuracy, {eval_n} images, TM-III"),
            header,
        );
        for (label, images) in [("clean", clean.images()), ("BIM-attacked", &attacked)] {
            let mut row = vec![label.to_owned()];
            for spec in std::iter::once(FilterSpec::None).chain(sweep.iter().copied()) {
                let pipeline =
                    InferencePipeline::new(prepared.model.clone(), spec).expect("pipeline builds");
                let acc = pipeline
                    .top_k_accuracy(images, clean.labels(), ThreatModel::III, 5)
                    .expect("accuracy computes");
                row.push(pct(acc));
            }
            table.push_row(row);
        }
        fademl_bench::print_table(&table);
    }
    println!("(paper insight 2: accuracy rises with smoothing to an interior optimum, then falls)");
}
