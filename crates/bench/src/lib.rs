//! Shared plumbing for the FAdeML benchmark harness and the
//! figure-regeneration binaries.
//!
//! Every binary accepts the same environment knobs so runs can be
//! scaled without recompiling:
//!
//! | Variable | Meaning | Default |
//! |----------|---------|---------|
//! | `FADEML_PROFILE` | `smoke` / `standard` / `full` victim size | `standard` |
//! | `FADEML_EVAL_N` | test images per accuracy measurement | experiment-specific |
//! | `FADEML_CSV` | `1` = sweep binaries emit CSV instead of text | off |

#![forbid(unsafe_code)]

use fademl::experiments::AttackParams;
use fademl::setup::{ExperimentSetup, PreparedSetup, SetupProfile};

/// Reads the victim profile from `FADEML_PROFILE`.
pub fn profile_from_env() -> SetupProfile {
    match std::env::var("FADEML_PROFILE").as_deref() {
        Ok("smoke") => SetupProfile::Smoke,
        Ok("full") => SetupProfile::Full,
        _ => SetupProfile::Standard,
    }
}

/// `true` when `FADEML_CSV=1` — sweep binaries then print CSV (via
/// [`Table::to_csv`](fademl::report::Table::to_csv)) instead of aligned
/// text, for downstream plotting.
pub fn csv_from_env() -> bool {
    std::env::var("FADEML_CSV").as_deref() == Ok("1")
}

/// Prints a table as aligned text, or CSV when `FADEML_CSV=1`.
pub fn print_table(table: &fademl::report::Table) {
    if csv_from_env() {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

/// Reads an evaluation-subset size from `FADEML_EVAL_N`, with a default.
pub fn eval_n_from_env(default: usize) -> usize {
    std::env::var("FADEML_EVAL_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Announces the compute-thread pool the tensor kernels will use and
/// returns the count. Figure binaries call this first so every run's
/// log records how the kernels executed; the results themselves never
/// depend on it (the pool is bit-exact across thread counts).
pub fn announce_compute_pool() -> usize {
    let threads = fademl_tensor::par::threads();
    eprintln!(
        "[fademl] compute pool: {threads} thread(s) \
         (override with FADEML_THREADS; kernels are bit-exact across counts)"
    );
    threads
}

/// Prepares (or loads from cache) the victim for the selected profile,
/// printing a short banner.
///
/// # Panics
///
/// Panics with a readable message if setup fails — these are top-level
/// experiment binaries, not library code.
pub fn prepare_victim() -> PreparedSetup {
    let profile = profile_from_env();
    eprintln!("[fademl] preparing victim (profile {profile:?})…");
    let prepared = ExperimentSetup::profile(profile)
        .prepare()
        .expect("victim setup failed");
    eprintln!(
        "[fademl] victim ready: train accuracy {:.1}%, {} params{}",
        prepared.train_accuracy * 100.0,
        prepared.model.param_count(),
        if prepared.from_cache { " (cached)" } else { "" },
    );
    prepared
}

/// The attack hyper-parameters used by all figure binaries.
pub fn default_params() -> AttackParams {
    AttackParams::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_defaults() {
        // Without env vars set, the defaults apply.
        std::env::remove_var("FADEML_PROFILE");
        std::env::remove_var("FADEML_EVAL_N");
        assert_eq!(profile_from_env(), SetupProfile::Standard);
        assert_eq!(eval_n_from_env(42), 42);
    }
}
