//! Compute-kernel throughput: the cache-blocked GEMM, conv, and filter
//! kernels run serially and on the `fademl_tensor::par` worker pool at
//! 1/2/4/8 threads. Shapes mirror the paper's victims (VGG-ish CIFAR
//! layer, GTSRB-ish mid layer) plus the fully-connected head.
//!
//! Unlike the criterion benches this one emits machine-readable
//! artifacts — `BENCH_kernels.json` at the repo root and
//! `results/kernels.txt` — because it is the first datapoint of the
//! bench trajectory. It also asserts that every workload's output is
//! bit-identical across thread counts before timing it, so the numbers
//! can never come from a divergent kernel.
//!
//! `cargo bench -p fademl-bench --bench kernels` — full run.
//! `cargo bench -p fademl-bench --bench kernels -- --test` — CI smoke:
//! one iteration per cell, artifacts not written.

use std::hint::black_box;
use std::time::Instant;

use fademl_filters::FilterSpec;
use fademl_tensor::plan::alloc;
use fademl_tensor::{conv2d, conv2d_backward, par, ConvSpec, TensorRng};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A named kernel workload returning its full output buffer (flattened)
/// so cross-thread bit-identity can be checked on everything computed.
struct Workload {
    name: &'static str,
    run: Box<dyn Fn() -> Vec<f32>>,
}

fn workloads() -> Vec<Workload> {
    let mut rng = TensorRng::seed_from_u64(42);

    // Fully-connected head: activations [128, 256] × weights [256, 1024].
    let a = rng.uniform(&[128, 256], -1.0, 1.0);
    let b = rng.uniform(&[256, 1024], -1.0, 1.0);

    // VGG-shaped CIFAR entry layer: [8, 3, 32, 32], C3→F32, k3 s1 p1.
    let vgg_spec = ConvSpec::new(3, 32, 3, 1, 1);
    let vgg_x = rng.uniform(&[8, 3, 32, 32], 0.0, 1.0);
    let vgg_w = rng.uniform(&[32, 3, 3, 3], -0.5, 0.5);
    let vgg_b = rng.uniform(&[32], -0.1, 0.1);
    let vgg_g = rng.uniform(&[8, 32, 32, 32], -1.0, 1.0);

    // GTSRB-shaped mid layer: [8, 32, 16, 16], C32→F64, k3 s1 p1.
    let gt_spec = ConvSpec::new(32, 64, 3, 1, 1);
    let gt_x = rng.uniform(&[8, 32, 16, 16], 0.0, 1.0);
    let gt_w = rng.uniform(&[64, 32, 3, 3], -0.5, 0.5);
    let gt_b = rng.uniform(&[64], -0.1, 0.1);

    // Pre-processing filters from the paper sweep on a serving batch.
    let batch = rng.uniform(&[8, 3, 32, 32], 0.0, 1.0);
    let grad = rng.uniform(&[8, 3, 32, 32], -1.0, 1.0);
    let lap = FilterSpec::Lap { np: 8 }.build().expect("LAP(8) builds");
    let lar = FilterSpec::Lar { r: 2 }.build().expect("LAR(2) builds");

    vec![
        Workload {
            name: "matmul_128x256x1024",
            run: Box::new(move || a.matmul(&b).expect("matmul").into_vec()),
        },
        Workload {
            name: "conv2d_vgg_8x3x32x32_f32",
            run: {
                let (x, w, bias) = (vgg_x.clone(), vgg_w.clone(), vgg_b.clone());
                Box::new(move || conv2d(&x, &w, &bias, &vgg_spec).expect("conv2d").into_vec())
            },
        },
        Workload {
            name: "conv2d_backward_vgg",
            run: {
                let (x, w, g) = (vgg_x, vgg_w, vgg_g);
                Box::new(move || {
                    let grads = conv2d_backward(&x, &w, &g, &vgg_spec).expect("conv2d_backward");
                    let mut out = grads.input.into_vec();
                    out.extend(grads.weight.into_vec());
                    out.extend(grads.bias.into_vec());
                    out
                })
            },
        },
        Workload {
            name: "conv2d_gtsrb_8x32x16x16_f64",
            run: Box::new(move || {
                conv2d(&gt_x, &gt_w, &gt_b, &gt_spec)
                    .expect("conv2d")
                    .into_vec()
            }),
        },
        Workload {
            name: "filter_lap8_8x3x32x32",
            run: {
                let x = batch.clone();
                Box::new(move || lap.apply(&x).expect("LAP apply").into_vec())
            },
        },
        Workload {
            name: "filter_lar2_backward_8x3x32x32",
            run: Box::new(move || {
                lar.backward(&batch, &grad)
                    .expect("LAR backward")
                    .into_vec()
            }),
        },
    ]
}

/// One timed cell: median over `samples` of (elapsed / iters).
fn time_ns(run: &dyn Fn() -> Vec<f32>, iters: usize, samples: usize) -> u128 {
    let mut per_iter: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(run());
            }
            start.elapsed().as_nanos() / iters as u128
        })
        .collect();
    per_iter.sort_unstable();
    per_iter[per_iter.len() / 2]
}

/// Picks an iteration count so one sample lasts roughly `target_ms`.
fn calibrate(run: &dyn Fn() -> Vec<f32>, target_ms: u128) -> usize {
    let start = Instant::now();
    black_box(run());
    let one = start.elapsed().as_nanos().max(1);
    ((target_ms * 1_000_000) / one).clamp(1, 1_000) as usize
}

struct Cell {
    workload: &'static str,
    threads: usize,
    ns_per_iter: u128,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "[kernels] host cores: {host_cores}, mode: {}",
        if quick { "smoke (--test)" } else { "full" }
    );

    let jobs = workloads();
    let mut cells: Vec<Cell> = Vec::new();

    // Scratch-arena gate: with the pool serial, one warm call per
    // workload must lease every scratch buffer from the arena without
    // growing it — the steady-state zero-allocation contract. Runs in
    // both modes so the CI smoke (`--test`) enforces it on every push.
    par::set_threads(1);
    for job in &jobs {
        black_box((job.run)());
        let before = alloc::stats();
        black_box((job.run)());
        let after = alloc::stats();
        assert_eq!(
            after.grows - before.grows,
            0,
            "{}: warm serial call grew a scratch buffer (arena disengaged?)",
            job.name
        );
    }
    let arena = alloc::stats();
    assert!(
        arena.hits > 0,
        "no arena hits across all workloads — scratch arena is not engaged"
    );
    eprintln!(
        "[kernels] arena: {} acquires, {} hits, {} grows, {} evictions (warm serial grows: 0)",
        arena.acquires, arena.hits, arena.grows, arena.evictions
    );

    for job in &jobs {
        // Bit-identity gate: the t=1 output is the reference; every other
        // thread count must reproduce it exactly before it gets timed.
        par::set_threads(1);
        let reference: Vec<u32> = (job.run)().iter().map(|v| v.to_bits()).collect();

        for &t in &THREAD_SWEEP {
            par::set_threads(t);
            let got: Vec<u32> = (job.run)().iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got, reference,
                "{} diverged from the serial reference at {t} threads",
                job.name
            );
            let (iters, samples) = if quick {
                (1, 1)
            } else {
                (calibrate(&*job.run, 40), 5)
            };
            let ns = time_ns(&*job.run, iters, samples);
            eprintln!("[kernels] {:<34} t={t}  {ns:>12} ns/iter", job.name);
            cells.push(Cell {
                workload: job.name,
                threads: t,
                ns_per_iter: ns,
            });
        }
    }
    par::set_threads(1);

    if quick {
        eprintln!("[kernels] smoke mode: artifacts not written");
        return;
    }

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let json_path = format!("{root}/BENCH_kernels.json");
    let txt_path = format!("{root}/results/kernels.txt");

    let baseline = |name: &str| {
        cells
            .iter()
            .find(|c| c.workload == name && c.threads == 1)
            .map_or(0, |c| c.ns_per_iter)
    };

    let mut json = String::from("{\n  \"bench\": \"kernels\",\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(
        "  \"note\": \"pool is bit-exact across thread counts; speedups bounded by host_cores\",\n",
    );
    let final_arena = alloc::stats();
    json.push_str(&format!(
        "  \"arena\": {{\"acquires\": {}, \"hits\": {}, \"grows\": {}, \"evictions\": {}, \"warm_serial_grows\": 0}},\n",
        final_arena.acquires, final_arena.hits, final_arena.grows, final_arena.evictions
    ));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let speedup = baseline(c.workload) as f64 / c.ns_per_iter.max(1) as f64;
        json.push_str(&format!(
            "    {{\"workload\": \"{}\", \"threads\": {}, \"ns_per_iter\": {}, \"speedup_vs_serial\": {:.3}}}{}\n",
            c.workload,
            c.threads,
            c.ns_per_iter,
            speedup,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let mut txt = String::new();
    txt.push_str(&format!(
        "kernel throughput (ns/iter, median of 5) — host cores: {host_cores}\n"
    ));
    txt.push_str(&format!(
        "{:<34} {:>12} {:>12} {:>12} {:>12}\n",
        "workload", "t=1", "t=2", "t=4", "t=8"
    ));
    for job in &jobs {
        txt.push_str(&format!("{:<34}", job.name));
        for &t in &THREAD_SWEEP {
            let ns = cells
                .iter()
                .find(|c| c.workload == job.name && c.threads == t)
                .map_or(0, |c| c.ns_per_iter);
            txt.push_str(&format!(" {ns:>12}"));
        }
        txt.push('\n');
    }
    txt.push_str(&format!(
        "\nspeedup vs t=1 (bit-identical outputs asserted per cell)\n{:<34} {:>12} {:>12} {:>12} {:>12}\n",
        "workload", "t=1", "t=2", "t=4", "t=8"
    ));
    for job in &jobs {
        txt.push_str(&format!("{:<34}", job.name));
        let base = baseline(job.name);
        for &t in &THREAD_SWEEP {
            let ns = cells
                .iter()
                .find(|c| c.workload == job.name && c.threads == t)
                .map_or(1, |c| c.ns_per_iter);
            txt.push_str(&format!(" {:>11.2}x", base as f64 / ns.max(1) as f64));
        }
        txt.push('\n');
    }

    std::fs::write(&json_path, json).expect("write BENCH_kernels.json");
    std::fs::write(&txt_path, txt).expect("write results/kernels.txt");
    eprintln!("[kernels] wrote {json_path} and {txt_path}");
}
