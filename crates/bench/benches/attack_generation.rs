//! Attack-generation cost (supports Fig. 5 / E1): wall-clock to craft
//! one adversarial example per library attack, on the same victim and
//! scenario. The paper's discussion of L-BFGS's line-search cost vs
//! FGSM's single step is directly visible here.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::Scenario;
use fademl_attacks::{Attack, AttackSurface, Bim, Fgsm, LbfgsAttack};

fn bench_attacks(c: &mut Criterion) {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared
        .test
        .first_of_class(scenario.source)
        .expect("stop sign exists");

    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("fgsm", Box::new(Fgsm::new(0.08).expect("valid eps"))),
        (
            "bim_12",
            Box::new(Bim::new(0.08, 0.015, 12).expect("valid bim")),
        ),
        (
            "lbfgs_20",
            Box::new(LbfgsAttack::new(0.02, 20).expect("valid lbfgs")),
        ),
    ];

    let mut group = c.benchmark_group("attack_generation");
    group.sample_size(10);
    for (label, attack) in &attacks {
        group.bench_function(*label, |b| {
            b.iter(|| {
                let mut surface = AttackSurface::new(prepared.model.clone());
                let adv = attack
                    .run(&mut surface, black_box(&source), scenario.goal())
                    .expect("attack runs");
                black_box(adv.noise_linf())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_attacks);
criterion_main!(benches);
