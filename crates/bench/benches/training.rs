//! Victim-training throughput: cost of one epoch over a small
//! SynSign-43 subset, for both optimizers. Bounds how expensive the
//! `prepare()` step of every experiment is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fademl_data::{DatasetConfig, SignDataset};
use fademl_nn::vgg::VggConfig;
use fademl_nn::{OptimizerKind, TrainConfig, Trainer};
use fademl_tensor::TensorRng;

fn bench_training(c: &mut Criterion) {
    let dataset = SignDataset::generate(&DatasetConfig {
        samples_per_class: 2,
        image_size: 16,
        seed: 1,
        ..DatasetConfig::default()
    })
    .expect("dataset generates");

    let mut group = c.benchmark_group("train_one_epoch_86_images");
    group.sample_size(10);
    for (label, optimizer) in [
        ("adam", OptimizerKind::Adam { lr: 1e-3 }),
        ("sgd_momentum", OptimizerKind::SgdMomentum { lr: 0.01 }),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &optimizer,
            |b, &optimizer| {
                b.iter(|| {
                    let mut rng = TensorRng::seed_from_u64(0);
                    let mut model = VggConfig::tiny(3, 16, 43)
                        .build(&mut rng)
                        .expect("model builds");
                    let mut trainer = Trainer::new(TrainConfig {
                        epochs: 1,
                        batch_size: 32,
                        optimizer,
                        ..TrainConfig::default()
                    });
                    black_box(
                        trainer
                            .fit(&mut model, dataset.images(), dataset.labels())
                            .expect("training runs"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
