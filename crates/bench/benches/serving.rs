//! Serving-path throughput: the dynamic-batching engine's raison
//! d'être is that one batched forward beats N single-image forwards.
//! Three rungs, all measured in images/second:
//!
//! 1. `classify_loop`  — the pre-serving baseline: call
//!    [`InferencePipeline::classify`] once per image.
//! 2. `classify_batch` — the batched pipeline path on a pre-stacked
//!    `[N, C, H, W]` tensor (what a server worker executes per batch).
//! 3. `server_end_to_end` — submit → batcher → worker → response for a
//!    burst of images through the full [`InferenceServer`].

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_serve::{InferenceServer, ServerConfig};
use fademl_tensor::Tensor;

fn bench_serving(c: &mut Criterion) {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 32 })
        .expect("pipeline builds");
    let threat = ThreatModel::III;

    let mut group = c.benchmark_group("serving_throughput");
    for batch in [1usize, 8, 32] {
        let images: Vec<Tensor> = (0..batch)
            .map(|i| {
                prepared
                    .test
                    .sample(i % prepared.test.len())
                    .expect("sample")
                    .0
            })
            .collect();
        let stacked = Tensor::stack(&images).expect("stacks");
        group.throughput(Throughput::Elements(batch as u64));

        group.bench_with_input(
            BenchmarkId::new("classify_loop", batch),
            &images,
            |b, images| {
                b.iter(|| {
                    for image in images {
                        black_box(
                            pipeline
                                .classify(black_box(image), threat)
                                .expect("classifies"),
                        );
                    }
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("classify_batch", batch),
            &stacked,
            |b, stacked| {
                b.iter(|| {
                    black_box(
                        pipeline
                            .classify_batch(black_box(stacked), threat)
                            .expect("classifies"),
                    )
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("server_end_to_end", batch),
            &images,
            |b, images| {
                let config = ServerConfig {
                    queue_capacity: 256,
                    max_batch_size: batch.max(2),
                    linger_us: 200,
                    workers: 1,
                    ..ServerConfig::default()
                };
                let server =
                    InferenceServer::start(pipeline.clone(), config).expect("server starts");
                b.iter(|| {
                    let handles: Vec<_> = images
                        .iter()
                        .map(|image| {
                            server
                                .submit(black_box(image.clone()), threat)
                                .expect("queue sized for burst")
                        })
                        .collect();
                    for handle in handles {
                        black_box(handle.wait().expect("worker answers"));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
