//! FAdeML crafting cost and ablations (supports Fig. 9 / E4):
//!
//! - blind vs filter-aware crafting of the same inner attack (the
//!   overhead FAdeML pays for modelling the filter);
//! - the η (noise-scale) ablation from DESIGN.md §7;
//! - the refinement-round ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::Scenario;
use fademl_attacks::{Attack, AttackSurface, Bim, Fademl};
use fademl_filters::FilterSpec;

fn bench_fademl(c: &mut Criterion) {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared
        .test
        .first_of_class(scenario.source)
        .expect("stop sign exists");
    let filter = FilterSpec::Lap { np: 8 };
    let inner = || Bim::new(0.08, 0.015, 8).expect("valid bim");

    let mut group = c.benchmark_group("crafting_mode");
    group.sample_size(10);
    group.bench_function("blind_bim", |b| {
        b.iter(|| {
            let mut surface = AttackSurface::new(prepared.model.clone());
            black_box(
                inner()
                    .run(&mut surface, black_box(&source), scenario.goal())
                    .expect("attack runs"),
            )
        })
    });
    group.bench_function("fademl_bim", |b| {
        b.iter(|| {
            let mut surface = AttackSurface::with_filter(
                prepared.model.clone(),
                filter.build().expect("filter builds"),
            );
            let fademl = Fademl::new(Box::new(inner()), 2, 1.0).expect("valid fademl");
            black_box(
                fademl
                    .run(&mut surface, black_box(&source), scenario.goal())
                    .expect("attack runs"),
            )
        })
    });
    group.finish();

    let mut eta_group = c.benchmark_group("fademl_eta_ablation");
    eta_group.sample_size(10);
    for eta in [0.5f32, 0.75, 1.0] {
        eta_group.bench_with_input(BenchmarkId::from_parameter(eta), &eta, |b, &eta| {
            b.iter(|| {
                let mut surface = AttackSurface::with_filter(
                    prepared.model.clone(),
                    filter.build().expect("filter builds"),
                );
                let fademl = Fademl::new(Box::new(inner()), 2, eta).expect("valid fademl");
                black_box(
                    fademl
                        .run(&mut surface, black_box(&source), scenario.goal())
                        .expect("attack runs"),
                )
            })
        });
    }
    eta_group.finish();

    let mut rounds_group = c.benchmark_group("fademl_rounds_ablation");
    rounds_group.sample_size(10);
    for rounds in [1usize, 2, 3] {
        rounds_group.bench_with_input(
            BenchmarkId::from_parameter(rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut surface = AttackSurface::with_filter(
                        prepared.model.clone(),
                        filter.build().expect("filter builds"),
                    );
                    let fademl = Fademl::new(Box::new(inner()), rounds, 1.0).expect("valid fademl");
                    black_box(
                        fademl
                            .run(&mut surface, black_box(&source), scenario.goal())
                            .expect("attack runs"),
                    )
                })
            },
        );
    }
    rounds_group.finish();
}

criterion_group!(benches, bench_fademl);
criterion_main!(benches);
