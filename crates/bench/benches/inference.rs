//! Deployed-pipeline inference latency (supports Figs. 6/7 accuracy
//! sweeps): single-image classification under each threat model, and
//! raw model forward throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;

fn bench_inference(c: &mut Criterion) {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let image = prepared.test.sample(0).expect("dataset non-empty").0;
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 32 })
        .expect("pipeline builds");

    let mut group = c.benchmark_group("pipeline_classify");
    for threat in ThreatModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(threat),
            &threat,
            |b, &threat| {
                b.iter(|| {
                    black_box(
                        pipeline
                            .classify(black_box(&image), threat)
                            .expect("classifies"),
                    )
                })
            },
        );
    }
    group.finish();

    let mut forward = c.benchmark_group("model_forward");
    for batch in [1usize, 8, 32] {
        let images: Vec<_> = (0..batch)
            .map(|i| {
                prepared
                    .test
                    .sample(i % prepared.test.len())
                    .expect("sample")
                    .0
            })
            .collect();
        let stacked = fademl_tensor::Tensor::stack(&images).expect("stacks");
        forward.bench_with_input(BenchmarkId::from_parameter(batch), &stacked, |b, x| {
            b.iter(|| black_box(prepared.model.forward(black_box(x)).expect("forward")))
        });
    }
    forward.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
