//! Network serving throughput: loopback TCP through the full
//! `fademl-net` stack — wire codec, replica router, batching replicas —
//! swept over client counts. Emits `BENCH_serving.json` at the repo
//! root with throughput and latency percentiles per client count.
//!
//! `cargo bench -p fademl-bench --bench net_serving` — full run.
//! `cargo bench -p fademl-bench --bench net_serving -- --test` — CI
//! smoke: a handful of requests per client; the JSON is still written
//! (tagged `"mode": "smoke"`) so the artifact pipeline is exercised.

use std::time::{Duration, Instant};

use fademl::{InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_net::{NetClient, NetConfig, NetServer, RouterConfig};
use fademl_nn::vgg::VggConfig;
use fademl_serve::ServerConfig;
use fademl_tensor::TensorRng;

const CLIENT_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn pipeline() -> InferencePipeline {
    // Random weights: the bench measures the serving path, not accuracy.
    let mut rng = TensorRng::seed_from_u64(42);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).expect("model");
    InferencePipeline::new(model, FilterSpec::Lap { np: 8 }).expect("pipeline")
}

struct Cell {
    clients: usize,
    requests: u64,
    elapsed_ms: u128,
    throughput_rps: f64,
    p50_us: u128,
    p90_us: u128,
    p99_us: u128,
    max_us: u128,
}

fn percentile(sorted: &[u128], p: usize) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Runs `clients` loopback clients against a fresh 2-replica server and
/// returns the merged latency distribution.
fn run_cell(clients: usize, quick: bool) -> Cell {
    let config = RouterConfig {
        replicas: 2,
        replica: ServerConfig {
            queue_capacity: 256,
            max_batch_size: 8,
            linger_us: 500,
            workers: 2,
            ..ServerConfig::default()
        },
        ..RouterConfig::default()
    };
    let server = NetServer::start(pipeline(), config, NetConfig::default()).expect("server");
    let addr = server.local_addr();

    // Smoke: fixed request count. Full: fixed wall-clock per client.
    let per_client_requests = if quick { 10 } else { u64::MAX };
    let deadline = if quick {
        Duration::from_secs(3600)
    } else {
        Duration::from_millis(1_500)
    };

    let started = Instant::now();
    let mut workers = Vec::new();
    for w in 0..clients as u64 {
        workers.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr).expect("connect");
            let mut rng = TensorRng::seed_from_u64(1_000 + w);
            let begun = Instant::now();
            let mut latencies_us: Vec<u128> = Vec::new();
            let mut i = 0u64;
            while i < per_client_requests && begun.elapsed() < deadline {
                let image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
                let sent = Instant::now();
                client
                    .classify(&image, ThreatModel::ALL[(i % 3) as usize])
                    .expect("classifies");
                latencies_us.push(sent.elapsed().as_micros());
                i += 1;
            }
            client.goodbye();
            latencies_us
        }));
    }
    let mut latencies: Vec<u128> = Vec::new();
    for handle in workers {
        latencies.extend(handle.join().expect("client thread"));
    }
    let elapsed = started.elapsed();
    let report = server.shutdown();
    assert_eq!(
        report.serving.requests_failed, 0,
        "bench load must serve cleanly"
    );

    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    Cell {
        clients,
        requests,
        elapsed_ms: elapsed.as_millis(),
        throughput_rps: requests as f64 / elapsed.as_secs_f64(),
        p50_us: percentile(&latencies, 50),
        p90_us: percentile(&latencies, 90),
        p99_us: percentile(&latencies, 99),
        max_us: latencies.last().copied().unwrap_or(0),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "[net_serving] host cores: {host_cores}, mode: {}",
        if quick { "smoke (--test)" } else { "full" }
    );

    let cells: Vec<Cell> = CLIENT_SWEEP
        .iter()
        .map(|&clients| {
            let cell = run_cell(clients, quick);
            eprintln!(
                "[net_serving] clients={clients}  {:>7.0} req/s  p50 {:>6} µs  p99 {:>6} µs  ({} requests)",
                cell.throughput_rps, cell.p50_us, cell.p99_us, cell.requests
            );
            cell
        })
        .collect();

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let json_path = format!("{root}/BENCH_serving.json");
    let mut json = String::from("{\n  \"bench\": \"net_serving\",\n");
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "smoke" } else { "full" }
    ));
    json.push_str(
        "  \"note\": \"loopback TCP through wire codec + 2-replica router; latency is \
         client-observed round trip\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"elapsed_ms\": {}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \
             \"max_us\": {}}}{}\n",
            c.clients,
            c.requests,
            c.elapsed_ms,
            c.throughput_rps,
            c.p50_us,
            c.p90_us,
            c.p99_us,
            c.max_us,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write BENCH_serving.json");
    eprintln!("[net_serving] wrote {json_path}");
}
