//! Detect-under-attack serving bench: the adversarial-triage stage
//! measured end to end. Three artifacts per run:
//!
//! 1. `BENCH_detection.json` at the repo root — a **trajectory** of
//!    runs. Each run appends one entry carrying the static
//!    detect-under-attack AUC, the static-vs-adaptive comparison under
//!    drift (AUCs, hardened budget adherence, refit accounting), and
//!    the live triaged server's economics. The newest 20 entries are
//!    kept, so the file shows how detection quality moves across PRs
//!    instead of a single snapshot.
//! 2. `results/detection_roc.txt` — the full ROC sweep plus the chosen
//!    operating point.
//! 3. A stage ledger exercising the resumable experiment paths.
//!
//! `cargo bench -p fademl-bench --bench detection` — full run.
//! `cargo bench -p fademl-bench --bench detection -- --test` — CI
//! smoke: smaller stream and burst; an entry is still appended (tagged
//! `"mode": "smoke"`) so the artifact pipeline is exercised.

use std::time::Instant;

use fademl::experiments::{
    run_adaptive_resumable, run_detection_resumable, AdaptiveParams, AttackParams, DetectionParams,
};
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fgsm};
use fademl_data::{ClassId, DriftSpec, FrameStream, StreamConfig};
use fademl_detect::{ControllerConfig, Detector, DetectorConfig};
use fademl_filters::FilterSpec;
use fademl_serve::{InferenceServer, ServerConfig, TriageConfig};
use fademl_tensor::Tensor;

/// Trajectory entries retained in `BENCH_detection.json`.
const TRAJECTORY_CAP: usize = 20;

/// Pulls the prior trajectory entries (verbatim JSON objects) out of an
/// existing `BENCH_detection.json`. A file from the old single-snapshot
/// schema has no `"trajectory"` array and yields none — the trajectory
/// starts fresh. Our own entries never nest strings containing braces,
/// so brace counting is exact.
fn prior_entries(text: &str) -> Vec<String> {
    let Some(key) = text.find("\"trajectory\"") else {
        return Vec::new();
    };
    let tail = &text[key..];
    let Some(open) = tail.find('[') else {
        return Vec::new();
    };
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut entry_start = None;
    for (i, c) in tail[open..].char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    entry_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = entry_start.take() {
                        entries.push(tail[open..][s..=i].to_string());
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

struct ServingCell {
    requests: u64,
    adversarial_submitted: usize,
    triage_overhead_us: u64,
    score_p50_bp: u64,
    score_p99_bp: u64,
    flagged: u64,
    hardened_served: u64,
    hardened_hit_rate: f64,
    hardened_latency_p99_us: u64,
    throughput_rps: f64,
}

/// Drives a triaged server with a correlated stream, one third of it
/// carrying FGSM noise, and reads the triage economics off the
/// metrics report.
fn run_serving_cell(
    prepared: &fademl::setup::PreparedSetup,
    detector: Detector,
    threshold: f32,
    size: usize,
    burst: usize,
) -> ServingCell {
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })
        .expect("pipeline builds");
    let server = InferenceServer::start_with_triage(
        pipeline,
        ServerConfig {
            queue_capacity: 1024,
            max_batch_size: 8,
            linger_us: 500,
            workers: 2,
            ..ServerConfig::default()
        },
        detector,
        TriageConfig {
            threshold,
            ..TriageConfig::default()
        },
    )
    .expect("triaged server starts");

    let mut feed = FrameStream::new(StreamConfig {
        class: ClassId::STOP,
        image_size: size,
        seed: 0xBE7C,
        ..StreamConfig::default()
    })
    .expect("stream opens");
    let frames = feed.take_frames(burst).expect("stream renders");
    let fgsm = Fgsm::new(0.08).expect("attack builds");
    let mut surface = AttackSurface::new(prepared.model.clone());
    let goal = AttackGoal::Untargeted {
        source: ClassId::STOP.index(),
    };
    let noise = fgsm
        .run(&mut surface, &frames[0], goal)
        .expect("noise crafts")
        .noise;

    let mut adversarial_submitted = 0usize;
    let images: Vec<Tensor> = frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            if i % 3 == 2 {
                adversarial_submitted += 1;
                frame.add(&noise).expect("adds").clamp(0.0, 1.0)
            } else {
                frame.clone()
            }
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = images
        .into_iter()
        .map(|image| {
            server
                .submit(image, ThreatModel::I)
                .expect("queue sized for burst")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("worker answers");
    }
    let elapsed = started.elapsed();

    let report = server.shutdown();
    assert_eq!(report.requests_failed, 0, "bench load must serve cleanly");
    let d = report.detection.expect("triage ran");
    assert_eq!(
        d.fail_open_panics + d.fail_open_timeouts + d.fail_open_errors,
        0,
        "no fail-opens expected without injected faults"
    );
    ServingCell {
        requests: report.requests_completed,
        adversarial_submitted,
        triage_overhead_us: d.mean_score_time_us,
        score_p50_bp: d.score_p50_bp,
        score_p99_bp: d.score_p99_bp,
        flagged: d.flagged,
        hardened_served: d.hardened_served,
        hardened_hit_rate: d.hardened_served as f64 / report.requests_completed.max(1) as f64,
        hardened_latency_p99_us: d.hardened_latency_p99_us,
        throughput_rps: report.requests_completed as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    eprintln!(
        "[detection] mode: {}",
        if quick { "smoke (--test)" } else { "full" }
    );

    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let size = prepared.train.images().dims()[2];

    let params = if quick {
        DetectionParams {
            fit_frames: 48,
            segments: 6,
            frames_per_segment: 8,
            detector: DetectorConfig {
                trees: 24,
                subsample: 32,
                ..DetectorConfig::default()
            },
            ..DetectionParams::default()
        }
    } else {
        DetectionParams {
            segments: 9,
            frames_per_segment: 32,
            ..DetectionParams::default()
        }
    };
    let attack = AttackParams::default();

    // Fresh ledger each run: the bench measures, the tests prove resume.
    let ledger =
        std::env::temp_dir().join(format!("fademl_bench_detection_{}.fjl", std::process::id()));
    let _ = std::fs::remove_file(&ledger);
    let sweep_started = Instant::now();
    let report =
        run_detection_resumable(&prepared, &params, &attack, &ledger).expect("detection sweep");
    let sweep_ms = sweep_started.elapsed().as_millis();
    let _ = std::fs::remove_file(&ledger);
    let result = &report.result;
    assert!(
        result.auc > 0.5,
        "detector must beat chance on the attacked stream, got AUC {}",
        result.auc
    );
    eprintln!(
        "[detection] AUC {:.3} over {} clean + {} adversarial frames ({} stages, {} ms)",
        result.auc, result.clean_frames, result.adversarial_frames, report.stages_total, sweep_ms,
    );

    // Operating point: the Youden-optimal threshold from the sweep,
    // clamped into the triage config's domain.
    let threshold = result
        .roc
        .iter()
        .filter(|p| p.threshold.is_finite())
        .max_by(|a, b| {
            (a.tpr - a.fpr)
                .partial_cmp(&(b.tpr - b.fpr))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map_or(0.6, |p| p.threshold.clamp(0.0, 1.0));
    eprintln!("[detection] operating threshold {threshold:.4}");

    // A detector fitted the same way the sweep's was, for the live cell.
    let mut feed = FrameStream::new(StreamConfig {
        class: ClassId::STOP,
        image_size: size,
        seed: params.stream_seed,
        ..StreamConfig::default()
    })
    .expect("stream opens");
    let clean = feed.take_frames(params.fit_frames).expect("stream renders");
    let detector = Detector::fit_images(&clean, &params.detector).expect("detector fits");

    let burst = if quick { 60 } else { 300 };
    let cell = run_serving_cell(&prepared, detector, threshold, size, burst);
    eprintln!(
        "[detection] {} requests: triage overhead {} µs/image, {} flagged, hardened hit rate {:.2}, {:.0} req/s",
        cell.requests, cell.triage_overhead_us, cell.flagged, cell.hardened_hit_rate, cell.throughput_rps,
    );

    // Static vs adaptive under drift: the same stream now darkens and
    // gets noisier mid-sweep, with attack bursts landing post-drift.
    let adaptive_params = if quick {
        // The core crate's seeded-regression configuration: small and
        // deterministic, with a demonstrated adaptive-over-static win.
        AdaptiveParams {
            fit_frames: 48,
            segments: 6,
            frames_per_segment: 24,
            burst_from: 3,
            detector: DetectorConfig {
                trees: 16,
                subsample: 16,
                scales: 2,
                seed: 9,
            },
            controller: ControllerConfig {
                budget: 0.1,
                step: 0.05,
                floor: 0.3,
                ceiling: 0.95,
                window: 12,
                ..ControllerConfig::default()
            },
            initial_threshold: 0.52,
            reservoir_capacity: 96,
            reservoir_seed: 0x5EED,
            min_refit_samples: 24,
            auc_margin: 0.1,
            holdout_cap: 8,
            drift: DriftSpec {
                at_frame: 1,
                ramp_frames: 2,
                brightness_shift: -0.35,
                noise_gain: 2.5,
            },
            ..AdaptiveParams::default()
        }
    } else {
        AdaptiveParams {
            controller: ControllerConfig {
                budget: 0.1,
                step: 0.05,
                floor: 0.3,
                window: 16,
                ..ControllerConfig::default()
            },
            ..AdaptiveParams::default()
        }
    };
    // The smoke's tiny segments need a stronger burst for a stable
    // above-chance signal; the full run keeps the shared parameters.
    let adaptive_attack = if quick {
        AttackParams {
            epsilon: 0.15,
            fademl_rounds: 1,
            ..attack
        }
    } else {
        attack
    };
    let adaptive_ledger =
        std::env::temp_dir().join(format!("fademl_bench_adaptive_{}.fjl", std::process::id()));
    let _ = std::fs::remove_file(&adaptive_ledger);
    let adaptive_started = Instant::now();
    let adaptive = run_adaptive_resumable(
        &prepared,
        &adaptive_params,
        &adaptive_attack,
        &adaptive_ledger,
    )
    .expect("adaptive sweep")
    .result;
    let adaptive_ms = adaptive_started.elapsed().as_millis();
    let _ = std::fs::remove_file(&adaptive_ledger);
    assert!(
        adaptive.adaptive_auc > 0.5,
        "adaptive arm must beat chance under drift, got AUC {}",
        adaptive.adaptive_auc
    );
    assert!(
        adaptive.adaptive_auc >= adaptive.static_auc,
        "refitting must not lose to the static detector it replaces: {} vs {}",
        adaptive.adaptive_auc,
        adaptive.static_auc
    );
    eprintln!(
        "[detection] drift sweep: static AUC {:.3} vs adaptive AUC {:.3}; clean hardened load {:.3} (budget {:.2}); {} refits swapped / {} rejected ({} ms)",
        adaptive.static_auc,
        adaptive.adaptive_auc,
        adaptive.adaptive_clean_flagged_frac,
        adaptive.budget,
        adaptive.refits.swapped,
        adaptive.refits.rejected,
        adaptive_ms,
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    let mut roc_txt =
        String::from("Detection ROC — triage isolation score vs FGSM/FAdeML-mixed frame stream\n");
    roc_txt.push_str(&format!(
        "AUC {:.4} | {} clean frames (mean score {:.4}) | {} adversarial frames (mean score {:.4})\n",
        result.auc,
        result.clean_frames,
        result.mean_clean_score,
        result.adversarial_frames,
        result.mean_adversarial_score,
    ));
    roc_txt.push_str(&format!("operating threshold (Youden): {threshold:.4}\n\n"));
    roc_txt.push_str("threshold     tpr     fpr\n");
    for point in &result.roc {
        roc_txt.push_str(&format!(
            "{:>9.4}  {:>6.3}  {:>6.3}\n",
            point.threshold.min(9.9999),
            point.tpr,
            point.fpr
        ));
    }
    let roc_path = format!("{root}/results/detection_roc.txt");
    std::fs::write(&roc_path, roc_txt).expect("write detection_roc.txt");
    eprintln!("[detection] wrote {roc_path}");

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut entry = String::from("{\n");
    entry.push_str(&format!("      \"unix_time\": {unix_time},\n"));
    entry.push_str(&format!(
        "      \"mode\": \"{}\",\n",
        if quick { "smoke" } else { "full" }
    ));
    entry.push_str(&format!("      \"auc\": {:.4},\n", result.auc));
    entry.push_str(&format!(
        "      \"clean_frames\": {},\n",
        result.clean_frames
    ));
    entry.push_str(&format!(
        "      \"adversarial_frames\": {},\n",
        result.adversarial_frames
    ));
    entry.push_str(&format!(
        "      \"mean_clean_score\": {:.4},\n",
        result.mean_clean_score
    ));
    entry.push_str(&format!(
        "      \"mean_adversarial_score\": {:.4},\n",
        result.mean_adversarial_score
    ));
    entry.push_str(&format!(
        "      \"sweep_stages\": {},\n",
        report.stages_total
    ));
    entry.push_str(&format!("      \"sweep_ms\": {sweep_ms},\n"));
    entry.push_str(&format!("      \"threshold\": {threshold:.4},\n"));
    entry.push_str("      \"adaptive\": {\n");
    entry.push_str(&format!(
        "        \"static_auc\": {:.4},\n",
        adaptive.static_auc
    ));
    entry.push_str(&format!(
        "        \"adaptive_auc\": {:.4},\n",
        adaptive.adaptive_auc
    ));
    entry.push_str(&format!("        \"budget\": {:.4},\n", adaptive.budget));
    entry.push_str(&format!(
        "        \"static_clean_flagged_frac\": {:.4},\n",
        adaptive.static_clean_flagged_frac
    ));
    entry.push_str(&format!(
        "        \"adaptive_clean_flagged_frac\": {:.4},\n",
        adaptive.adaptive_clean_flagged_frac
    ));
    entry.push_str(&format!(
        "        \"refits_attempted\": {},\n",
        adaptive.refits.attempted
    ));
    entry.push_str(&format!(
        "        \"refits_swapped\": {},\n",
        adaptive.refits.swapped
    ));
    entry.push_str(&format!(
        "        \"refits_rejected\": {},\n",
        adaptive.refits.rejected
    ));
    entry.push_str(&format!(
        "        \"final_generation\": {},\n",
        adaptive.final_generation
    ));
    entry.push_str(&format!(
        "        \"final_threshold\": {:.4},\n",
        adaptive.final_threshold
    ));
    entry.push_str(&format!("        \"sweep_ms\": {adaptive_ms}\n"));
    entry.push_str("      },\n");
    entry.push_str("      \"serving\": {\n");
    entry.push_str(&format!("        \"requests\": {},\n", cell.requests));
    entry.push_str(&format!(
        "        \"adversarial_submitted\": {},\n",
        cell.adversarial_submitted
    ));
    entry.push_str(&format!(
        "        \"triage_overhead_us_per_image\": {},\n",
        cell.triage_overhead_us
    ));
    entry.push_str(&format!(
        "        \"score_p50_bp\": {},\n",
        cell.score_p50_bp
    ));
    entry.push_str(&format!(
        "        \"score_p99_bp\": {},\n",
        cell.score_p99_bp
    ));
    entry.push_str(&format!("        \"flagged\": {},\n", cell.flagged));
    entry.push_str(&format!(
        "        \"hardened_served\": {},\n",
        cell.hardened_served
    ));
    entry.push_str(&format!(
        "        \"hardened_hit_rate\": {:.4},\n",
        cell.hardened_hit_rate
    ));
    entry.push_str(&format!(
        "        \"hardened_latency_p99_us\": {},\n",
        cell.hardened_latency_p99_us
    ));
    entry.push_str(&format!(
        "        \"throughput_rps\": {:.1}\n",
        cell.throughput_rps
    ));
    entry.push_str("      }\n    }");

    let json_path = format!("{root}/BENCH_detection.json");
    let mut entries = std::fs::read_to_string(&json_path)
        .map(|text| prior_entries(&text))
        .unwrap_or_default();
    entries.push(entry);
    if entries.len() > TRAJECTORY_CAP {
        entries.drain(..entries.len() - TRAJECTORY_CAP);
    }
    let mut json = String::from("{\n  \"bench\": \"detection\",\n");
    json.push_str(
        "  \"note\": \"one entry per run, newest last (cap 20): static detect-under-attack AUC, \
         static-vs-adaptive comparison under drift + attack bursts, and live triaged-server \
         economics on a 1/3-adversarial frame stream\",\n",
    );
    json.push_str("  \"trajectory\": [\n    ");
    json.push_str(&entries.join(",\n    "));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&json_path, json).expect("write BENCH_detection.json");
    eprintln!(
        "[detection] wrote {json_path} ({} trajectory entries)",
        entries.len()
    );
}
