//! Detect-under-attack serving bench: the adversarial-triage stage
//! measured end to end. Three artifacts per run:
//!
//! 1. `BENCH_detection.json` at the repo root — detection AUC over an
//!    FGSM/FAdeML-mixed frame stream, per-image triage overhead, and
//!    the hardened-path hit rate of a live triaged server.
//! 2. `results/detection_roc.txt` — the full ROC sweep plus the chosen
//!    operating point.
//! 3. A stage ledger exercising the resumable experiment path.
//!
//! `cargo bench -p fademl-bench --bench detection` — full run.
//! `cargo bench -p fademl-bench --bench detection -- --test` — CI
//! smoke: smaller stream and burst; the JSON is still written (tagged
//! `"mode": "smoke"`) so the artifact pipeline is exercised.

use std::time::Instant;

use fademl::experiments::{run_detection_resumable, AttackParams, DetectionParams};
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_attacks::{Attack, AttackGoal, AttackSurface, Fgsm};
use fademl_data::{ClassId, FrameStream, StreamConfig};
use fademl_detect::{Detector, DetectorConfig};
use fademl_filters::FilterSpec;
use fademl_serve::{InferenceServer, ServerConfig, TriageConfig};
use fademl_tensor::Tensor;

struct ServingCell {
    requests: u64,
    adversarial_submitted: usize,
    triage_overhead_us: u64,
    score_p50_bp: u64,
    score_p99_bp: u64,
    flagged: u64,
    hardened_served: u64,
    hardened_hit_rate: f64,
    hardened_latency_p99_us: u64,
    throughput_rps: f64,
}

/// Drives a triaged server with a correlated stream, one third of it
/// carrying FGSM noise, and reads the triage economics off the
/// metrics report.
fn run_serving_cell(
    prepared: &fademl::setup::PreparedSetup,
    detector: Detector,
    threshold: f32,
    size: usize,
    burst: usize,
) -> ServingCell {
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })
        .expect("pipeline builds");
    let server = InferenceServer::start_with_triage(
        pipeline,
        ServerConfig {
            queue_capacity: 1024,
            max_batch_size: 8,
            linger_us: 500,
            workers: 2,
            ..ServerConfig::default()
        },
        detector,
        TriageConfig {
            threshold,
            ..TriageConfig::default()
        },
    )
    .expect("triaged server starts");

    let mut feed = FrameStream::new(StreamConfig {
        class: ClassId::STOP,
        image_size: size,
        seed: 0xBE7C,
        ..StreamConfig::default()
    })
    .expect("stream opens");
    let frames = feed.take_frames(burst).expect("stream renders");
    let fgsm = Fgsm::new(0.08).expect("attack builds");
    let mut surface = AttackSurface::new(prepared.model.clone());
    let goal = AttackGoal::Untargeted {
        source: ClassId::STOP.index(),
    };
    let noise = fgsm
        .run(&mut surface, &frames[0], goal)
        .expect("noise crafts")
        .noise;

    let mut adversarial_submitted = 0usize;
    let images: Vec<Tensor> = frames
        .iter()
        .enumerate()
        .map(|(i, frame)| {
            if i % 3 == 2 {
                adversarial_submitted += 1;
                frame.add(&noise).expect("adds").clamp(0.0, 1.0)
            } else {
                frame.clone()
            }
        })
        .collect();

    let started = Instant::now();
    let handles: Vec<_> = images
        .into_iter()
        .map(|image| {
            server
                .submit(image, ThreatModel::I)
                .expect("queue sized for burst")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("worker answers");
    }
    let elapsed = started.elapsed();

    let report = server.shutdown();
    assert_eq!(report.requests_failed, 0, "bench load must serve cleanly");
    let d = report.detection.expect("triage ran");
    assert_eq!(
        d.fail_open_panics + d.fail_open_timeouts + d.fail_open_errors,
        0,
        "no fail-opens expected without injected faults"
    );
    ServingCell {
        requests: report.requests_completed,
        adversarial_submitted,
        triage_overhead_us: d.mean_score_time_us,
        score_p50_bp: d.score_p50_bp,
        score_p99_bp: d.score_p99_bp,
        flagged: d.flagged,
        hardened_served: d.hardened_served,
        hardened_hit_rate: d.hardened_served as f64 / report.requests_completed.max(1) as f64,
        hardened_latency_p99_us: d.hardened_latency_p99_us,
        throughput_rps: report.requests_completed as f64 / elapsed.as_secs_f64(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--test");
    eprintln!(
        "[detection] mode: {}",
        if quick { "smoke (--test)" } else { "full" }
    );

    let prepared = ExperimentSetup::profile(SetupProfile::Smoke)
        .prepare()
        .expect("victim trains");
    let size = prepared.train.images().dims()[2];

    let params = if quick {
        DetectionParams {
            fit_frames: 48,
            segments: 6,
            frames_per_segment: 8,
            detector: DetectorConfig {
                trees: 24,
                subsample: 32,
                ..DetectorConfig::default()
            },
            ..DetectionParams::default()
        }
    } else {
        DetectionParams {
            segments: 9,
            frames_per_segment: 32,
            ..DetectionParams::default()
        }
    };
    let attack = AttackParams::default();

    // Fresh ledger each run: the bench measures, the tests prove resume.
    let ledger =
        std::env::temp_dir().join(format!("fademl_bench_detection_{}.fjl", std::process::id()));
    let _ = std::fs::remove_file(&ledger);
    let sweep_started = Instant::now();
    let report =
        run_detection_resumable(&prepared, &params, &attack, &ledger).expect("detection sweep");
    let sweep_ms = sweep_started.elapsed().as_millis();
    let _ = std::fs::remove_file(&ledger);
    let result = &report.result;
    assert!(
        result.auc > 0.5,
        "detector must beat chance on the attacked stream, got AUC {}",
        result.auc
    );
    eprintln!(
        "[detection] AUC {:.3} over {} clean + {} adversarial frames ({} stages, {} ms)",
        result.auc, result.clean_frames, result.adversarial_frames, report.stages_total, sweep_ms,
    );

    // Operating point: the Youden-optimal threshold from the sweep,
    // clamped into the triage config's domain.
    let threshold = result
        .roc
        .iter()
        .filter(|p| p.threshold.is_finite())
        .max_by(|a, b| {
            (a.tpr - a.fpr)
                .partial_cmp(&(b.tpr - b.fpr))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map_or(0.6, |p| p.threshold.clamp(0.0, 1.0));
    eprintln!("[detection] operating threshold {threshold:.4}");

    // A detector fitted the same way the sweep's was, for the live cell.
    let mut feed = FrameStream::new(StreamConfig {
        class: ClassId::STOP,
        image_size: size,
        seed: params.stream_seed,
        ..StreamConfig::default()
    })
    .expect("stream opens");
    let clean = feed.take_frames(params.fit_frames).expect("stream renders");
    let detector = Detector::fit_images(&clean, &params.detector).expect("detector fits");

    let burst = if quick { 60 } else { 300 };
    let cell = run_serving_cell(&prepared, detector, threshold, size, burst);
    eprintln!(
        "[detection] {} requests: triage overhead {} µs/image, {} flagged, hardened hit rate {:.2}, {:.0} req/s",
        cell.requests, cell.triage_overhead_us, cell.flagged, cell.hardened_hit_rate, cell.throughput_rps,
    );

    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

    let mut roc_txt =
        String::from("Detection ROC — triage isolation score vs FGSM/FAdeML-mixed frame stream\n");
    roc_txt.push_str(&format!(
        "AUC {:.4} | {} clean frames (mean score {:.4}) | {} adversarial frames (mean score {:.4})\n",
        result.auc,
        result.clean_frames,
        result.mean_clean_score,
        result.adversarial_frames,
        result.mean_adversarial_score,
    ));
    roc_txt.push_str(&format!("operating threshold (Youden): {threshold:.4}\n\n"));
    roc_txt.push_str("threshold     tpr     fpr\n");
    for point in &result.roc {
        roc_txt.push_str(&format!(
            "{:>9.4}  {:>6.3}  {:>6.3}\n",
            point.threshold.min(9.9999),
            point.tpr,
            point.fpr
        ));
    }
    let roc_path = format!("{root}/results/detection_roc.txt");
    std::fs::write(&roc_path, roc_txt).expect("write detection_roc.txt");
    eprintln!("[detection] wrote {roc_path}");

    let mut json = String::from("{\n  \"bench\": \"detection\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "smoke" } else { "full" }
    ));
    json.push_str(
        "  \"note\": \"AUC from the resumable detect-under-attack sweep; overhead and hit rate \
         from a live triaged server on a 1/3-adversarial frame stream\",\n",
    );
    json.push_str(&format!("  \"auc\": {:.4},\n", result.auc));
    json.push_str(&format!("  \"clean_frames\": {},\n", result.clean_frames));
    json.push_str(&format!(
        "  \"adversarial_frames\": {},\n",
        result.adversarial_frames
    ));
    json.push_str(&format!(
        "  \"mean_clean_score\": {:.4},\n",
        result.mean_clean_score
    ));
    json.push_str(&format!(
        "  \"mean_adversarial_score\": {:.4},\n",
        result.mean_adversarial_score
    ));
    json.push_str(&format!("  \"sweep_stages\": {},\n", report.stages_total));
    json.push_str(&format!("  \"sweep_ms\": {sweep_ms},\n"));
    json.push_str(&format!("  \"threshold\": {threshold:.4},\n"));
    json.push_str("  \"serving\": {\n");
    json.push_str(&format!("    \"requests\": {},\n", cell.requests));
    json.push_str(&format!(
        "    \"adversarial_submitted\": {},\n",
        cell.adversarial_submitted
    ));
    json.push_str(&format!(
        "    \"triage_overhead_us_per_image\": {},\n",
        cell.triage_overhead_us
    ));
    json.push_str(&format!("    \"score_p50_bp\": {},\n", cell.score_p50_bp));
    json.push_str(&format!("    \"score_p99_bp\": {},\n", cell.score_p99_bp));
    json.push_str(&format!("    \"flagged\": {},\n", cell.flagged));
    json.push_str(&format!(
        "    \"hardened_served\": {},\n",
        cell.hardened_served
    ));
    json.push_str(&format!(
        "    \"hardened_hit_rate\": {:.4},\n",
        cell.hardened_hit_rate
    ));
    json.push_str(&format!(
        "    \"hardened_latency_p99_us\": {},\n",
        cell.hardened_latency_p99_us
    ));
    json.push_str(&format!(
        "    \"throughput_rps\": {:.1}\n",
        cell.throughput_rps
    ));
    json.push_str("  }\n}\n");
    let json_path = format!("{root}/BENCH_detection.json");
    std::fs::write(&json_path, json).expect("write BENCH_detection.json");
    eprintln!("[detection] wrote {json_path}");
}
