//! Pre-processing filter throughput (supports Fig. 7 / E3): forward and
//! backward cost of every filter configuration in the paper's sweep.
//! The backward pass is what each FAdeML gradient step pays on top of a
//! classical attack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fademl_filters::FilterSpec;
use fademl_tensor::TensorRng;

fn bench_filters(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from_u64(0);
    let image = rng.uniform(&[3, 32, 32], 0.0, 1.0);
    let grad = rng.uniform(&[3, 32, 32], -1.0, 1.0);

    let mut forward = c.benchmark_group("filter_forward_32x32");
    for spec in FilterSpec::paper_sweep() {
        let filter = spec.build().expect("paper sweep builds");
        forward.bench_with_input(BenchmarkId::from_parameter(spec), &filter, |b, f| {
            b.iter(|| black_box(f.apply(black_box(&image)).expect("filter applies")))
        });
    }
    forward.finish();

    let mut backward = c.benchmark_group("filter_backward_32x32");
    for spec in FilterSpec::paper_sweep() {
        let filter = spec.build().expect("paper sweep builds");
        backward.bench_with_input(BenchmarkId::from_parameter(spec), &filter, |b, f| {
            b.iter(|| {
                black_box(
                    f.backward(black_box(&image), black_box(&grad))
                        .expect("filter backward"),
                )
            })
        });
    }
    backward.finish();
}

criterion_group!(benches, bench_filters);
criterion_main!(benches);
