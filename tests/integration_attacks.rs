//! Attack-efficacy integration tests on a trained victim: the paper's
//! qualitative claims, end to end.

use std::sync::OnceLock;

use fademl::setup::{ExperimentSetup, PreparedSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{
    Attack, AttackGoal, AttackSurface, Bim, Fademl, Fgsm, ImperceptibilityReport, LbfgsAttack,
};
use fademl_filters::FilterSpec;

fn prepared() -> &'static PreparedSetup {
    static CELL: OnceLock<PreparedSetup> = OnceLock::new();
    CELL.get_or_init(|| {
        ExperimentSetup::profile(SetupProfile::Smoke)
            .prepare()
            .expect("smoke setup trains")
    })
}

fn attack_library() -> Vec<(&'static str, Box<dyn Attack>)> {
    vec![
        ("L-BFGS", Box::new(LbfgsAttack::new(0.01, 20).unwrap())),
        ("FGSM", Box::new(Fgsm::new(0.12).unwrap())),
        ("BIM", Box::new(Bim::new(0.12, 0.02, 12).unwrap())),
    ]
}

#[test]
fn every_attack_flips_some_scenario_on_the_bare_dnn() {
    // The Fig. 5 claim, smoke-sized: on the unfiltered surface each
    // library attack achieves at least one targeted scenario.
    let p = prepared();
    for (label, attack) in attack_library() {
        let mut successes = 0;
        for scenario in Scenario::paper_scenarios() {
            let source = p.test.first_of_class(scenario.source).unwrap();
            let mut surface = AttackSurface::new(p.model.clone());
            let adv = attack.run(&mut surface, &source, scenario.goal()).unwrap();
            if adv.success_on_surface {
                successes += 1;
            }
        }
        assert!(
            successes >= 1,
            "{label} failed every scenario even without a filter"
        );
    }
}

#[test]
fn adversarial_noise_is_imperceptible_by_psnr() {
    let p = prepared();
    let scenario = Scenario::paper_scenarios()[0];
    let source = p.test.first_of_class(scenario.source).unwrap();
    let mut surface = AttackSurface::new(p.model.clone());
    let adv = Fgsm::new(0.05)
        .unwrap()
        .run(&mut surface, &source, scenario.goal())
        .unwrap();
    let report = ImperceptibilityReport::between(&source, &adv.adversarial).unwrap();
    assert!(report.psnr_db > 25.0, "PSNR only {:.1} dB", report.psnr_db);
    assert!(
        report.correlation > 0.9,
        "correlation only {:.3}",
        report.correlation
    );
}

#[test]
fn filters_neutralize_blind_attacks_more_than_they_pass() {
    // Fig. 7's claim: counted over attacks × scenarios, the filtered
    // pipeline flips fewer cells to the target than the bare DNN.
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 16 }).unwrap();
    let mut tm1_successes = 0;
    let mut filtered_successes = 0;
    for (_, attack) in attack_library() {
        for scenario in Scenario::paper_scenarios() {
            let source = p.test.first_of_class(scenario.source).unwrap();
            let mut surface = AttackSurface::new(p.model.clone());
            let adv = attack.run(&mut surface, &source, scenario.goal()).unwrap();
            let tm1 = pipeline.classify(&adv.adversarial, ThreatModel::I).unwrap();
            let tm3 = pipeline
                .classify(&adv.adversarial, ThreatModel::III)
                .unwrap();
            if tm1.class == scenario.target.index() {
                tm1_successes += 1;
            }
            if tm3.class == scenario.target.index() {
                filtered_successes += 1;
            }
        }
    }
    assert!(
        filtered_successes < tm1_successes,
        "filter neutralized nothing: {filtered_successes} vs {tm1_successes} TM-I successes"
    );
}

#[test]
fn fademl_survives_the_filter_better_than_blind_crafting() {
    // The paper's central quantitative claim, measured as targeted loss
    // through the deployed (filtered) pipeline, aggregated over all
    // five scenarios.
    let p = prepared();
    let filter = FilterSpec::Lap { np: 8 };
    let mut blind_total = 0.0f32;
    let mut aware_total = 0.0f32;
    for scenario in Scenario::paper_scenarios() {
        let source = p.test.first_of_class(scenario.source).unwrap();
        let goal = scenario.goal();

        let bim = Bim::new(0.12, 0.02, 10).unwrap();
        let mut bare = AttackSurface::new(p.model.clone());
        let blind = bim.run(&mut bare, &source, goal).unwrap();

        let fademl = Fademl::new(Box::new(Bim::new(0.12, 0.02, 10).unwrap()), 2, 1.0).unwrap();
        let mut aware_surface =
            AttackSurface::with_filter(p.model.clone(), filter.build().unwrap());
        let aware = fademl.run(&mut aware_surface, &source, goal).unwrap();

        let mut eval = AttackSurface::with_filter(p.model.clone(), filter.build().unwrap());
        let (blind_loss, _) = eval.loss_and_input_grad(&blind.adversarial, goal).unwrap();
        let (aware_loss, _) = eval.loss_and_input_grad(&aware.adversarial, goal).unwrap();
        blind_total += blind_loss;
        aware_total += aware_loss;
    }
    assert!(
        aware_total < blind_total,
        "FAdeML total filtered loss {aware_total:.3} not below blind {blind_total:.3}"
    );
}

#[test]
fn untargeted_attacks_reduce_accuracy() {
    // Fig. 6's mechanism, per-image: untargeted FGSM flips a decent
    // fraction of correctly-classified test images.
    let p = prepared();
    let mut surface = AttackSurface::new(p.model.clone());
    let n = 20.min(p.test.len());
    let mut correct_before = 0;
    let mut correct_after = 0;
    for i in 0..n {
        let (image, label) = p.test.sample(i).unwrap();
        let (pred, _) = surface.predict(&image).unwrap();
        if pred != label {
            continue;
        }
        correct_before += 1;
        let adv = Fgsm::new(0.12)
            .unwrap()
            .run(
                &mut surface,
                &image,
                AttackGoal::Untargeted { source: label },
            )
            .unwrap();
        let (pred_after, _) = surface.predict(&adv.adversarial).unwrap();
        if pred_after == label {
            correct_after += 1;
        }
    }
    assert!(correct_before > 0, "victim got nothing right");
    assert!(
        correct_after < correct_before,
        "untargeted FGSM flipped nothing ({correct_after}/{correct_before})"
    );
}

#[test]
fn extended_attack_library_produces_valid_examples() {
    // The paper's §II-B cites C&W ("CWI"), DeepFool, JSMA, ZOO and the
    // one-pixel attack; all are implemented as extensions. Each must
    // produce a valid image on the trained victim and move the model in
    // its goal's direction.
    use fademl_attacks::{CarliniWagner, DeepFool, Jsma, OnePixel, Zoo};
    let p = prepared();
    let scenario = Scenario::paper_scenarios()[0];
    let source = p.test.first_of_class(scenario.source).unwrap();
    let targeted = scenario.goal();
    let untargeted = AttackGoal::Untargeted {
        source: scenario.source.index(),
    };

    let attacks: Vec<(Box<dyn Attack>, AttackGoal)> = vec![
        (Box::new(CarliniWagner::standard()), targeted),
        (Box::new(DeepFool::standard()), untargeted),
        (Box::new(Jsma::standard()), targeted),
        (
            Box::new(Zoo::new(15, 24, 1e-2, 5e-2, 1).unwrap()),
            untargeted,
        ),
        (Box::new(OnePixel::new(3, 12, 6, 1).unwrap()), untargeted),
    ];
    for (attack, goal) in attacks {
        let mut surface = AttackSurface::new(p.model.clone());
        let adv = attack.run(&mut surface, &source, goal).unwrap();
        assert!(
            adv.adversarial.min().unwrap() >= 0.0
                && adv.adversarial.max().unwrap() <= 1.0
                && !adv.adversarial.has_non_finite(),
            "{} produced an invalid image",
            attack.name()
        );
    }
}

#[test]
fn gradient_free_attacks_also_die_at_the_filter() {
    // The paper's neutralization claim is about gradient noise, but the
    // deployed smoothing pipeline also blunts the sparse attacks: a
    // JSMA example that works on the bare DNN should no longer hit the
    // target through LAP(16) (isolated pixel spikes are exactly what a
    // local average erases).
    use fademl_attacks::Jsma;
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 16 }).unwrap();
    let scenario = Scenario::paper_scenarios()[0];
    let source = p.test.first_of_class(scenario.source).unwrap();
    let mut surface = AttackSurface::new(p.model.clone());
    let adv = Jsma::standard()
        .run(&mut surface, &source, scenario.goal())
        .unwrap();
    if adv.success_on_surface {
        let filtered = pipeline
            .classify(&adv.adversarial, ThreatModel::III)
            .unwrap();
        assert_ne!(
            filtered.class,
            scenario.target.index(),
            "sparse JSMA noise survived a LAP(16) average"
        );
    }
}

#[test]
fn bit_depth_squeezing_removes_small_noise() {
    // The feature-squeezing extension (paper ref [10]): quantizing to
    // 3 bits collapses an FGSM perturbation smaller than half a
    // quantization step, so the squeezed pipeline sees (almost) the
    // clean image.
    let p = prepared();
    let spec = FilterSpec::BitDepth { bits: 3 };
    let squeezer = spec.build().unwrap();
    let pipeline = InferencePipeline::new(p.model.clone(), spec).unwrap();
    let scenario = Scenario::paper_scenarios()[0];
    // Start from an image already on the 3-bit grid: every pixel then
    // sits 1/14 ≈ 0.071 away from its rounding boundary, so an ε = 0.03
    // perturbation is absorbed *exactly* by re-quantization.
    let source = squeezer
        .apply(&p.test.first_of_class(scenario.source).unwrap())
        .unwrap();
    let mut surface = AttackSurface::new(p.model.clone());
    let adv = Fgsm::new(0.03)
        .unwrap()
        .run(&mut surface, &source, scenario.goal())
        .unwrap();
    let squeezed_adv = squeezer.apply(&adv.adversarial).unwrap();
    assert_eq!(
        squeezed_adv, source,
        "3-bit squeezing failed to absorb ε=0.03 noise on a grid-aligned image"
    );
    // And therefore the pipeline verdicts coincide.
    let clean_verdict = pipeline.classify(&source, ThreatModel::III).unwrap();
    let adv_verdict = pipeline
        .classify(&adv.adversarial, ThreatModel::III)
        .unwrap();
    assert_eq!(clean_verdict.class, adv_verdict.class);
}

#[test]
fn universal_noise_erodes_accuracy_like_fig6() {
    // The universal-perturbation extension formalizes the Fig. 6
    // transfer mechanism: one shared noise pattern, optimized over a few
    // training images, erodes accuracy on the images it trained on.
    use fademl_attacks::UniversalPerturbation;
    use fademl_nn::metrics::top1_accuracy;
    use fademl_tensor::Tensor;
    let p = prepared();
    let scenario = Scenario::paper_scenarios()[0];
    let n = 10.min(p.test.len());
    let images: Vec<Tensor> = (0..n).map(|i| p.test.sample(i).unwrap().0).collect();
    let labels: Vec<usize> = (0..n).map(|i| p.test.sample(i).unwrap().1).collect();

    let mut surface = AttackSurface::new(p.model.clone());
    let up = UniversalPerturbation::new(0.1, 0.02, 3).unwrap();
    let outcome = up.craft(&mut surface, &images, scenario.goal()).unwrap();
    assert!(outcome.noise.norm_linf() <= 0.1 + 1e-6);

    let perturbed: Vec<Tensor> = images
        .iter()
        .map(|img| img.add(&outcome.noise).unwrap().clamp(0.0, 1.0))
        .collect();
    let clean_acc = top1_accuracy(&p.model, &Tensor::stack(&images).unwrap(), &labels).unwrap();
    let pert_acc = top1_accuracy(&p.model, &Tensor::stack(&perturbed).unwrap(), &labels).unwrap();
    assert!(
        pert_acc <= clean_acc,
        "universal noise should not improve accuracy: {clean_acc:.2} → {pert_acc:.2}"
    );
}

#[test]
fn attack_queries_are_accounted() {
    let p = prepared();
    let scenario = Scenario::paper_scenarios()[1];
    let source = p.test.first_of_class(scenario.source).unwrap();
    let mut surface = AttackSurface::new(p.model.clone());
    let adv = Bim::new(0.1, 0.02, 5)
        .unwrap()
        .run(&mut surface, &source, scenario.goal())
        .unwrap();
    // Each BIM iteration costs one gradient + one predict; plus the
    // final bookkeeping predict.
    assert!(adv.queries >= 2 * adv.iterations as u64);
}
