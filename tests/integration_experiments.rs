//! Smoke-scale runs of every figure experiment, asserting the *shape*
//! criteria from DESIGN.md §3.

use std::sync::OnceLock;

use fademl::experiments::{fig5, fig6, fig7, fig9, AttackParams};
use fademl::setup::{ExperimentSetup, PreparedSetup, SetupProfile};
use fademl::ThreatModel;
use fademl_filters::FilterSpec;

fn prepared() -> &'static PreparedSetup {
    static CELL: OnceLock<PreparedSetup> = OnceLock::new();
    CELL.get_or_init(|| {
        ExperimentSetup::profile(SetupProfile::Smoke)
            .prepare()
            .expect("smoke setup trains")
    })
}

fn params() -> AttackParams {
    AttackParams {
        epsilon: 0.15,
        bim_alpha: 0.03,
        bim_iterations: 6,
        lbfgs_c: 0.01,
        lbfgs_iterations: 8,
        fademl_rounds: 2,
        fademl_eta: 1.0,
    }
}

fn filters() -> Vec<FilterSpec> {
    vec![
        FilterSpec::None,
        FilterSpec::Lap { np: 8 },
        FilterSpec::Lar { r: 1 },
    ]
}

#[test]
fn e1_fig5_attacks_succeed_under_tm1() {
    let result = fig5::run(prepared(), &params()).unwrap();
    assert_eq!(result.cells.len(), 15);
    assert!(
        result.success_rate() > 0.5,
        "Fig. 5 shape violated: only {:.0}% of TM-I cells flipped",
        result.success_rate() * 100.0
    );
    assert!(!result.table().render().is_empty());
}

#[test]
fn e2_fig6_attacks_cost_accuracy() {
    // Larger eval sample + stronger budget than the other shape tests:
    // with few images the average is dominated by single borderline
    // samples that any perturbation can flip either way.
    let params = AttackParams {
        epsilon: 0.3,
        bim_alpha: 0.04,
        bim_iterations: 12,
        lbfgs_c: 0.005,
        lbfgs_iterations: 12,
        ..params()
    };
    let result = fig6::run(prepared(), &params, 60).unwrap();
    assert_eq!(result.grids.len(), 5);
    // Average attacked accuracy across all scenarios/attacks is below
    // the clean baseline (the paper reports an up-to-10-point drop).
    let clean: f32 = (1..=5)
        .filter_map(|sid| result.accuracy(sid, "No attack"))
        .sum::<f32>()
        / 5.0;
    let mut attacked = 0.0f32;
    let mut count = 0usize;
    for sid in 1..=5 {
        for a in AttackParams::labels() {
            if let Some(acc) = result.accuracy(sid, a) {
                attacked += acc;
                count += 1;
            }
        }
    }
    let attacked = attacked / count as f32;
    assert!(
        attacked < clean,
        "Fig. 6 shape violated: attacked {attacked:.2} ≥ clean {clean:.2}"
    );
}

#[test]
fn e3_fig7_filters_neutralize_blind_attacks() {
    let result = fig7::run(prepared(), &params(), &filters(), 6, ThreatModel::III).unwrap();
    // The per-scenario demonstration cells: with a filter deployed, the
    // blind attacks' success rate collapses relative to TM-I.
    let tm1_rate = result
        .cells
        .iter()
        .filter(|c| c.filter != FilterSpec::None)
        .filter(|c| c.success_tm1)
        .count() as f32;
    let tm23_rate = result
        .cells
        .iter()
        .filter(|c| c.filter != FilterSpec::None)
        .filter(|c| c.success_tm23)
        .count() as f32;
    assert!(
        tm23_rate <= tm1_rate,
        "Fig. 7 shape violated: filtered successes {tm23_rate} > TM-I successes {tm1_rate}"
    );
    // Accuracy grids exist for all scenarios and stay in range.
    assert_eq!(result.grids.len(), 5);
    for grid in &result.grids {
        for cell in &grid.cells {
            assert!((0.0..=1.0).contains(&cell.top5_accuracy));
        }
    }
}

#[test]
fn e4_fig9_fademl_survives_filters() {
    let p = prepared();
    let small_filters = vec![FilterSpec::Lap { np: 8 }, FilterSpec::Lar { r: 1 }];
    let blind = fig7::run(p, &params(), &small_filters, 4, ThreatModel::III).unwrap();
    let aware = fig9::run(p, &params(), &small_filters, 4, ThreatModel::III).unwrap();
    assert!(
        aware.filtered_success_rate() >= blind.filtered_success_rate(),
        "Fig. 9 shape violated: FAdeML {:.0}% < blind {:.0}%",
        aware.filtered_success_rate() * 100.0,
        blind.filtered_success_rate() * 100.0
    );
    // Tables render for every scenario.
    for sid in 1..=5 {
        assert!(!aware
            .scenario_table(sid, &small_filters)
            .render()
            .is_empty());
        assert!(!aware
            .accuracy_table(sid, &small_filters)
            .render()
            .is_empty());
    }
}

#[test]
fn key_insights_are_derivable_and_directionally_right() {
    use fademl::insights::KeyInsights;
    let p = prepared();
    let small_filters = vec![
        FilterSpec::Lap { np: 8 },
        FilterSpec::Lap { np: 32 },
        FilterSpec::Lar { r: 1 },
        FilterSpec::Lar { r: 3 },
    ];
    let blind = fig7::run(p, &params(), &small_filters, 4, ThreatModel::III).unwrap();
    let aware = fig9::run(p, &params(), &small_filters, 4, ThreatModel::III).unwrap();
    let insights = KeyInsights::derive(&blind, &aware).unwrap();
    // Insight 1: filters drive blind success towards zero.
    assert!(insights.blind_filtered_success < 0.5);
    // Insight 2 machinery produced peaks for every (scenario, attack).
    assert_eq!(insights.lap_peaks.len(), 15);
    assert_eq!(insights.lar_peaks.len(), 15);
    // Insight 3: filter awareness pays (or at worst ties).
    assert!(insights.fademl_filtered_success >= insights.blind_filtered_success);
    assert!(!insights.summary().is_empty());
}

#[test]
fn experiments_are_deterministic() {
    // The whole pipeline is seeded: running Fig. 5 twice must give
    // byte-identical tables.
    let a = fig5::run(prepared(), &params()).unwrap();
    let b = fig5::run(prepared(), &params()).unwrap();
    assert_eq!(a.table().render(), b.table().render());
}
