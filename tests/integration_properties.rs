//! Cross-crate property-based tests: invariants that must hold for any
//! (seeded) attack configuration, filter parameter or image.

use std::sync::OnceLock;

use fademl::cost::top5_cost;
use fademl::setup::{ExperimentSetup, PreparedSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_attacks::{Attack, AttackGoal, AttackSurface, Bim, Fgsm};
use fademl_data::{render_sign, ClassId, RenderJitter};
use fademl_filters::FilterSpec;
use fademl_tensor::TensorRng;
use proptest::prelude::*;

fn image_size() -> usize {
    prepared().test.image_size()
}

fn prepared() -> &'static PreparedSetup {
    static CELL: OnceLock<PreparedSetup> = OnceLock::new();
    CELL.get_or_init(|| {
        ExperimentSetup::profile(SetupProfile::Smoke)
            .prepare()
            .expect("smoke setup trains")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any FGSM adversarial example stays a valid image and within the
    /// ε-ball, regardless of epsilon, target or source class.
    #[test]
    fn fgsm_examples_always_valid(
        eps in 0.01f32..0.2,
        target in 0usize..43,
        source_class in 0usize..43,
    ) {
        let p = prepared();
        let source = p
            .test
            .first_of_class(ClassId::new(source_class).unwrap())
            .or_else(|_| p.train.first_of_class(ClassId::new(source_class).unwrap()))
            .unwrap();
        let mut surface = AttackSurface::new(p.model.clone());
        let adv = Fgsm::new(eps)
            .unwrap()
            .run(&mut surface, &source, AttackGoal::Targeted { class: target })
            .unwrap();
        prop_assert!(adv.adversarial.min().unwrap() >= 0.0);
        prop_assert!(adv.adversarial.max().unwrap() <= 1.0);
        prop_assert!(adv.noise_linf() <= eps + 1e-5);
        prop_assert!(!adv.adversarial.has_non_finite());
    }

    /// The Eq. 2 cost of a verdict against itself is zero, and against
    /// any other verdict is antisymmetric — for real pipeline outputs.
    #[test]
    fn cost_properties_on_real_verdicts(class_a in 0usize..43, class_b in 0usize..43) {
        let p = prepared();
        let pipeline =
            InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 8 }).unwrap();
        let img_a = render_sign(ClassId::new(class_a).unwrap(), image_size(), &RenderJitter::default()).unwrap();
        let img_b = render_sign(ClassId::new(class_b).unwrap(), image_size(), &RenderJitter::default()).unwrap();
        let va = pipeline.classify(&img_a, ThreatModel::III).unwrap();
        let vb = pipeline.classify(&img_b, ThreatModel::III).unwrap();
        prop_assert!(top5_cost(&va.probabilities, &va.probabilities).unwrap().abs() < 1e-6);
        let ab = top5_cost(&va.probabilities, &vb.probabilities).unwrap();
        let ba = top5_cost(&vb.probabilities, &va.probabilities).unwrap();
        prop_assert!((ab + ba).abs() < 1e-5);
    }

    /// Filtering commutes with batching: classifying a filtered image
    /// equals filtering then classifying, for every filter config.
    #[test]
    fn pipeline_staging_matches_manual_filtering(
        lap_np_idx in 0usize..5,
        class in 0usize..43,
    ) {
        let p = prepared();
        let np = [4usize, 8, 16, 32, 64][lap_np_idx];
        let spec = FilterSpec::Lap { np };
        let pipeline = InferencePipeline::new(p.model.clone(), spec).unwrap();
        let image = render_sign(ClassId::new(class).unwrap(), image_size(), &RenderJitter::default()).unwrap();
        let via_pipeline = pipeline.classify(&image, ThreatModel::III).unwrap();
        // Manual: filter, then classify bypassing the pipeline filter.
        let filtered = spec.build().unwrap().apply(&image).unwrap();
        let manual = pipeline.classify(&filtered, ThreatModel::I).unwrap();
        prop_assert_eq!(via_pipeline.class, manual.class);
        prop_assert!((via_pipeline.confidence - manual.confidence).abs() < 1e-5);
    }

    /// BIM with random valid hyper-parameters respects its contract.
    #[test]
    fn bim_respects_budget(
        eps in 0.02f32..0.15,
        iters in 1usize..8,
        seed in 0u64..100,
    ) {
        let p = prepared();
        let mut rng = TensorRng::seed_from_u64(seed);
        let image = rng.uniform(&[3, image_size(), image_size()], 0.0, 1.0);
        let alpha = eps / 2.0;
        let mut surface = AttackSurface::new(p.model.clone());
        let adv = Bim::new(eps, alpha, iters)
            .unwrap()
            .run(&mut surface, &image, AttackGoal::Targeted { class: 3 })
            .unwrap();
        prop_assert!(adv.noise_linf() <= eps + 1e-5);
        prop_assert!(adv.iterations <= iters);
        prop_assert!(adv.adversarial.min().unwrap() >= 0.0);
        prop_assert!(adv.adversarial.max().unwrap() <= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FGSM is exactly BIM with a single step of size eps: same image out.
    #[test]
    fn fgsm_equals_single_step_bim(eps in 0.02f32..0.15, target in 0usize..43, seed in 0u64..50) {
        let p = prepared();
        let mut rng = TensorRng::seed_from_u64(seed);
        let x = rng.uniform(&[3, image_size(), image_size()], 0.1, 0.9);
        let goal = AttackGoal::Targeted { class: target };
        let mut s1 = AttackSurface::new(p.model.clone());
        let mut s2 = AttackSurface::new(p.model.clone());
        let fgsm = Fgsm::new(eps).unwrap().run(&mut s1, &x, goal).unwrap();
        let bim = Bim::new(eps, eps, 1).unwrap().run(&mut s2, &x, goal).unwrap();
        prop_assert_eq!(fgsm.adversarial, bim.adversarial);
    }

    /// Weight serialization is lossless for any random model weights:
    /// the loaded twin produces byte-identical outputs.
    #[test]
    fn weight_round_trip_preserves_behaviour(seed in 0u64..200) {
        use fademl_nn::{serialize, vgg::VggConfig};
        let config = VggConfig::tiny(3, 12, 7);
        let mut rng = TensorRng::seed_from_u64(seed);
        let source = config.build(&mut rng).unwrap();
        let mut buf = Vec::new();
        serialize::save_weights(&source, &mut buf).unwrap();
        let mut rng2 = TensorRng::seed_from_u64(seed.wrapping_add(1));
        let mut twin = config.build(&mut rng2).unwrap();
        serialize::load_weights(&mut twin, buf.as_slice()).unwrap();
        let mut probe_rng = TensorRng::seed_from_u64(9);
        let x = probe_rng.uniform(&[2, 3, 12, 12], 0.0, 1.0);
        prop_assert_eq!(source.forward(&x).unwrap(), twin.forward(&x).unwrap());
    }

    /// The whole deployed pipeline never emits non-finite probabilities,
    /// whatever (valid) image and filter it is given.
    #[test]
    fn pipeline_outputs_stay_finite(seed in 0u64..200, filter_idx in 0usize..11) {
        let p = prepared();
        let spec = FilterSpec::paper_sweep()[filter_idx];
        let pipeline = InferencePipeline::new(p.model.clone(), spec).unwrap();
        let mut rng = TensorRng::seed_from_u64(seed);
        let image = rng.uniform(&[3, image_size(), image_size()], 0.0, 1.0);
        for threat in ThreatModel::ALL {
            let verdict = pipeline.classify(&image, threat).unwrap();
            prop_assert!(!verdict.probabilities.has_non_finite());
            prop_assert!(verdict.confidence > 0.0 && verdict.confidence <= 1.0);
        }
    }
}

#[test]
fn filters_preserve_image_range_on_dataset_samples() {
    let p = prepared();
    for spec in FilterSpec::paper_sweep() {
        let filter = spec.build().unwrap();
        let filtered = filter.apply(p.test.images()).unwrap();
        assert!(
            filtered.min().unwrap() >= -1e-5 && filtered.max().unwrap() <= 1.0 + 1e-5,
            "{spec} left the pixel range"
        );
        assert_eq!(filtered.dims(), p.test.images().dims());
    }
}
