//! End-to-end pipeline integration: SynSign-43 → trained VGG → deployed
//! filter pipeline, across the three threat models.

use std::sync::OnceLock;

use fademl::setup::{ExperimentSetup, PreparedSetup, SetupProfile};
use fademl::{InferencePipeline, ThreatModel};
use fademl_data::{ClassId, NoiseModel};
use fademl_filters::FilterSpec;
use fademl_nn::metrics::{top1_accuracy, top5_accuracy};

fn prepared() -> &'static PreparedSetup {
    static CELL: OnceLock<PreparedSetup> = OnceLock::new();
    CELL.get_or_init(|| {
        ExperimentSetup::profile(SetupProfile::Smoke)
            .prepare()
            .expect("smoke setup trains")
    })
}

#[test]
fn victim_learns_the_synthetic_dataset() {
    let p = prepared();
    assert!(
        p.train_accuracy > 0.7,
        "train accuracy only {:.1}%",
        p.train_accuracy * 100.0
    );
    let top1 = top1_accuracy(&p.model, p.test.images(), p.test.labels()).unwrap();
    let top5 = top5_accuracy(&p.model, p.test.images(), p.test.labels()).unwrap();
    assert!(top1 > 0.4, "test top-1 only {:.1}%", top1 * 100.0);
    assert!(top5 > 0.7, "test top-5 only {:.1}%", top5 * 100.0);
    assert!(top5 >= top1);
}

#[test]
fn unfiltered_pipeline_matches_raw_model() {
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::None).unwrap();
    let acc_pipeline = pipeline
        .top_k_accuracy(p.test.images(), p.test.labels(), ThreatModel::I, 5)
        .unwrap();
    let acc_model = top5_accuracy(&p.model, p.test.images(), p.test.labels()).unwrap();
    assert!((acc_pipeline - acc_model).abs() < 1e-6);
}

#[test]
fn mild_filter_keeps_clean_accuracy_usable() {
    // The defense must not destroy clean behaviour — the precondition
    // for the paper's whole premise.
    let p = prepared();
    let none = InferencePipeline::new(p.model.clone(), FilterSpec::None).unwrap();
    let lap8 = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 8 }).unwrap();
    let base = none
        .top_k_accuracy(p.test.images(), p.test.labels(), ThreatModel::III, 5)
        .unwrap();
    let filtered = lap8
        .top_k_accuracy(p.test.images(), p.test.labels(), ThreatModel::III, 5)
        .unwrap();
    assert!(
        filtered > base - 0.25,
        "LAP(8) destroyed clean accuracy: {base:.2} → {filtered:.2}"
    );
}

#[test]
fn heavy_filter_hurts_more_than_mild_filter() {
    // The falling flank of the paper's hump: LAP(64) on a 16×16 image
    // averages away the glyphs.
    let p = prepared();
    let mild = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 4 }).unwrap();
    let heavy = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 64 }).unwrap();
    let acc_mild = mild
        .top_k_accuracy(p.test.images(), p.test.labels(), ThreatModel::III, 5)
        .unwrap();
    let acc_heavy = heavy
        .top_k_accuracy(p.test.images(), p.test.labels(), ThreatModel::III, 5)
        .unwrap();
    assert!(
        acc_heavy <= acc_mild,
        "LAP(64) ({acc_heavy:.2}) should not beat LAP(4) ({acc_mild:.2})"
    );
}

#[test]
fn threat_models_stage_differently() {
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 8 }).unwrap();
    let image = p.test.first_of_class(ClassId::STOP).unwrap();
    let tm1 = pipeline.stage_input(&image, ThreatModel::I).unwrap();
    let tm2 = pipeline.stage_input(&image, ThreatModel::II).unwrap();
    let tm3 = pipeline.stage_input(&image, ThreatModel::III).unwrap();
    assert_eq!(tm1, image);
    assert_ne!(tm2, tm3);
    assert_ne!(tm3, image);
}

#[test]
fn acquisition_noise_is_configurable() {
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lap { np: 8 })
        .unwrap()
        .with_acquisition_noise(NoiseModel::none());
    let image = p.test.first_of_class(ClassId::STOP).unwrap();
    // With no acquisition noise, TM-II and TM-III coincide.
    let tm2 = pipeline.stage_input(&image, ThreatModel::II).unwrap();
    let tm3 = pipeline.stage_input(&image, ThreatModel::III).unwrap();
    assert_eq!(tm2, tm3);
}

#[test]
fn verdicts_are_deterministic() {
    let p = prepared();
    let pipeline = InferencePipeline::new(p.model.clone(), FilterSpec::Lar { r: 2 }).unwrap();
    let image = p.test.first_of_class(ClassId::SPEED_30).unwrap();
    for threat in ThreatModel::ALL {
        let a = pipeline.classify(&image, threat).unwrap();
        let b = pipeline.classify(&image, threat).unwrap();
        assert_eq!(a, b, "non-deterministic verdict under {threat}");
    }
}

#[test]
fn filtering_noisy_images_helps_when_model_saw_clean_features() {
    // The rising flank of the hump: add heavy extra sensor noise at
    // acquisition, and a smoothing filter should recover accuracy
    // relative to no filter.
    let p = prepared();
    let heavy_noise = NoiseModel {
        gaussian_std: 0.15,
        salt_pepper_prob: 0.05,
    };
    let none = InferencePipeline::new(p.model.clone(), FilterSpec::None)
        .unwrap()
        .with_acquisition_noise(heavy_noise);
    let lar = InferencePipeline::new(p.model.clone(), FilterSpec::Lar { r: 1 })
        .unwrap()
        .with_acquisition_noise(heavy_noise);
    let images = p.test.images();
    let labels = p.test.labels();
    let acc_none = none
        .top_k_accuracy(images, labels, ThreatModel::II, 5)
        .unwrap();
    let acc_lar = lar
        .top_k_accuracy(images, labels, ThreatModel::II, 5)
        .unwrap();
    assert!(
        acc_lar >= acc_none - 0.05,
        "denoising filter should roughly help under heavy noise: none {acc_none:.2} vs LAR(1) {acc_lar:.2}"
    );
}
