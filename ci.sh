#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fademl-lint (lock-order, panic-surface, invariants)"
cargo run -p fademl-lint --release

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (FADEML_THREADS=2: kernels on the worker pool)"
FADEML_THREADS=2 cargo test -q --workspace

echo "==> kernel bench smoke (bit-identity gate at 1/2/4/8 threads)"
cargo bench -p fademl-bench --bench kernels -- --test

echo "==> cargo clippy (faults feature, deny warnings)"
cargo clippy -p fademl-serve --features faults --all-targets -- -D warnings

echo "==> fault-injection suite (chaos tests)"
cargo test -q -p fademl-serve --features faults --test faults

echo "==> chaos stress run"
cargo test -q -p fademl-serve --release --features faults --test faults chaos_stress_every_handle_resolves

echo "==> cargo clippy (checkpoint faults feature, deny warnings)"
cargo clippy -p fademl-nn --features faults --all-targets -- -D warnings

echo "==> checkpoint IO fault-injection suite"
cargo test -q -p fademl-nn --features faults --test checkpoint_faults

echo "CI OK"
