#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fademl-lint self-check suite (unit, property-fuzz, seeded violations)"
cargo test -q -p fademl-lint

echo "==> fademl-lint (8 passes: locks, panics, invariants, unsafe, hot-alloc, lock-io, swallowed, wire-cap)"
lint_started=$(date +%s)
cargo run -p fademl-lint --release
lint_elapsed=$(( $(date +%s) - lint_started ))

echo "==> fademl-lint wall-clock budget (analysis must stay fast enough to never be skipped)"
# Generous bound: the full 8-pass run takes well under a second; the
# budget catches an accidental quadratic blow-up, not normal variance.
if [ "$lint_elapsed" -gt 30 ]; then
  echo "fademl-lint took ${lint_elapsed}s (> 30s budget)" >&2
  exit 1
fi
echo "    ${lint_elapsed}s (budget 30s); per-pass timings in results/lint_stats.txt"

echo "==> fademl-lint artifacts are committed fresh"
git diff --exit-code -- results/lint.json lint.allow || {
  echo "results/lint.json or lint.allow is stale — rerun cargo run -p fademl-lint and commit" >&2
  exit 1
}

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (FADEML_THREADS=2: kernels on the worker pool)"
FADEML_THREADS=2 cargo test -q --workspace

echo "==> kernel bench smoke (bit-identity gate at 1/2/4/8 threads + arena zero-grow gate)"
cargo bench -p fademl-bench --bench kernels -- --test

echo "==> cargo clippy (faults feature, deny warnings)"
cargo clippy -p fademl-serve --features faults --all-targets -- -D warnings

echo "==> fault-injection suite (chaos tests)"
cargo test -q -p fademl-serve --features faults --test faults

echo "==> chaos stress run"
cargo test -q -p fademl-serve --release --features faults --test faults chaos_stress_every_handle_resolves

echo "==> cargo clippy (checkpoint faults feature, deny warnings)"
cargo clippy -p fademl-nn --features faults --all-targets -- -D warnings

echo "==> checkpoint IO fault-injection suite"
cargo test -q -p fademl-nn --features faults --test checkpoint_faults

echo "==> loopback e2e smoke (wire codec, router, hot swap, shutdown drain)"
cargo test -q -p fademl-net --test loopback

echo "==> cargo clippy (net faults feature, deny warnings)"
cargo clippy -p fademl-net --features faults --all-targets -- -D warnings

echo "==> network chaos suite (torn frames, drops, slow-loris, replica death)"
cargo test -q -p fademl-net --features faults --test chaos

echo "==> net serving bench smoke (emits BENCH_serving.json)"
FADEML_THREADS=2 cargo bench -p fademl-bench --bench net_serving -- --test

echo "==> detection triage chaos suite (score panics, blown budgets, fail-open)"
cargo test -q -p fademl-serve --features faults --test triage_chaos

echo "==> drift scenario smoke (adaptive refit: budget + AUC regression under drift)"
cargo test -q -p fademl --lib experiments::adaptive

echo "==> detection bench smoke (appends a BENCH_detection.json trajectory entry)"
entries_before=$(python3 -c "
import json, sys
try:
    doc = json.load(open('BENCH_detection.json'))
    print(len(doc.get('trajectory', [])))
except (OSError, ValueError):
    print(0)
")
cargo bench -p fademl-bench --bench detection -- --test

echo "==> BENCH_detection.json gained a fresh trajectory entry"
python3 - "$entries_before" <<'EOF'
import json, sys

before = int(sys.argv[1])
doc = json.load(open("BENCH_detection.json"))
trajectory = doc["trajectory"]
assert len(trajectory) == min(before + 1, 20), (
    f"expected {min(before + 1, 20)} trajectory entries, found {len(trajectory)}"
)
latest = trajectory[-1]
for key in ("unix_time", "mode", "auc", "adaptive", "serving"):
    assert key in latest, f"latest trajectory entry missing {key!r}"
adaptive = latest["adaptive"]
for key in ("static_auc", "adaptive_auc", "budget", "adaptive_clean_flagged_frac",
            "refits_swapped", "final_generation"):
    assert key in adaptive, f"adaptive block missing {key!r}"
assert adaptive["adaptive_auc"] > 0.5, adaptive
print(f"    {len(trajectory)} entries; latest: static AUC {adaptive['static_auc']:.3f} "
      f"vs adaptive {adaptive['adaptive_auc']:.3f}, "
      f"{adaptive['refits_swapped']} refits swapped")
EOF

echo "==> serve adaptive e2e suite (hot swap under load, supervisor, shedding)"
cargo test -q -p fademl-serve --test adaptive

echo "==> refit chaos suite (torn reservoir writes, bit rot, injected refit panics)"
cargo test -q -p fademl-serve --features faults --test refit_chaos

echo "CI OK"
