#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> fademl-lint (lock-order, panic-surface, invariants)"
cargo run -p fademl-lint --release

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test (FADEML_THREADS=2: kernels on the worker pool)"
FADEML_THREADS=2 cargo test -q --workspace

echo "==> kernel bench smoke (bit-identity gate at 1/2/4/8 threads)"
cargo bench -p fademl-bench --bench kernels -- --test

echo "==> cargo clippy (faults feature, deny warnings)"
cargo clippy -p fademl-serve --features faults --all-targets -- -D warnings

echo "==> fault-injection suite (chaos tests)"
cargo test -q -p fademl-serve --features faults --test faults

echo "==> chaos stress run"
cargo test -q -p fademl-serve --release --features faults --test faults chaos_stress_every_handle_resolves

echo "==> cargo clippy (checkpoint faults feature, deny warnings)"
cargo clippy -p fademl-nn --features faults --all-targets -- -D warnings

echo "==> checkpoint IO fault-injection suite"
cargo test -q -p fademl-nn --features faults --test checkpoint_faults

echo "==> loopback e2e smoke (wire codec, router, hot swap, shutdown drain)"
cargo test -q -p fademl-net --test loopback

echo "==> cargo clippy (net faults feature, deny warnings)"
cargo clippy -p fademl-net --features faults --all-targets -- -D warnings

echo "==> network chaos suite (torn frames, drops, slow-loris, replica death)"
cargo test -q -p fademl-net --features faults --test chaos

echo "==> net serving bench smoke (emits BENCH_serving.json)"
FADEML_THREADS=2 cargo bench -p fademl-bench --bench net_serving -- --test

echo "==> detection triage chaos suite (score panics, blown budgets, fail-open)"
cargo test -q -p fademl-serve --features faults --test triage_chaos

echo "==> detection bench smoke (emits BENCH_detection.json, asserts AUC > 0.5)"
cargo bench -p fademl-bench --bench detection -- --test

echo "CI OK"
