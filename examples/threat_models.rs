//! Walks one adversarial image through the paper's three threat models
//! (Fig. 2), showing exactly which pipeline stages touch it and how the
//! verdict changes.
//!
//! ```text
//! cargo run --release --example threat_models
//! ```

use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{Attack, AttackSurface, Fgsm};
use fademl_data::ClassId;
use fademl_filters::FilterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })?;

    let scenario = Scenario::paper_scenarios()[4]; // no entry → 60 km/h
    let source = prepared.test.first_of_class(scenario.source)?;
    println!("scenario: {scenario}");
    println!("deployed filter: {}\n", pipeline.filter_spec());

    // Craft an adversarial example against the bare DNN.
    let fgsm = Fgsm::new(0.10)?;
    let mut surface = AttackSurface::new(prepared.model.clone());
    let adv = fgsm.run(&mut surface, &source, scenario.goal())?;
    println!(
        "crafted noise: L∞ = {:.3} (visually imperceptible at this scale)\n",
        adv.noise_linf()
    );

    for threat in ThreatModel::ALL {
        let staged = pipeline.stage_input(&adv.adversarial, threat)?;
        let verdict = pipeline.classify(&adv.adversarial, threat)?;
        let stages = match threat {
            ThreatModel::I => "buffer → DNN (filter bypassed)",
            ThreatModel::II => "sensor (noise!) → filter → buffer → DNN",
            ThreatModel::III => "filter → buffer → DNN",
        };
        let delta = staged.sub(&adv.adversarial)?.norm_l2();
        println!("{threat}: {stages}");
        println!(
            "  pipeline altered the image by ‖Δ‖₂ = {delta:.3}; verdict: {} ({:.1}%){}",
            name(verdict.class),
            verdict.confidence * 100.0,
            if verdict.class == scenario.target.index() {
                "  ← attack succeeded"
            } else if verdict.class == scenario.source.index() {
                "  ← true class recovered"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn name(class: usize) -> String {
    ClassId::new(class)
        .map(|c| c.info().name.to_owned())
        .unwrap_or_else(|_| format!("class {class}"))
}
