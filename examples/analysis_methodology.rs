//! Walks the paper's §III analysis methodology (Fig. 3) for one cell:
//! craft an adversarial example, classify it under Threat Model I and
//! under Threat Model III, and print the Eq. 2 top-5 cost breakdown
//! that drives the FAdeML feedback loop.
//!
//! ```text
//! cargo run --release --example analysis_methodology
//! ```

use fademl::analysis::analyze_scenario;
use fademl::setup::{ExperimentSetup, SetupProfile};
use fademl::{InferencePipeline, Scenario, ThreatModel};
use fademl_attacks::{AttackSurface, Bim};
use fademl_data::ClassId;
use fademl_filters::FilterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prepared = ExperimentSetup::profile(SetupProfile::Smoke).prepare()?;
    let pipeline = InferencePipeline::new(prepared.model.clone(), FilterSpec::Lap { np: 8 })?;
    let scenario = Scenario::paper_scenarios()[0];
    let source = prepared.test.first_of_class(scenario.source)?;
    println!("analysis methodology (paper Fig. 3) for {scenario}\n");

    let attack = Bim::new(0.12, 0.02, 12)?;
    let mut surface = AttackSurface::new(prepared.model.clone());
    let outcome = analyze_scenario(
        &attack,
        &mut surface,
        &pipeline,
        &scenario,
        &source,
        ThreatModel::III,
    )?;

    println!(
        "step 1-2  attack crafted on the bare DNN: {}",
        outcome.attack
    );
    println!(
        "step 3    Threat Model I verdict : {} ({:.1}%)  — success: {}",
        name(outcome.tm1.class),
        outcome.tm1.confidence * 100.0,
        outcome.success_tm1
    );
    println!(
        "step 4    Threat Model III verdict: {} ({:.1}%) — success: {}",
        name(outcome.tm23.class),
        outcome.tm23.confidence * 100.0,
        outcome.success_tm23
    );

    println!(
        "\nstep 5    Eq. 2 top-5 comparison (f(cost) = {:+.4}):",
        outcome.cost.cost
    );
    println!("          {:<28} | {:<28}", "TM-I top-5", "TM-III top-5");
    for rank in 0..5 {
        println!(
            "          {:<28} | {:<28}",
            format!(
                "{} {:.1}%",
                name(outcome.cost.tm1_classes[rank]),
                outcome.cost.tm1_probs[rank] * 100.0
            ),
            format!(
                "{} {:.1}%",
                name(outcome.cost.tm23_classes[rank]),
                outcome.cost.tm23_probs[rank] * 100.0
            ),
        );
    }
    println!(
        "\nfilter changed the top-1 class: {} (the 'attack neutralized' signal)",
        outcome.filter_changed_top1()
    );
    println!(
        "imperceptibility: PSNR {:.1} dB, correlation {:.4}",
        outcome.imperceptibility.psnr_db, outcome.imperceptibility.correlation
    );
    println!(
        "step 6    (FAdeML feeds this cost back into the noise optimization — see the fig9 binary)"
    );
    Ok(())
}

fn name(class: usize) -> String {
    ClassId::new(class)
        .map(|c| c.info().name.to_owned())
        .unwrap_or_else(|_| format!("class {class}"))
}
