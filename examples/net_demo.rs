//! Networked serving demo: a TCP front over a 2-replica router, a
//! swarm of loopback clients, and a zero-downtime hot weight swap
//! performed under sustained load.
//!
//! ```sh
//! cargo run --release -p fademl-net --example net_demo
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fademl::{serialize, InferencePipeline, ThreatModel};
use fademl_filters::FilterSpec;
use fademl_net::{NetClient, NetConfig, NetServer, QuotaConfig, RouterConfig};
use fademl_nn::vgg::VggConfig;
use fademl_serve::ServerConfig;
use fademl_tensor::TensorRng;

fn main() {
    println!("=== fademl-net demo: router + 2 replicas + hot swap under load ===\n");

    // A tiny victim (random weights — this demo is about the serving
    // path, not accuracy) behind the paper's LAP filter.
    let mut rng = TensorRng::seed_from_u64(7);
    let model = VggConfig::tiny(3, 16, 6).build(&mut rng).expect("model");
    let pipeline = InferencePipeline::new(model, FilterSpec::Lap { np: 8 }).expect("pipeline");

    let router_config = RouterConfig {
        replicas: 2,
        replica: ServerConfig {
            queue_capacity: 256,
            max_batch_size: 8,
            linger_us: 1_000,
            workers: 2,
            ..ServerConfig::default()
        },
        quota: QuotaConfig {
            rate_per_sec: 0, // unlimited for the demo
            burst: 8,
        },
        ..RouterConfig::default()
    };
    let server = NetServer::start(pipeline, router_config, NetConfig::default()).expect("server");
    let addr = server.local_addr();
    println!("listening on {addr} with 2 replicas\n");

    // Load: 4 client threads hammering the loopback path across all
    // three threat models while the swap happens mid-flight.
    let stop = Arc::new(AtomicBool::new(false));
    let ok = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for worker in 0..4u64 {
        let stop = Arc::clone(&stop);
        let ok = Arc::clone(&ok);
        let failed = Arc::clone(&failed);
        clients.push(std::thread::spawn(move || {
            let mut client = NetClient::connect(addr)
                .expect("connect")
                .with_tenant(&format!("demo-{worker}"));
            let mut rng = TensorRng::seed_from_u64(100 + worker);
            let threats = [ThreatModel::I, ThreatModel::II, ThreatModel::III];
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let image = rng.uniform(&[3, 16, 16], 0.0, 1.0);
                match client.classify(&image, threats[i % 3]) {
                    Ok(_) => ok.fetch_add(1, Ordering::Relaxed),
                    Err(_) => failed.fetch_add(1, Ordering::Relaxed),
                };
                i += 1;
            }
            client.goodbye();
        }));
    }

    // Let traffic build, then hot-swap to freshly trained weights.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let before_swap = ok.load(Ordering::Relaxed);
    let mut rng = TensorRng::seed_from_u64(99);
    let next_model = VggConfig::tiny(3, 16, 6).build(&mut rng).expect("model");
    let artifact = serialize::encode_weights(&next_model);
    let swap_started = Instant::now();
    let generation = server
        .router()
        .swap_weights(&artifact)
        .expect("swap must succeed");
    let swap_us = swap_started.elapsed().as_micros();
    println!(
        "hot swap to generation {generation} in {swap_us} µs \
         ({before_swap} requests already served)"
    );

    std::thread::sleep(std::time::Duration::from_millis(300));
    stop.store(true, Ordering::Release);
    for handle in clients {
        let _ = handle.join();
    }

    let served = ok.load(Ordering::Relaxed);
    let errors = failed.load(Ordering::Relaxed);
    println!("\nclients: {served} verdicts, {errors} errors during the swap window");
    assert_eq!(errors, 0, "a hot swap must drop zero requests");

    let report = server.shutdown();
    println!("\n{}", report.render());
    println!(
        "swap generation in final report: {} (every replica reached it)",
        report.serving.swap_generation
    );
    assert_eq!(report.serving.swap_generation, 1);
    assert_eq!(report.serving.requests_failed, 0);
    println!("\nzero dropped requests across the deploy — the defense pipeline");
    println!("stays transparent to live traffic while its weights change.");
}
